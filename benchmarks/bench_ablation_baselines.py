"""Baseline ablation: R-LRPD vs doall LRPD, inspector/executor, DOACROSS."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_baselines(benchmark):
    result = run_figure(benchmark, "ablation_baselines")
    table = {(r[0], r[1]): r[2] for r in result.data["rows"]}
    chain = "partially parallel chain"
    # The doall test slows down on any dependence; R-LRPD extracts the
    # partial parallelism instead.
    assert table[(chain, "LRPD doall")] < 1.0
    assert table[(chain, "R-LRPD adaptive")] > 1.0
    # Where an inspector exists it can win -- the R-LRPD's advantage is
    # applicability, not raw speed on inspectable loops.
    assert table[(chain, "inspector/executor")] > table[(chain, "R-LRPD adaptive")]
    # Fully parallel loops: everything beats sequential.
    assert table[("fully parallel", "R-LRPD adaptive")] > 5.0
