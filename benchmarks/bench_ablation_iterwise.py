"""Extension ablation: iteration-wise vs processor-wise commit granularity."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_iterwise(benchmark):
    result = run_figure(benchmark, "ablation_iterwise")
    for row in result.data["rows"]:
        _, _, _, coarse_waste, fine_waste, coarse_mark, fine_mark = row
        # Iteration granularity never wastes more work...
        assert fine_waste <= coarse_waste + 1e-9
        # ...but always marks more (trace-proportional structures).
        assert fine_mark > coarse_mark
