"""Fig. 8: NLFILT sliding window vs (N)RD on the 16-400 deck
(sparse long-distance dependences: SW should win)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig08(benchmark):
    result = run_figure(benchmark, "fig08")
    rows = {r[0]: r for r in result.data["rows"]}
    best_sw = max(v[4] for k, v in rows.items() if k.startswith("SW"))
    # Long-distance arcs: sources commit before sinks are scheduled, so the
    # best window beats both blocked strategies.
    assert best_sw > rows["NRD"][4]
    assert best_sw > rows["RD"][4]
