"""Extension ablation: redistribution strategies under machine topologies."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_topology(benchmark):
    result = run_figure(benchmark, "ablation_topology")
    rows = {r[0]: r for r in result.data["rows"]}
    flat, ring = rows["flat (ccUMA)"], rows["ring"]
    # NRD never migrates: identical on every machine.
    assert flat[1] == ring[1]
    # RD degrades as migrations get remote.
    assert ring[2] < flat[2]
    assert ring[3] > 0
