"""Extension: auxiliary-memory comparison across techniques."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_memory_overhead(benchmark):
    result = run_figure(benchmark, "memory_overhead")
    for row in result.data["rows"]:
        _, trace_len, touched, procwise, iterwise, inspector = row
        # Trace-proportional structures always cost at least as much as the
        # touched-proportional shadows on these workloads.
        assert inspector > procwise
        assert iterwise > 0
    ratios = result.data["inspector_over_procwise"]
    # For the dense NLFILT shadow the gap is an order of magnitude.
    assert ratios["NLFILT (dense, small array)"] > 10.0
