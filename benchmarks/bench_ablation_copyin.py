"""Section 2 ablation: copy-in condition vs privatization condition."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_copyin(benchmark):
    result = run_figure(benchmark, "ablation_copyin")
    verdicts = {(r[0], r[1]): r[2] for r in result.data["rows"]}
    # The read-first loop is exactly the pattern the copy-in condition
    # rescues.
    assert verdicts[("read-first coefficient", "privatization")] == "FAIL"
    assert verdicts[("read-first coefficient", "copy-in")] == "pass"
    assert verdicts[("fully parallel", "privatization")] == "pass"
    assert verdicts[("privatizable (W before R)", "privatization")] == "pass"
