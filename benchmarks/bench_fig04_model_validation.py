"""Fig. 4: never/adaptive/always redistribution on the synthetic alpha=1/2
loop, with the Section 4 closed-form prediction."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig04(benchmark):
    result = run_figure(benchmark, "fig04")
    cumulative = result.data["cumulative"]
    final = {k: v[-1] for k, v in cumulative.items()}
    # NRD performs worst by a wide margin (paper); adaptive ends at or
    # below always-redistribute.
    assert final["never"] > final["always"]
    assert final["never"] > final["adaptive"]
    assert final["adaptive"] <= final["always"] * 1.02
    # The closed form tracks the simulation within overheads.
    assert 0.5 < final["adaptive"] / result.data["model_total"] < 2.0
