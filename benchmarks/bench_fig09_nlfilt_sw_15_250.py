"""Fig. 9: NLFILT sliding window vs (N)RD on the 15-250 deck
(dense short-distance dependences: blocked strategies should win)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig09(benchmark):
    result = run_figure(benchmark, "fig09")
    rows = {r[0]: r for r in result.data["rows"]}
    best_sw = max(v[4] for k, v in rows.items() if k.startswith("SW"))
    best_blocked = max(rows["NRD"][4], rows["RD"][4])
    # Short arcs fall inside the large blocked partitions but cross the
    # small strip boundaries constantly: the winner flips vs Fig. 8.
    assert best_blocked > best_sw
