"""The abstract's bounded-slowdown guarantee, swept over dependence density."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_guarantee(benchmark):
    result = run_figure(benchmark, "guarantee")
    # Even the fully sequential pointer chase must stay within a small
    # constant of sequential time: the run-time test's overhead only.
    assert result.data["worst_ratio"] < 1.6
    rows = {r[0]: r for r in result.data["rows"]}
    assert rows["parallel (d=0)"][1] > 5.0
    assert rows["pointer chase"][1] <= 1.0
