"""Extension: scaling prediction from a single observed run."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_model_scaling(benchmark):
    result = run_figure(benchmark, "model_scaling")
    assert result.data["kind"] == "geometric"
    assert abs(result.data["parameter"] - 0.5) < 0.15
    for p, predicted, simulated in result.data["rows"]:
        # Within the model's accuracy band on every machine size.
        assert 0.5 < predicted / simulated < 2.0, (p, predicted, simulated)
