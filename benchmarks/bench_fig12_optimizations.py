"""Fig. 12: (a) NLFILT optimization comparison; (b) TRACK program speedup."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig12a(benchmark):
    result = run_figure(benchmark, "fig12a")
    rows = {r[0]: r for r in result.data["rows"]}
    all_opts = rows["all optimizations"]
    none = rows["none (NRD, full ckpt)"]
    # All optimizations best, none worst; removing any single one costs.
    for label, row in rows.items():
        if label != "all optimizations":
            assert row[1] <= all_opts[1] * 1.02, label
    assert none[1] < all_opts[1]
    # On-demand checkpointing slashes checkpoint volume.
    assert rows["no on-demand ckpt"][3] > 3 * all_opts[3]


def bench_fig12b(benchmark):
    result = run_figure(benchmark, "fig12b")
    speedups = result.data["speedup"]
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 1.5
