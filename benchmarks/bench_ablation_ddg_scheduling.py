"""Extension ablation: wavefront vs critical-path list scheduling."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_ddg_scheduling(benchmark):
    result = run_figure(benchmark, "ablation_ddg_scheduling")
    # Removing the per-level barrier must not hurt, and on the ragged
    # LU levels it clearly helps.
    assert result.data["list"] > result.data["wavefront"]
