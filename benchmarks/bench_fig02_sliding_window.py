"""Fig. 2: the sliding-window worked example (window of 4)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig02(benchmark):
    result = run_figure(benchmark, "fig02")
    assert result.data["stages"] == 3
    assert result.data["restarts"] == 1
