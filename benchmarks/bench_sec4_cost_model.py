"""Section 4: closed-form cost model vs simulation sweep over alpha."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_sec4(benchmark):
    result = run_figure(benchmark, "sec4")
    for row in result.data["rows"]:
        alpha, _ks, _kd, _stages, _model, _sim, ratio = row
        assert 0.5 < ratio < 2.0, f"model diverged at alpha={alpha}"
