"""Shared helper for the per-figure benchmarks.

Each benchmark regenerates one paper figure at quick scale, times the
regeneration with pytest-benchmark, and prints the figure's table (run
pytest with ``-s`` to see it; the tables are also written to
``EXPERIMENTS.md`` by ``python -m repro.bench``).
"""

from __future__ import annotations

from repro.bench import run_experiment


def run_figure(benchmark, exp_id: str):
    result = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"quick": True},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    return result
