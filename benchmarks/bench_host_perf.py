"""Host wall-clock sweep: serial vs fork backends + vectorized commit.

As a benchmark (``pytest benchmarks/bench_host_perf.py``) it runs the
registered ``host_perf`` experiment at quick scale and asserts backend
parity.  As a script it additionally writes the machine-readable results
to ``BENCH_host.json`` and exits non-zero on any parity mismatch or
crash, which is how CI gates the fork backend::

    python benchmarks/bench_host_perf.py --quick --out BENCH_host.json
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def _check(result) -> list[str]:
    problems = []
    for entry in result.data["workloads"]:
        if not entry["parity_ok"]:
            problems.append(
                f"backend parity mismatch on {entry['name']} "
                f"(n={entry['n']}, p={entry['procs']})"
            )
    overhead = result.data["metrics_overhead"]["overhead"]
    if overhead >= 0.05:
        problems.append(
            f"instrumentation overhead {overhead * 100:.1f}% exceeds the "
            f"5% budget (metrics + spans on, serial backend)"
        )
    return problems


def bench_host_perf(benchmark):
    result = run_figure(benchmark, "host_perf")
    assert not _check(result)
    # The vectorized copy-out must clearly beat the per-element loop.
    assert result.data["commit_microbench"]["speedup"] > 1.0


def main(argv=None) -> int:
    import argparse
    import json

    from repro.bench import run_experiment

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes, single timing repeat (the CI setting)",
    )
    parser.add_argument(
        "--out", default="BENCH_host.json", metavar="PATH",
        help="write results as JSON to PATH (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    result = run_experiment("host_perf", quick=args.quick)
    print(result.render())
    with open(args.out, "w") as fh:
        json.dump(result.data, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    problems = _check(result)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
