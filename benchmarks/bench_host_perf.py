"""Host wall-clock sweep: serial/fork/shm/threads backends + kernels.

As a benchmark (``pytest benchmarks/bench_host_perf.py``) it runs the
registered ``host_perf`` experiment at quick scale and asserts backend
parity.  As a script it additionally writes the machine-readable results
to ``BENCH_host.json`` -- appending a ``history`` entry (commit, date,
per-workload speedups, backend set, GIL mode) to the existing file so
regressions can be charted across commits and interpreter builds;
re-running on the same ``(commit, cpus, gil)`` triple replaces the
earlier entry instead of duplicating it -- and exits
non-zero on any parity mismatch,
gate miss or crash, which is how CI gates the parallel backends::

    python benchmarks/bench_host_perf.py --quick --out BENCH_host.json

Speedup gates are conditioned on the host CPU count recorded in the
results: with 4+ cpus (the CI runner size) shm and threads must reach
1.5x serial on the dense doall and at least break even on the sparse
SPICE loop; with 2-3 cpus both must break even (threads on both
workloads); on a single core no speedup is physically possible, so
parity is asserted plus one relative gate -- threads dispatch overhead
must be strictly below fork's on the dense doall (threads pays no fork,
no memory sync and no pickling, so losing to fork means the dispatch
path regressed).

One gate is CPU-independent: the certified-DOALL fast path must beat
the full speculative pipeline by >= 2x on the dense doall (serial
backend host seconds) -- it removes marking/analysis/commit work
per iteration rather than exploiting cores, so a single-core host
waives nothing.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure

#: (workload name, backend, minimum speedup over serial) by CPU tier.
_GATES_4CPU = (
    ("doall-dense", "shm", 1.5),
    ("spice15-sparse", "shm", 1.0),
    ("doall-dense", "threads", 1.5),
    ("spice15-sparse", "threads", 1.0),
)
_GATES_2CPU = (
    ("doall-dense", "shm", 1.0),
    ("doall-dense", "threads", 1.0),
    ("spice15-sparse", "threads", 1.0),
)


def _speedup_gates(cpus: int):
    if cpus >= 4:
        return _GATES_4CPU
    if cpus >= 2:
        return _GATES_2CPU
    return ()


def _check(result) -> list[str]:
    problems = []
    workloads = {entry["name"]: entry for entry in result.data["workloads"]}
    for entry in workloads.values():
        if not entry["parity_ok"]:
            problems.append(
                f"backend parity mismatch on {entry['name']} "
                f"(n={entry['n']}, p={entry['procs']})"
            )
    cpus = result.data["host"]["cpus"] or 1
    if cpus < 2:
        # No parallel speedup is possible, but the threads dispatch path
        # must still be cheaper than fork's on the dense doall.
        dense = workloads["doall-dense"]["speedup"]
        if dense["threads"] <= dense["fork"]:
            problems.append(
                f"threads dispatch overhead ({dense['threads']:.2f}x serial) "
                f"is not below fork's ({dense['fork']:.2f}x) on doall-dense "
                "at 1 cpu"
            )
    for name, backend, floor in _speedup_gates(cpus):
        speedup = workloads[name]["speedup"][backend]
        if speedup < floor:
            problems.append(
                f"{backend} speedup {speedup:.2f}x on {name} is below the "
                f"{floor:.1f}x floor for a {cpus}-cpu host"
            )
    for prim, case in sorted(result.data["kernel_microbench"]["primitives"].items()):
        if case["speedup"] <= 1.0:
            problems.append(
                f"vectorized kernel {prim} is not faster than the scalar "
                f"reference ({case['speedup']:.2f}x at "
                f"n={result.data['kernel_microbench']['n']})"
            )
    fastpath = result.data["certified_fastpath"]
    if not fastpath["parity_ok"]:
        problems.append(
            f"certified fast path memory diverges from the speculative "
            f"pipeline on doall-dense (n={fastpath['n']})"
        )
    # The fast path removes per-iteration work (marking, analysis, commit
    # copy-out) rather than exploiting cores, so the floor holds at any
    # CPU count -- including the 1-cpu tier where every absolute backend
    # gate is waived.
    if fastpath["speedup"] < 2.0:
        problems.append(
            f"certified-DOALL fast path speedup {fastpath['speedup']:.2f}x "
            f"over full speculation is below the 2.0x floor "
            f"(n={fastpath['n']}, serial backend)"
        )
    overhead = result.data["metrics_overhead"]["overhead"]
    if overhead >= 0.05:
        problems.append(
            f"instrumentation overhead {overhead * 100:.1f}% exceeds the "
            f"5% budget (metrics + spans on, serial backend)"
        )
    sampler = result.data["resources_overhead"]["overhead"]
    if sampler >= 0.05:
        problems.append(
            f"resource-sampler overhead {sampler * 100:.1f}% exceeds the "
            f"5% budget (operational plane on, serial backend)"
        )
    return problems


def bench_host_perf(benchmark):
    result = run_figure(benchmark, "host_perf")
    assert not _check(result)
    # The vectorized copy-out must clearly beat the per-element loop.
    assert result.data["commit_microbench"]["speedup"] > 1.0
    # Every vectorized kernel primitive must beat the scalar reference.
    kern = result.data["kernel_microbench"]
    assert kern["primitives"]
    assert all(case["speedup"] > 1.0 for case in kern["primitives"].values())


def _history_entry(result) -> dict:
    import datetime
    import subprocess

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    host = result.data["host"]
    return {
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc).date().isoformat(),
        "cpus": host["cpus"],
        "gil": host.get("gil"),
        # Timing discipline: one untimed warm-up per backend, then
        # best-of-5 minima (see _time_backends).  bench-trend only gates
        # entries against history recorded with the same method.
        "method": "warm-best5",
        "backends": host.get("backends"),
        "speedups": {
            entry["name"]: entry["speedup"]
            for entry in result.data["workloads"]
        },
    }


def _load_history(path) -> list:
    import json

    try:
        with open(path) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return []
    history = previous.get("history", [])
    return history if isinstance(history, list) else []


def _merge_history(history: list, entry: dict) -> list:
    """Append ``entry``, dropping any earlier entry for the same
    ``(commit, cpus, gil)`` triple -- re-running the benchmark on the same
    commit, host size and interpreter build refreshes its measurement
    instead of duplicating it, while runs on a free-threaded build keep
    their own trajectory next to the stock-GIL one."""
    key = (entry.get("commit"), entry.get("cpus"), entry.get("gil"))
    kept = [
        old for old in history
        if not (
            isinstance(old, dict)
            and (old.get("commit"), old.get("cpus"), old.get("gil")) == key
        )
    ]
    return kept + [entry]


def main(argv=None) -> int:
    import argparse
    import json

    from repro.bench import run_experiment

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem sizes, single timing repeat (the CI setting)",
    )
    parser.add_argument(
        "--out", default="BENCH_host.json", metavar="PATH",
        help="write results as JSON to PATH (default: %(default)s); an "
        "existing file's history list is carried forward and extended",
    )
    args = parser.parse_args(argv)
    result = run_experiment("host_perf", quick=args.quick)
    print(result.render())
    data = dict(result.data)
    entry = _history_entry(result)
    history = _merge_history(_load_history(args.out), entry)
    data["history"] = history
    with open(args.out, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out} ({len(data['history'])} history entries)")
    from repro.bench.trend import previous_comparable, render_delta

    print(render_delta(entry, previous_comparable(history, entry)))
    problems = _check(result)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
