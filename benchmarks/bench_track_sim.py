"""Extension: the persistent TRACK simulation (program-level PR/speedup)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_track_sim(benchmark):
    result = run_figure(benchmark, "track_sim")
    rows = result.data["rows"]
    speedups = [r[5] for r in rows]
    prs = [r[4] for r in rows]
    # Speedup grows with processors; PR declines (more block boundaries
    # for the smoothing dependences to cross).
    assert all(a < b for a, b in zip(speedups, speedups[1:]))
    assert all(a >= b for a, b in zip(prs, prs[1:]))
    # Track files end identical regardless of p (checked in-test via twins;
    # here: same final track count on every machine size).
    assert len({r[1] for r in rows}) == 1
