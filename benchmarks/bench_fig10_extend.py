"""Fig. 10: EXTEND 400 parallelism ratio and speedup (speculative induction)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig10(benchmark):
    result = run_figure(benchmark, "fig10")
    pr, sp = result.data["PR"], result.data["speedup"]
    p = result.data["p"]
    # Clean runs: PR = 1, speedup capped near p/2 by the two doalls
    # (~60% of a one-doall hand parallelization).
    assert all(v == 1.0 for v in pr["clean"])
    assert 0.35 * p[-1] < sp["clean"][-1] < 0.62 * p[-1]
    # Dependence-carrying inputs degrade both.
    assert pr["heavy-deps"][-1] < 1.0
    assert sp["heavy-deps"][-1] < sp["clean"][-1]
