"""Fig. 5: FMA3D Quad loop speedup (fully parallel, one stage)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig05(benchmark):
    result = run_figure(benchmark, "fig05")
    p, speedup = result.data["p"], result.data["speedup"]
    # Near-linear scaling minus testing overhead.
    assert all(a < b for a, b in zip(speedup, speedup[1:]))
    assert speedup[-1] > 0.8 * p[-1]
