"""Fig. 6: SPICE loop speedups (wavefront LU, loop 70, BJT) and whole code."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig06(benchmark):
    result = run_figure(benchmark, "fig06")
    data = result.data
    # The doall-style loops scale; the wavefront LU scales but below them
    # (per-level barriers); the whole code saturates under Amdahl.
    assert data["s70"][-1] > data["s15"][-1]
    assert data["sbjt"][-1] > data["s15"][-1]
    assert data["whole"][-1] < data["sbjt"][-1]
    assert data["whole"][-1] > data["whole"][0]
    assert data["s15"][-1] > 2.0
