"""Fig. 11: FPTRAK 300 parallelism ratio and speedup."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig11(benchmark):
    result = run_figure(benchmark, "fig11")
    pr, sp = result.data["PR"], result.data["speedup"]
    assert all(v == 1.0 for v in pr["clean"])
    assert sp["clean"][-1] > sp["clean"][0]
    assert pr["heavy-deps"][-1] <= pr["light-deps"][-1]
