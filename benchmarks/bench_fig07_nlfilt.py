"""Fig. 7: NLFILT 300 parallelism ratio and speedup per input set."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig07(benchmark):
    result = run_figure(benchmark, "fig07")
    pr = result.data["PR"]
    sp = result.data["speedup"]
    # The dependence-free deck keeps PR = 1 at every processor count and
    # the best speedup; denser dependences sit at or below it.
    assert all(v == 1.0 for v in pr["fully-par"])
    for deck in ("sparse-deps", "medium-deps", "dense-deps"):
        assert all(a <= b for a, b in zip(pr[deck], pr["fully-par"]))
        assert sp[deck][-1] <= sp["fully-par"][-1]
    # Speedup grows with p for the parallel deck.
    assert sp["fully-par"][-1] > sp["fully-par"][0]
