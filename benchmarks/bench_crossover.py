"""Extension: the NRD vs RD crossover over the work/overhead ratio."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_crossover(benchmark):
    result = run_figure(benchmark, "crossover")
    winners = [row[3] for row in result.data["rows"]]
    # NRD wins at the cheap end, RD at the expensive end, and the winner
    # flips exactly once (a monotone crossover).
    assert winners[0] == "NRD"
    assert winners[-1] == "RD"
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
    assert result.data["crossover_at"] is not None
