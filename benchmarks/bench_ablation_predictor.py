"""Extension ablation: history-based strategy selection."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_ablation_predictor(benchmark):
    result = run_figure(benchmark, "ablation_predictor")
    rows = {r[0]: r[1] for r in result.data["rows"]}
    fixed = [v for k, v in rows.items() if k != "history-predicted"]
    predicted = rows["history-predicted"]
    # After exploration the predictor exploits the winner: it must land
    # above the median fixed strategy and within reach of the best.
    assert predicted >= sorted(fixed)[len(fixed) // 2]
    assert predicted >= 0.6 * max(fixed)
