"""Fig. 1: the NRD/RD worked example (8 iterations, 4 processors)."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_fig01(benchmark):
    result = run_figure(benchmark, "fig01")
    rows = result.data["rows"]
    nrd = [r for r in rows if r[0] == "NRD"]
    # Two steps of two iterations per processor, exactly as in the paper.
    assert len(nrd) == 2
    assert nrd[0][3] == 4 and nrd[0][5] == "yes"
    assert nrd[1][3] == 4 and nrd[1][5] == "no"
