"""Extension: schedule-reuse amortization across SPICE Newton iterations."""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_figure


def bench_spice_program(benchmark):
    result = run_figure(benchmark, "spice_program")
    speedups = result.data["speedups"]
    # Extraction iteration is the slowest; reuse iterations reach a steady
    # state well above it, and the program total sits in between.
    assert min(speedups[1:]) > 1.5 * speedups[0]
    assert speedups[0] < result.data["total"] < max(speedups[1:])
