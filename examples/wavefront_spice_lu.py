"""DDG extraction + wavefront scheduling on SPICE's sparse LU loop.

DCDCMP loop 15 is partially parallel: each row elimination depends on a few
earlier rows (the circuit topology), so the plain R-LRPD schedule restarts
constantly.  Section 3's answer: run the sliding-window R-LRPD test once
while logging every dependence into the inverted edge table, build the full
iteration DDG, and schedule by wavefronts.  The schedule depends only on the
access pattern, so it is reused for the rest of the program.

Run:  python examples/wavefront_spice_lu.py
"""

from repro import (
    RuntimeConfig,
    execute_wavefront,
    extract_ddg,
    parallelize,
    run_sequential,
    sequential_reference,
    wavefront_schedule,
)
from repro.workloads import make_dcdcmp15_loop

P = 8
REUSES = 10  # how many instantiations share one extracted schedule


def main() -> None:
    loop = make_dcdcmp15_loop("adder.128")
    print(f"{loop.name}: {loop.n_iterations} rows to factor on {P} processors")

    plain = parallelize(loop, P, RuntimeConfig.adaptive())
    print(
        f"plain R-LRPD:  {plain.n_stages} stages, speedup {plain.speedup:.2f}x "
        "(dependences everywhere -> nearly sequential schedule)"
    )

    ddg = extract_ddg(loop, P, RuntimeConfig.sw(window_size=16 * P))
    schedule = wavefront_schedule(ddg.graph(), loop.n_iterations)
    print(
        f"DDG extraction: {len(ddg.edges)} edges, critical path "
        f"{schedule.critical_path} wavefronts, average parallelism "
        f"{schedule.average_parallelism:.1f}"
    )

    wf = execute_wavefront(loop, schedule, P)
    reference = sequential_reference(loop)
    assert wf.memory.equals(reference)
    print(f"wavefront execution: speedup {wf.speedup:.2f}x (state verified)")

    t_seq = run_sequential(loop).total_time
    amortized = (
        ddg.extraction.total_time + (REUSES - 1) * wf.total_time
    ) / REUSES
    print(
        f"amortized over {REUSES} instantiations (schedule reuse): "
        f"{t_seq / amortized:.2f}x"
    )


if __name__ == "__main__":
    main()
