"""Redistribution policies and the Section 4 cost model (the Fig. 4 story).

A synthetic 'geometric' loop loses half of the remaining iterations to a
dependence at every stage.  Three policies race:

* never   (NRD) -- failed processors redo their own blocks, the rest idle;
* always  (RD)  -- the remainder is re-blocked over all processors;
* adaptive      -- redistribute only while Eq. (4) holds:
                   n_remaining >= p*s / (omega - ell).

Run:  python examples/adaptive_redistribution.py
"""

from repro import CostModel, RuntimeConfig, run_blocked
from repro.model import k_d_geometric, k_s_geometric, t_static, total_time_geometric
from repro.workloads import chain_loop, geometric_chain_targets

N, P, ALPHA = 4096, 8, 0.5
COSTS = CostModel(omega=1.0, ell=0.3, sync=20.0)


def main() -> None:
    targets = geometric_chain_targets(N, ALPHA)
    print(f"geometric loop: n={N}, p={P}, alpha={ALPHA}, deps at {targets}\n")

    policies = [
        ("never (NRD)", RuntimeConfig.nrd()),
        ("always (RD)", RuntimeConfig.rd()),
        ("adaptive", RuntimeConfig.adaptive()),
    ]
    for label, config in policies:
        result = run_blocked(chain_loop(N, targets), P, config, costs=COSTS)
        cumulative = result.timeline.cumulative_spans()
        print(f"{label:14s} stages={result.n_stages:2d} "
              f"T_par={result.total_time:8.1f} speedup={result.speedup:.2f}")
        print(f"{'':14s} cumulative: "
              + " ".join(f"{c:.0f}" for c in cumulative))

    print("\nSection 4 closed forms:")
    k_s = k_s_geometric(ALPHA, P)
    k_d = k_d_geometric(N, COSTS.omega, COSTS.ell, COSTS.sync, P, ALPHA)
    print(f"  k_s = {k_s:.2f} steps (no redistribution)")
    print(f"  k_d = {k_d:.2f} steps of profitable redistribution (Eq. 7)")
    print(f"  T_static = {t_static(N, COSTS.omega, COSTS.sync, P, k_s):.0f}")
    print(
        "  T(n)     = "
        f"{total_time_geometric(N, COSTS.omega, COSTS.ell, COSTS.sync, P, ALPHA):.0f}"
        "  (redistribute k_d steps, then NRD)"
    )


if __name__ == "__main__":
    main()
