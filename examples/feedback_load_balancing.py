"""Feedback-guided load balancing across loop instantiations (Section 5.1).

The R-LRPD test requires static block scheduling, which an irregular loop
punishes: with gamma-distributed iteration costs, the slowest block gates
every stage.  The balancer measures per-iteration times, computes the
prefix-sum block distribution that would have balanced the load, and uses
it for the next instantiation.

Run:  python examples/feedback_load_balancing.py
"""

import dataclasses

from repro import FeedbackBalancer, RuntimeConfig, parallelize
from repro.workloads import make_nlfilt_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS

P = 8
INSTANTIATIONS = 5


def main() -> None:
    # Heavy-tailed iteration costs, dependences switched off so the speedup
    # differences come from load balance alone.
    deck = dataclasses.replace(
        NLFILT_DECKS["opt-study"],
        name="imbalanced",
        dep_prob=0.0,       # no dependences: differences are balance alone
        work_cv=1.0,
        work_ramp=3.0,      # later iterations carry 4x the work of early ones
    )
    print(
        f"NLFILT deck {deck.name}: n={deck.n}, work_cv={deck.work_cv}, "
        f"work_ramp={deck.work_ramp}, p={P}\n"
    )

    for label, feedback in [("static blocks", False), ("feedback-guided", True)]:
        balancer = FeedbackBalancer()
        config = RuntimeConfig.adaptive(feedback_balancing=feedback)
        print(f"-- {label} --")
        for k in range(INSTANTIATIONS):
            loop = make_nlfilt_loop(deck, instance=k)
            weights = (
                balancer.predict(loop.name, loop.n_iterations) if feedback else None
            )
            result = parallelize(loop, P, config, weights=weights)
            if feedback:
                balancer.record(
                    loop.name, result.iteration_times, loop.n_iterations
                )
            print(
                f"  instantiation {k}: speedup {result.speedup:5.2f}x "
                f"({result.n_stages} stages)"
            )
        print()


if __name__ == "__main__":
    main()
