"""Speculating past a data-dependent loop exit (SPICE DCDCMP loop 70).

Sequentially the loop stops the moment a convergence flag trips; nothing
after the exit iteration executes.  Speculatively, every processor runs its
whole block; the runtime then validates the earliest exit whose processor's
own work is correct, commits everything up to it, and rolls the rest back
-- one stage, no serialization, with the speculated tail showing up only as
wasted (overlapped) work.

Run:  python examples/premature_exit.py
"""

from repro import RuntimeConfig, parallelize, run_sequential
from repro.workloads import make_dcdcmp70_loop

P = 8


def main() -> None:
    loop = make_dcdcmp70_loop("adder.128")
    seq = run_sequential(make_dcdcmp70_loop("adder.128"))
    print(f"{loop.name}: {loop.n_iterations} candidate iterations")
    print(
        f"sequential execution exits at iteration {seq.exit_iteration} "
        f"(useful work {seq.sequential_work:.0f})"
    )

    result = parallelize(loop, P, RuntimeConfig.nrd())
    print(f"\nspeculative run on p={P}:")
    print(f"  stages:          {result.n_stages} (the exit did not serialize us)")
    print(f"  validated exit:  iteration {result.exit_iteration}")
    print(f"  committed work:  {result.sequential_work:.0f}")
    print(f"  speculated tail: {result.wasted_work:.0f} (overlapped, discarded)")
    print(f"  speedup:         {result.speedup:.2f}x")

    assert result.exit_iteration == seq.exit_iteration
    assert result.memory.equals(seq.memory.snapshot())
    print("\nfinal state == sequential execution: verified")


if __name__ == "__main__":
    main()
