"""Porting a new loop onto the runtime, the safe way.

The workflow: write the body against the IterationContext, declare the
arrays, and let `certify` run it under every strategy against the
sequential oracle -- including the untested-array contract check that
catches the classic porting mistake (declaring a shared array "statically
analyzable" when it is not).

Run:  python examples/certify_new_loop.py
"""

import numpy as np

from repro import ArraySpec, SpeculativeLoop, certify

N, P = 512, 8

rng = np.random.default_rng(11)
subscripts = rng.integers(0, N, size=N)  # runtime-only write targets
DATA = rng.random(N)
# NB: certify() calls the factory several times; the loop it builds must be
# identical each time, so all random inputs are drawn once, up front.


def make_first_attempt():
    """First port: HIST mis-declared as untested ('it is just a counter')."""

    def body(ctx, i):
        x = ctx.load("DATA", i)
        ctx.store("OUT", int(subscripts[i]), x * 2.0)
        # Every processor bumps the same counter cell: NOT statically
        # analyzable, despite looking innocent.
        ctx.store("HIST", 0, float(i))

    return SpeculativeLoop(
        "port-v1", N, body,
        arrays=[
            ArraySpec("DATA", DATA, tested=False),
            ArraySpec("OUT", np.zeros(N), tested=True),
            ArraySpec("HIST", np.zeros(4), tested=False),  # the bug
        ],
    )


def make_fixed():
    """Second port: HIST declared tested; the runtime handles the sharing."""

    def body(ctx, i):
        x = ctx.load("DATA", i)
        ctx.store("OUT", int(subscripts[i]), x * 2.0)
        ctx.store("HIST", 0, float(i))

    return SpeculativeLoop(
        "port-v2", N, body,
        arrays=[
            ArraySpec("DATA", DATA, tested=False),
            ArraySpec("OUT", np.zeros(N), tested=True),
            ArraySpec("HIST", np.zeros(4), tested=True),
        ],
    )


def main() -> None:
    print("-- first attempt (HIST mis-declared untested) --")
    bad = certify(make_first_attempt, P)
    print(bad.render())

    print("\n-- after fixing the declaration --")
    good = certify(make_fixed, P)
    print(good.render())
    best = good.best()
    print(f"\nbest strategy: {best.label} at {best.result.speedup:.2f}x")


if __name__ == "__main__":
    main()
