"""Certifying a new loop before it ever speculates.

The static certification front-end (`repro.model.certify`) probes a loop's
access pattern and issues a typed verdict before the speculative machinery
is committed:

* ``DOALL``      -- provably independent: runs on the zero-speculation
                    fast path (plain loads/stores, no shadow marking, no
                    checkpoint, no commit copy-out);
* ``SEQUENTIAL`` -- a flow chain covers the iteration space: speculation
                    is provably doomed, so the loop runs in order at once;
* ``SPECULATE``  -- neither extreme is provable: the loop enters the
                    R-LRPD pipeline, and the certificate's strategy/window
                    hint seeds the history predictors.

Run:  python examples/certify_new_loop.py
"""

import numpy as np

from repro import ArraySpec, SpeculativeLoop, parallelize
from repro.config import RuntimeConfig
from repro.model import certify_loop

N, P = 512, 8

rng = np.random.default_rng(11)
DATA = rng.random(N)
distances = rng.integers(1, 5, size=N)
has_dep = rng.random(N) < 0.3


def make_strided():
    """Iteration i reads DATA[2i % N] and writes OUT[i]: affine, disjoint."""

    def body(ctx, i):
        x = ctx.load("DATA", (2 * i) % N)
        ctx.store("OUT", i, x * 2.0)

    return SpeculativeLoop(
        "port-strided", N, body,
        arrays=[ArraySpec("DATA", DATA), ArraySpec("OUT", np.zeros(N))],
    )


def make_scan():
    """Running maximum: every iteration reads what the last one wrote."""

    def body(ctx, i):
        best = ctx.load("OUT", i - 1) if i else 0.0
        ctx.store("OUT", i, max(best, ctx.load("DATA", i)))

    return SpeculativeLoop(
        "port-scan", N, body,
        arrays=[ArraySpec("DATA", DATA), ArraySpec("OUT", np.zeros(N))],
    )


def make_sparse():
    """Random short-distance flow dependences: speculation territory."""

    def body(ctx, i):
        value = float(ctx.load("DATA", i))
        if has_dep[i] and i - int(distances[i]) >= 0:
            value += 0.5 * ctx.load("OUT", i - int(distances[i]))
        ctx.store("OUT", i, value)

    return SpeculativeLoop(
        "port-sparse", N, body,
        arrays=[ArraySpec("DATA", DATA), ArraySpec("OUT", np.zeros(N))],
    )


def main() -> None:
    for make in (make_strided, make_scan, make_sparse):
        cert = certify_loop(make())
        print(f"{make().name:14s} {cert.describe()}")

    print("\n-- running under the default (--certify=hint) dispatch --")
    for make in (make_strided, make_scan, make_sparse):
        res = parallelize(make(), P)
        print(
            f"{res.loop_name:14s} strategy={res.strategy:12s} "
            f"stages={res.n_stages:3d} speedup={res.speedup:.2f}x"
        )

    print("\n-- the fast path is an optimization, not a semantic change --")
    fast = parallelize(make_strided(), P)
    slow = parallelize(make_strided(), P, RuntimeConfig.adaptive(certify="off"))
    identical = all(
        (fast.memory[name].data == slow.memory[name].data).all()
        for name in fast.memory.names()
    )
    print(
        f"certified run matches the speculative pipeline bit-for-bit: "
        f"{identical} ({slow.strategy} {slow.speedup:.2f}x -> "
        f"{fast.strategy} {fast.speedup:.2f}x)"
    )


if __name__ == "__main__":
    main()
