"""Quickstart: speculatively parallelize a loop the compiler cannot analyze.

The loop's write index comes through a subscript array (runtime data), so a
static compiler must assume the worst.  The R-LRPD test runs it as a doall,
detects the one real cross-processor dependence, commits everything before
it, and re-executes only the remainder -- and the final state provably
equals a sequential execution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArraySpec,
    RuntimeConfig,
    SpeculativeLoop,
    parallelize,
    sequential_reference,
)

N = 1000
P = 8

# Input-dependent subscripts: mostly i -> i (parallel), but a handful of
# iterations read a value produced a few iterations earlier.
rng = np.random.default_rng(42)
read_from = np.arange(N)
for sink in rng.choice(np.arange(10, N), size=4, replace=False):
    read_from[sink] = sink - rng.integers(1, 8)
# ...and one dependence that is guaranteed to cross a processor boundary.
read_from[N // 2] = N // 2 - 5


def body(ctx, i):
    src = int(read_from[i])          # runtime-only information
    x = ctx.load("A", src)           # instrumented read (copy-in on demand)
    ctx.store("A", i, 0.5 * x + 1.0)  # instrumented write (privatized)


loop = SpeculativeLoop(
    name="quickstart",
    n_iterations=N,
    body=body,
    arrays=[ArraySpec("A", np.zeros(N))],
)


def main() -> None:
    result = parallelize(loop, P, RuntimeConfig.adaptive())
    print(f"loop: {result.loop_name}   strategy: {result.strategy}   p={P}")
    print(f"stages: {result.n_stages}   restarts: {result.n_restarts}")
    print(f"parallelism ratio: {result.parallelism_ratio:.3f}")
    print(f"T_seq (useful work): {result.sequential_work:.1f}")
    print(f"T_par (all overheads): {result.total_time:.1f}")
    print(f"speedup: {result.speedup:.2f}x")

    for stage in result.stages:
        status = "failed -> re-execute remainder" if stage.failed else "clean"
        print(
            f"  stage {stage.index}: committed {stage.committed_iterations} "
            f"iterations, {stage.remaining_after} remaining ({status})"
        )

    reference = sequential_reference(loop)
    assert result.memory.equals(reference), "speculation must match sequential!"
    print("final state == sequential execution: verified")


if __name__ == "__main__":
    main()
