"""The TRACK application end to end (Figs. 7, 10, 11, 12).

TRACK's three dominant loops (~95% of sequential time) each need a
different piece of the runtime: NLFILT's guarded writes use the plain
recursive test, EXTEND and FPTRAK need the two-phase speculative-induction
runner.  This example runs several instantiations of each, reports the
per-loop parallelism ratios, and composes the whole-program speedup.

Run:  python examples/track_program.py
"""

from repro import RuntimeConfig, run_program
from repro.workloads import (
    make_extend_loop,
    make_fptrak_loop,
    make_nlfilt_loop,
)

P = 8
INSTANCES = 3

#: Sequential-profile weights; the remaining 5% stays serial.
PROFILE = {"nlfilt": 0.45, "extend": 0.30, "fptrak": 0.20, "serial": 0.05}


def main() -> None:
    config = RuntimeConfig.adaptive(feedback_balancing=True)
    programs = {
        "nlfilt": run_program(
            (make_nlfilt_loop("sparse-deps", instance=k) for k in range(INSTANCES)),
            P,
            config,
        ),
        "extend": run_program(
            (make_extend_loop("light-deps", instance=k) for k in range(INSTANCES)),
            P,
            config,
        ),
        "fptrak": run_program(
            (make_fptrak_loop("light-deps", instance=k) for k in range(INSTANCES)),
            P,
            config,
        ),
    }

    print(f"TRACK on {P} processors, {INSTANCES} instantiations per loop\n")
    denominator = PROFILE["serial"]
    for name, prog in programs.items():
        print(
            f"{prog.loop_name:28s} PR={prog.parallelism_ratio:.3f} "
            f"restarts={prog.n_restarts:2d} speedup={prog.speedup:5.2f}x"
        )
        denominator += PROFILE[name] / prog.speedup

    print(f"\nTRACK whole-program speedup (Amdahl over the profile): "
          f"{1.0 / denominator:.2f}x")

    # -- the persistent simulation: the same three loops sharing one track
    # file across time steps, every commit feeding the next step.
    from repro.workloads import TrackSimConfig, TrackSimulation

    print(f"\npersistent simulation ({P} processors, 5 time steps):")
    sim_cfg = TrackSimConfig(max_tracks=2048, initial_tracks=64)
    sim = TrackSimulation(sim_cfg)
    program = sim.run(5, P, config)
    print(
        f"  tracks grew {sim_cfg.initial_tracks} -> {sim.n_tracks}; "
        f"{program.n_instantiations} loop instantiations, "
        f"PR={program.parallelism_ratio:.3f}, "
        f"speedup {program.speedup:.2f}x"
    )
    twin = TrackSimulation(TrackSimConfig(max_tracks=2048, initial_tracks=64))
    twin.run(5, 1, config)
    assert sim.memory.equals(twin.snapshot())
    print("  state matches a single-processor twin: verified")


if __name__ == "__main__":
    main()
