"""History-based strategy selection across loop instantiations.

The paper: "So far we have not devised a strategy to choose between the two
techniques [SW vs (N)RD] except through the use of history based
predictions."  This example runs a long-distance-dependence NLFILT deck
(where the sliding window wins) under a predictor that explores NRD,
adaptive RD and SW once each, then exploits the observed winner.

Run:  python examples/strategy_prediction.py
"""

from repro import (
    RuntimeConfig,
    StrategyPredictor,
    WindowPredictor,
    parallelize,
    run_program,
    run_program_predictive,
)
from repro.workloads import make_nlfilt_loop

P = 8
REPS = 8
CANDIDATES = [
    RuntimeConfig.nrd(),
    RuntimeConfig.adaptive(),
    RuntimeConfig.sw(window_size=8 * P),
]


def main() -> None:
    print(f"NLFILT deck 16-400 (long-distance deps), {REPS} instantiations, p={P}\n")

    for cfg in CANDIDATES:
        prog = run_program(
            (make_nlfilt_loop("16-400", instance=k) for k in range(REPS)), P, cfg
        )
        print(f"fixed {cfg.label():14s} speedup={prog.speedup:5.2f} "
              f"restarts={prog.n_restarts}")

    predictor = StrategyPredictor(CANDIDATES)
    prog = run_program_predictive(
        [make_nlfilt_loop("16-400", instance=k) for k in range(REPS)], P, predictor
    )
    print(f"\nhistory-predicted    speedup={prog.speedup:5.2f} "
          f"restarts={prog.n_restarts}")
    print(f"converged on: {predictor.best_label('nlfilt_300[16-400]')}")
    print("per-instantiation strategies:",
          [r.strategy for r in prog.runs])

    # Window-size adaptation: grow while clean, shrink on restarts.
    print("\nadaptive window sizing:")
    wpred = WindowPredictor(initial=2 * P, maximum=64 * P)
    loop_name = None
    for k in range(REPS):
        loop = make_nlfilt_loop("16-400", instance=k)
        loop_name = loop.name
        res = parallelize(loop, P, wpred.config_for(loop.name))
        wpred.record(loop.name, res)
        print(f"  instantiation {k}: {res.strategy:10s} "
              f"restarts={res.n_restarts} speedup={res.speedup:5.2f} "
              f"-> next window {wpred.window_for(loop.name)}")


if __name__ == "__main__":
    main()
