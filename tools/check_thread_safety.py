#!/usr/bin/env python3
"""CI guard: worker code paths must justify every touch of shared state.

The threads backend (``repro/core/threads.py``) executes blocks on worker
threads **inside the engine's process**: any statement that reaches
through the live engine object can race the supervisor, the merge phase
or another worker.  Its safety argument is a short list of invariants
(one block per processor per stage, thread-local charge logs and
checkpoints, merge-in-block-order), and each touch of shared state must
say which invariant covers it.

This lint enforces that: inside the registered worker-path functions,
any statement whose expression tree reaches a *shared root* name (the
live engine, and anything else a registry entry lists) fails CI unless
the statement carries a ``# thread-safe: <reason>`` annotation on the
same line or in the contiguous comment block directly above it.  Reads
are flagged too -- a racy read of state another thread mutates is as
wrong as a racy write, and the annotation is where the "this is
read-only here" argument belongs.

Fork/shm worker functions are not scanned: they run post-fork in a child
address space where every object is private by construction.

Exits non-zero with a report on violation.  Run from the repo root::

    python tools/check_thread_safety.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: file -> (worker-path function names, shared-root variable names).
#: A function name matches both plain functions and methods.
WORKER_PATHS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "core/threads.py": (("_run_thread_task", "_worker_loop"), ("eng",)),
}

ANNOTATION = "thread-safe:"


def _annotated(source_lines: list[str], lineno: int) -> bool:
    """Whether the statement at 1-based ``lineno`` is justified: the
    annotation may sit on the statement's first line or anywhere in the
    contiguous comment block directly above it."""
    if ANNOTATION in source_lines[lineno - 1]:
        return True
    k = lineno - 2
    while k >= 0 and source_lines[k].lstrip().startswith("#"):
        if ANNOTATION in source_lines[k]:
            return True
        k -= 1
    return False


def _touches(node: ast.AST, roots: tuple[str, ...]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in roots
        for sub in ast.walk(node)
    )


def _header_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The parts of a statement attributable to its own first line(s):
    for compound statements, the header expression only -- the body is
    visited statement by statement so each line needs its own
    justification."""
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def _body_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block:
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []):
        blocks.append(handler.body)
    return blocks


def check_function(
    path: pathlib.Path,
    fn: ast.FunctionDef,
    roots: tuple[str, ...],
    lines: list[str],
) -> list[str]:
    problems: list[str] = []

    def visit_block(block: list[ast.stmt]) -> None:
        for stmt in block:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_block(stmt.body)
                continue
            header = _header_nodes(stmt)
            if any(_touches(node, roots) for node in header) and not _annotated(
                lines, stmt.lineno
            ):
                problems.append(
                    f"{path.relative_to(ROOT)}:{stmt.lineno} [{fn.name}]: "
                    f"touches shared state ({'/'.join(roots)}) from a "
                    "worker code path"
                )
            for inner in _body_blocks(stmt):
                visit_block(inner)

    visit_block(fn.body)
    return problems


def check_file(
    path: pathlib.Path, functions: tuple[str, ...], roots: tuple[str, ...]
) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    problems: list[str] = []
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in functions:
            found.add(node.name)
            problems.extend(check_function(path, node, roots, lines))
    for missing in sorted(set(functions) - found):
        problems.append(
            f"{path.relative_to(ROOT)}: registered worker-path function "
            f"{missing!r} not found (update WORKER_PATHS in "
            "tools/check_thread_safety.py)"
        )
    return problems


def main() -> int:
    problems: list[str] = []
    for entry, (functions, roots) in sorted(WORKER_PATHS.items()):
        problems.extend(check_file(SRC / entry, functions, roots))
    for problem in problems:
        print(f"THREAD-SAFETY: {problem}", file=sys.stderr)
    if problems:
        print(
            f"\n{len(problems)} violation(s); worker threads share the "
            "engine's address space, so every statement that reaches the "
            "live engine must state its safety argument with "
            "'# thread-safe: <reason>' (exclusive per-proc state, "
            "thread-local log/checkpoint, read-only map, ...).",
            file=sys.stderr,
        )
        return 1
    print("thread-safety guard: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
