#!/usr/bin/env python3
"""CI guard: the speculate->analyze->commit lifecycle must not fork.

Before the engine refactor, five driver modules each carried their own
copy of the stage loop (checkpoint, execute, analyze, commit/restore,
retry bounds) and they drifted.  Two checks keep that from recurring:

1. **Lifecycle tokens** -- the identifiers implementing zero-commit
   retry accounting and the ``max_fault_retries`` bound may appear in
   ``repro/core/engine.py`` only (the config knob's definition and the
   error type's docstring are exempt).
2. **Duplicate code runs** -- no two core modules may share a run of
   ``WINDOW`` identical normalized code lines; a shared run that long
   means a lifecycle fragment was copied instead of hooked.

Exits non-zero with a report on violation.  Run from the repo root::

    python tools/check_single_lifecycle.py
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
CORE = ROOT / "src" / "repro" / "core"

#: Identifiers that constitute lifecycle logic.  Only the engine may use them.
LIFECYCLE_TOKENS = ("zero_commit_streak", "max_fault_retries")

#: Modules whose pairwise duplication is checked (engine + every module
#: that historically carried its own stage loop).
DUPLICATION_SCOPE = (
    "engine.py",
    "rlrpd.py",
    "window.py",
    "iterwise.py",
    "induction_runner.py",
    "lrpd.py",
    "ddg.py",
    "runner.py",
)

WINDOW = 10  # consecutive identical normalized lines that count as a fork


def check_lifecycle_tokens() -> list[str]:
    problems = []
    for path in sorted(CORE.glob("*.py")):
        if path.name == "engine.py":
            continue
        text = path.read_text()
        for token in LIFECYCLE_TOKENS:
            if token in text:
                problems.append(
                    f"{path.relative_to(ROOT)}: lifecycle token {token!r} "
                    "outside engine.py"
                )
    return problems


def _normalized_lines(path: pathlib.Path) -> list[str]:
    """Code lines only: whitespace collapsed, blanks and comments dropped."""
    out = []
    for raw in path.read_text().splitlines():
        line = " ".join(raw.split())
        if not line or line.startswith("#"):
            continue
        out.append(line)
    return out


def check_duplicate_runs() -> list[str]:
    windows: dict[tuple[str, ...], str] = {}
    problems = []
    for name in DUPLICATION_SCOPE:
        path = CORE / name
        lines = _normalized_lines(path)
        seen_here = set()
        for k in range(len(lines) - WINDOW + 1):
            window = tuple(lines[k : k + WINDOW])
            if window in seen_here:
                continue
            seen_here.add(window)
            other = windows.setdefault(window, name)
            if other != name:
                problems.append(
                    f"{name} and {other} share {WINDOW} identical code "
                    f"lines starting at: {window[0][:70]!r}"
                )
                break  # one report per pair is enough
    return problems


def main() -> int:
    problems = check_lifecycle_tokens() + check_duplicate_runs()
    for problem in problems:
        print(f"LIFECYCLE FORK: {problem}", file=sys.stderr)
    if problems:
        print(
            f"\n{len(problems)} violation(s); lifecycle logic belongs in "
            "repro/core/engine.py -- add a Strategy hook instead of copying.",
            file=sys.stderr,
        )
        return 1
    print("single-lifecycle guard: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
