#!/usr/bin/env python3
"""CI guard: hot-path modules must not grow per-element Python loops.

The kernels refactor funnels every per-element inner loop of the runtime
-- shadow marking, private-view copies, analysis reductions -- through the
batch primitives in ``repro/kernels`` (numpy-vectorized, with a pure-Python
scalar reference).  This lint keeps it that way: a ``for``/``while``
statement in a hot-path module fails CI unless it carries a
``# hot-path: <reason>`` annotation on the same line or in the comment
block directly above it.

The scalar reference (``repro/kernels/scalar.py``) is the one place
per-element loops are *supposed* to live and is not scanned.
Comprehensions and generator expressions are not flagged -- the lint
targets statement loops, where per-element marking/copy logic historically
accumulated.

Exits non-zero with a report on violation.  Run from the repo root::

    python tools/check_hot_path.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Files and directories whose statement loops need justification.
HOT_PATHS = (
    "shadow",
    "machine/memory.py",
    "core/analysis.py",
)

ANNOTATION = "hot-path:"


def _hot_files() -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for entry in HOT_PATHS:
        path = SRC / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.py")))
        else:
            files.append(path)
    return files


def _annotated(source_lines: list[str], lineno: int) -> bool:
    """Whether the loop at 1-based ``lineno`` is justified: the annotation
    may sit on the loop line itself or anywhere in the contiguous comment
    block directly above it."""
    if ANNOTATION in source_lines[lineno - 1]:
        return True
    k = lineno - 2
    while k >= 0 and source_lines[k].lstrip().startswith("#"):
        if ANNOTATION in source_lines[k]:
            return True
        k -= 1
    return False


def _qualname(stack: list[str]) -> str:
    return ".".join(stack) if stack else "<module>"


def check_file(path: pathlib.Path) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    problems: list[str] = []

    def walk(node: ast.AST, stack: list[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                walk(child, stack + [child.name])
                continue
            if isinstance(child, (ast.For, ast.While)) and not _annotated(
                lines, child.lineno
            ):
                problems.append(
                    f"{path.relative_to(ROOT)}:{child.lineno} "
                    f"[{_qualname(stack)}]: statement loop in a hot-path "
                    "module"
                )
            walk(child, stack)

    walk(tree, [])
    return problems


def main() -> int:
    problems: list[str] = []
    for path in _hot_files():
        problems.extend(check_file(path))
    for problem in problems:
        print(f"HOT-PATH LOOP: {problem}", file=sys.stderr)
    if problems:
        print(
            f"\n{len(problems)} violation(s); per-element work belongs in "
            "the batch primitives of repro/kernels (vector + scalar "
            "reference).  Route the loop through get_kernels(), or mark a "
            "legitimately non-per-element loop with '# hot-path: <reason>'.",
            file=sys.stderr,
        )
        return 1
    print("hot-path loop guard: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
