"""Tests for the top-level dispatch and program runners."""

import numpy as np

from repro.config import RuntimeConfig
from repro.core.runner import parallelize, run_program
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.memory import MemoryImage, SharedArray
from repro.workloads.synthetic import fully_parallel_loop
from repro.workloads.track_extend import EXTEND_DECKS, make_extend_loop

import dataclasses


class TestDispatch:
    def test_blocked_by_default(self):
        res = parallelize(
            fully_parallel_loop(32), 4, RuntimeConfig.adaptive(certify="off")
        )
        assert res.strategy == "RD-adaptive"

    def test_certifiable_doall_takes_fast_path_by_default(self):
        res = parallelize(fully_parallel_loop(32), 4)
        assert res.strategy == "certified-doall"
        assert res.certificate is not None and res.certificate.verdict == "DOALL"

    def test_sliding_window_config_routes_to_sw(self):
        res = parallelize(
            fully_parallel_loop(32), 4, RuntimeConfig.sw(8, certify="off")
        )
        assert res.strategy.startswith("SW")

    def test_induction_loops_route_to_induction_runner(self):
        deck = dataclasses.replace(EXTEND_DECKS["clean"], n=64)
        res = parallelize(make_extend_loop(deck), 4, RuntimeConfig.sw(8))
        # Induction takes precedence over the SW config.
        assert "induction" in res.strategy

    def test_default_config_is_adaptive(self):
        res = parallelize(
            fully_parallel_loop(16), 2, RuntimeConfig.adaptive(certify="off")
        )
        assert res.strategy == "RD-adaptive"


class TestMemoryThreading:
    def test_explicit_memory_reused(self):
        """Program-level drivers can thread one shared image through
        successive loop invocations."""

        def body(ctx, i):
            x = ctx.load("A", i)
            ctx.store("A", i, x + 1.0)

        loop = SpeculativeLoop(
            "threaded", 16, body, arrays=[ArraySpec("A", np.zeros(16))]
        )
        memory = MemoryImage([SharedArray("A", np.zeros(16))])
        parallelize(loop, 4, memory=memory)
        parallelize(loop, 4, memory=memory)
        assert (memory["A"].data == 2.0).all()

    def test_fresh_memory_by_default(self):
        loop = fully_parallel_loop(8)
        r1 = parallelize(loop, 2)
        r2 = parallelize(loop, 2)
        assert r1.memory is not r2.memory
        assert r1.memory.equals(r2.memory.snapshot())


class TestRunProgram:
    def test_strategy_labels_from_first_run(self):
        prog = run_program(
            [fully_parallel_loop(16), fully_parallel_loop(16)], 2,
            RuntimeConfig.nrd(certify="off"),
        )
        assert prog.strategy == "NRD"

    def test_generator_input_accepted(self):
        prog = run_program(
            (fully_parallel_loop(16) for _ in range(2)), 2, RuntimeConfig.nrd()
        )
        assert prog.n_instantiations == 2

    def test_balancer_not_consulted_when_disabled(self):
        from repro.sched.feedback import FeedbackBalancer

        balancer = FeedbackBalancer()
        run_program(
            [fully_parallel_loop(16)], 2,
            RuntimeConfig.nrd(feedback_balancing=False),
            balancer=balancer,
        )
        assert balancer.known_loops() == []

    def test_balancer_records_when_enabled(self):
        from repro.sched.feedback import FeedbackBalancer

        balancer = FeedbackBalancer()
        run_program(
            [fully_parallel_loop(16)], 2,
            RuntimeConfig.nrd(feedback_balancing=True),
            balancer=balancer,
        )
        assert balancer.known_loops() == ["doall"]
