"""Unit tests for dual-clock span tracing and the Perfetto exporter.

:class:`SpanTracker` is exercised with fake clocks so both the host and
virtual durations are exact; :func:`chrome_trace` output is checked
against the Chrome trace-event format Perfetto actually parses (complete
``"X"`` slices on two synthetic processes, ``"M"`` metadata, ``"C"``
counter tracks).
"""

import io
import json

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.obs.events import MetricsSnapshot, SpanClosed
from repro.obs.spans import (
    ENGINE_TID,
    HOST_PID,
    VIRT_PID,
    PerfettoTraceSink,
    SpanTracker,
    chrome_trace,
    make_host_clock,
)
from repro.workloads.synthetic import chain_loop, geometric_chain_targets


class _Clocks:
    """Manually advanced host/virtual clocks for exact span arithmetic."""

    def __init__(self) -> None:
        self.host = 0.0
        self.virt = 0.0

    def tracker(self, emitted):
        return SpanTracker(emitted.append, lambda: self.host, lambda: self.virt)


class TestSpanTracker:
    def test_begin_end_records_both_clocks(self):
        clocks, out = _Clocks(), []
        tracker = clocks.tracker(out)
        span = tracker.begin("execute", "phase", stage=3)
        clocks.host += 0.5
        clocks.virt += 128.0
        tracker.end(span)
        [event] = out
        assert isinstance(event, SpanClosed)
        assert (event.name, event.cat, event.stage, event.proc) == (
            "execute", "phase", 3, None
        )
        assert (event.host_start, event.host_dur) == (0.0, 0.5)
        assert (event.virt_start, event.virt_dur) == (0.0, 128.0)

    def test_phase_context_manager_closes_on_exit(self):
        clocks, out = _Clocks(), []
        tracker = clocks.tracker(out)
        with tracker.phase("analyze", stage=1):
            clocks.virt += 7.0
        assert out[0].name == "analyze" and out[0].virt_dur == 7.0

    def test_phase_closes_even_on_exception(self):
        clocks, out = _Clocks(), []
        tracker = clocks.tracker(out)
        with pytest.raises(RuntimeError):
            with tracker.phase("commit", stage=0):
                raise RuntimeError("mid-phase")
        assert [e.name for e in out] == ["commit"]

    def test_block_span_passes_backend_timings_through(self):
        out = []
        tracker = _Clocks().tracker(out)
        tracker.block_span(2, 5, host_start=0.25, host_dur=0.5,
                           virt_start=100.0, virt_dur=64.0)
        [event] = out
        assert (event.stage, event.proc) == (2, 5)
        assert (event.host_start, event.host_dur) == (0.25, 0.5)
        assert (event.virt_start, event.virt_dur) == (100.0, 64.0)

    def test_make_host_clock_is_monotone_from_zero(self):
        clock = make_host_clock()
        first = clock()
        assert 0.0 <= first <= clock()


def _span(name, cat, stage=None, proc=None, **kw):
    defaults = dict(host_start=0.0, host_dur=1.0, virt_start=0.0, virt_dur=2.0)
    defaults.update(kw)
    return SpanClosed(name=name, cat=cat, stage=stage, proc=proc, **defaults)


class TestChromeTrace:
    def test_each_span_lands_on_both_clock_processes(self):
        trace = chrome_trace([_span("run", "run")])["traceEvents"]
        slices = [e for e in trace if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {HOST_PID, VIRT_PID}
        host = next(e for e in slices if e["pid"] == HOST_PID)
        virt = next(e for e in slices if e["pid"] == VIRT_PID)
        # Host seconds scale to microseconds; virtual units pass through.
        assert (host["ts"], host["dur"]) == (0.0, 1e6)
        assert (virt["ts"], virt["dur"]) == (0.0, 2.0)

    def test_engine_vs_processor_tracks(self):
        trace = chrome_trace([
            _span("execute", "phase", stage=0),
            _span("block", "block", stage=0, proc=3),
        ])["traceEvents"]
        slices = [e for e in trace if e["ph"] == "X"]
        assert {e["tid"] for e in slices} == {ENGINE_TID, 4}
        names = {e["args"]["name"] for e in trace
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"engine", "proc 3"} <= names

    def test_stage_suffix_in_labels(self):
        trace = chrome_trace([_span("stage", "stage", stage=7)])["traceEvents"]
        labels = {e["name"] for e in trace if e["ph"] == "X"}
        assert labels == {"stage s7"}

    def test_stage_metrics_become_counter_tracks(self):
        snap = MetricsSnapshot(scope="stage", stage=0, virt_time=50.0,
                               counters={"shadow.marks": 12}, gauges={},
                               histograms={})
        trace = chrome_trace([snap])["traceEvents"]
        [counter] = [e for e in trace if e["ph"] == "C"]
        assert counter["name"] == "shadow.marks"
        assert counter["pid"] == VIRT_PID and counter["ts"] == 50.0
        assert counter["args"]["value"] == 12

    def test_run_scope_metrics_are_not_counters(self):
        snap = MetricsSnapshot(scope="run", stage=None, virt_time=50.0,
                               counters={"c": 1}, gauges={}, histograms={})
        trace = chrome_trace([snap])["traceEvents"]
        assert not [e for e in trace if e["ph"] == "C"]

    def test_payload_is_json_serializable(self):
        payload = chrome_trace([_span("run", "run")])
        assert payload["displayTimeUnit"] == "ms"
        json.dumps(payload)


class TestPerfettoTraceSink:
    def test_buffers_only_observability_events(self):
        from repro.obs.events import RunBegin

        sink = PerfettoTraceSink(io.StringIO())
        sink.emit(RunBegin(loop="l", strategy="s", n_procs=1, n_iterations=1))
        sink.emit(_span("run", "run"))
        assert len(sink._events) == 1

    def test_borrowed_stream_written_on_close(self):
        buf = io.StringIO()
        sink = PerfettoTraceSink(buf)
        sink.emit(_span("run", "run"))
        sink.close()
        payload = json.loads(buf.getvalue())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_engine_writes_perfetto_file(self, tmp_path):
        n = 64
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        path = tmp_path / "trace.perfetto.json"
        result = parallelize(
            loop, 4,
            RuntimeConfig.adaptive(metrics=True, perfetto_path=str(path)),
        )
        payload = json.loads(path.read_text())
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in slices} == {HOST_PID, VIRT_PID}
        stage_labels = {e["name"] for e in slices if e["name"].startswith("stage")}
        assert len(stage_labels) == result.n_stages
        # perfetto_path implies spans even though `spans` was left None.
        assert [e for e in payload["traceEvents"] if e["ph"] == "C"]
