"""Tests for the feedback-guided load balancer."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.runner import run_program
from repro.sched.feedback import FeedbackBalancer
from repro.workloads.synthetic import fully_parallel_loop
from repro.loopir.loop import ArraySpec, SpeculativeLoop


def ramp_loop(n, factor=4.0, name="ramp"):
    """Iteration cost ramps linearly from 1 to `factor`."""

    def body(ctx, i):
        pass

    return SpeculativeLoop(
        name, n, body,
        arrays=[ArraySpec("A", np.zeros(max(1, n)))],
        iter_work=lambda i: 1.0 + (factor - 1.0) * i / max(1, n - 1),
    )


class TestBalancer:
    def test_no_history_predicts_none(self):
        assert FeedbackBalancer().predict("x", 10) is None

    def test_roundtrip_same_size(self):
        b = FeedbackBalancer()
        b.record("x", {0: 1.0, 1: 2.0, 2: 3.0}, 3)
        assert np.allclose(b.predict("x", 3), [1.0, 2.0, 3.0])

    def test_rescaling_preserves_shape(self):
        b = FeedbackBalancer()
        b.record("x", {i: float(i) for i in range(10)}, 10)
        scaled = b.predict("x", 20)
        assert len(scaled) == 20
        assert scaled[0] == pytest.approx(0.0)
        assert scaled[-1] == pytest.approx(9.0)
        assert all(a <= b_ + 1e-12 for a, b_ in zip(scaled, scaled[1:]))

    def test_missing_iterations_filled_with_mean(self):
        b = FeedbackBalancer()
        b.record("x", {0: 2.0, 2: 4.0}, 3)
        w = b.predict("x", 3)
        assert w[1] == pytest.approx(3.0)

    def test_empty_measurements_ignored(self):
        b = FeedbackBalancer()
        b.record("x", {}, 5)
        assert b.predict("x", 5) is None

    def test_forget(self):
        b = FeedbackBalancer()
        b.record("x", {0: 1.0}, 1)
        b.forget("x")
        assert b.predict("x", 1) is None
        assert b.known_loops() == []

    def test_per_loop_isolation(self):
        b = FeedbackBalancer()
        b.record("x", {0: 1.0, 1: 1.0}, 2)
        assert b.predict("y", 2) is None


class TestEndToEnd:
    def test_feedback_improves_ramp_speedup(self):
        """From the second instantiation on, the measured profile re-blocks
        the ramp and the bottleneck processor shrinks (Section 5.1)."""
        n, p, reps = 1024, 8, 3
        static = run_program(
            (ramp_loop(n) for _ in range(reps)),
            p,
            RuntimeConfig.nrd(feedback_balancing=False),
        )
        balanced = run_program(
            (ramp_loop(n) for _ in range(reps)),
            p,
            RuntimeConfig.nrd(feedback_balancing=True),
        )
        # First instantiations are identical; later ones must improve.
        assert balanced.runs[0].total_time == pytest.approx(
            static.runs[0].total_time, rel=0.01
        )
        assert balanced.runs[-1].total_time < 0.85 * static.runs[-1].total_time

    def test_feedback_handles_size_change(self):
        loops = [ramp_loop(512), ramp_loop(768), ramp_loop(256)]
        prog = run_program(
            loops, 4, RuntimeConfig.nrd(feedback_balancing=True)
        )
        assert prog.n_instantiations == 3  # no crashes on rescale

    def test_feedback_neutral_on_uniform_loop(self):
        prog = run_program(
            (fully_parallel_loop(256) for _ in range(2)),
            4,
            RuntimeConfig.nrd(feedback_balancing=True),
        )
        r0, r1 = prog.runs
        assert r1.total_time == pytest.approx(r0.total_time, rel=0.05)
