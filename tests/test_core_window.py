"""Tests for the sliding-window strategy."""

import pytest

from repro.config import RuntimeConfig
from repro.core.window import default_window, run_sliding_window
from repro.errors import ConfigurationError
from repro.workloads.synthetic import chain_loop, fully_parallel_loop
from repro.workloads.worked_examples import fig2_loop
from tests.conftest import assert_matches_sequential, make_simple_loop


class TestBasics:
    def test_fully_parallel_one_stage_per_window(self):
        loop = fully_parallel_loop(64)
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=16))
        # 64 iterations / window 16 = 4 clean stages.
        assert res.n_stages == 4
        assert res.n_restarts == 0
        assert_matches_sequential(res, loop)

    def test_window_default(self):
        assert default_window(8) == 16
        loop = fully_parallel_loop(32)
        res = run_sliding_window(loop, 8, RuntimeConfig.sw())
        assert res.n_stages == 2

    def test_per_strip_synchronization_cost(self):
        """SW pays one barrier per strip; blocked pays one total -- the
        paper's stated trade-off for fully parallel loops."""
        from repro.core.rlrpd import run_blocked
        from repro.machine.timeline import Category

        loop = fully_parallel_loop(128)
        sw = run_sliding_window(loop, 8, RuntimeConfig.sw(window_size=16))
        blocked = run_blocked(fully_parallel_loop(128), 8, RuntimeConfig.nrd())
        assert sw.timeline.total_category(Category.SYNC) > (
            blocked.timeline.total_category(Category.SYNC)
        )
        assert sw.speedup < blocked.speedup

    def test_matches_sequential_with_dependences(self):
        loop = make_simple_loop(96)
        res = run_sliding_window(loop, 8, RuntimeConfig.sw(window_size=24))
        assert_matches_sequential(res, loop)


class TestCommitPointAdvance:
    def test_fig2_trace(self):
        """The paper's Fig. 2: window 4, dependence between blocks 2 and 3."""
        res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
        assert [s.committed_iterations for s in res.stages] == [3, 4, 1]
        assert [s.failed for s in res.stages] == [True, False, False]
        assert res.n_restarts == 1

    def test_commit_point_monotone(self):
        loop = make_simple_loop(96)
        res = run_sliding_window(loop, 8, RuntimeConfig.sw(window_size=16))
        remaining = [s.remaining_after for s in res.stages]
        assert all(a > b for a, b in zip(remaining, remaining[1:]))

    def test_failed_block_reexecutes_on_original_proc(self):
        """Circular assignment: block j always runs on processor j mod p."""
        # Arc 9 -> 10 falls mid-window (blocks 4 and 5 of size 2), so block
        # 5 fails once and re-executes.
        loop = chain_loop(32, targets=[10])
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=8))
        attempts = [
            b for s in res.stages for b in s.blocks if b.start == 10
        ]
        assert len(attempts) >= 2
        assert all(b.proc == attempts[0].proc for b in attempts)


class TestDistanceSensitivity:
    def test_long_distance_deps_invisible_to_small_window(self):
        """Dependences longer than the window never cause a restart: the
        source commits before the sink is scheduled."""
        n = 128
        loop = chain_loop(n, targets=[64])  # distance-1 arc at boundary 64
        # Window of 16 with b=4: by the time iteration 64 runs, iteration
        # 63 is committed.
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=16))
        assert res.n_restarts <= 1  # the arc may fall inside one window once

    def test_short_distance_deps_hurt_small_windows(self):
        from repro.workloads.synthetic import random_dependence_loop

        loop_small = random_dependence_loop(256, density=0.2, max_distance=3, seed=5)
        loop_large = random_dependence_loop(256, density=0.2, max_distance=3, seed=5)
        small = run_sliding_window(loop_small, 4, RuntimeConfig.sw(window_size=4))
        large = run_sliding_window(loop_large, 4, RuntimeConfig.sw(window_size=64))
        # Tiny super-iterations put nearly every short arc across a block
        # boundary; bigger blocks internalize them.
        assert small.n_restarts >= large.n_restarts


class TestAnalysisOverheadClaim:
    def test_sw_reanalyzes_reused_elements(self):
        """The paper: 'The SW strategy has potentially more analysis
        overhead because it may have to go over the shadows of the memory
        elements that are reused in every iteration.'  A loop re-reading
        one hot element pays analysis for it once per window under SW,
        once in total under the blocked test."""
        import numpy as np

        from repro.core.rlrpd import run_blocked
        from repro.loopir.loop import ArraySpec, SpeculativeLoop
        from repro.machine.timeline import Category

        def body(ctx, i):
            for k in range(16):  # elements reused in every iteration
                ctx.load("A", k)
            ctx.store("A", 16 + i, 1.0)

        def make():
            return SpeculativeLoop(
                "hot-elem", 128, body, arrays=[ArraySpec("A", np.ones(16 + 128))]
            )

        sw = run_sliding_window(make(), 4, RuntimeConfig.sw(window_size=8))
        blocked = run_blocked(make(), 4, RuntimeConfig.nrd())
        assert sw.timeline.charged_category(Category.ANALYSIS) > (
            2 * blocked.timeline.charged_category(Category.ANALYSIS)
        )


class TestAdaptiveWindow:
    def test_adaptive_grows_block_after_failure(self):
        from repro.workloads.synthetic import random_dependence_loop

        loop = random_dependence_loop(256, density=0.3, max_distance=2, seed=9)
        fixed = run_sliding_window(
            random_dependence_loop(256, density=0.3, max_distance=2, seed=9),
            4,
            RuntimeConfig.sw(window_size=8),
        )
        adaptive = run_sliding_window(
            loop, 4, RuntimeConfig.sw(window_size=8, adaptive_window=True)
        )
        assert adaptive.n_restarts <= fixed.n_restarts
        assert_matches_sequential(adaptive, loop)

    def test_adaptive_still_correct(self):
        loop = make_simple_loop(100)
        res = run_sliding_window(
            loop, 8, RuntimeConfig.sw(window_size=16, adaptive_window=True)
        )
        assert_matches_sequential(res, loop)


class TestValidation:
    def test_rejects_blocked_config(self):
        with pytest.raises(ConfigurationError):
            run_sliding_window(fully_parallel_loop(8), 2, RuntimeConfig.nrd())

    def test_window_smaller_than_procs(self):
        loop = fully_parallel_loop(16)
        res = run_sliding_window(loop, 8, RuntimeConfig.sw(window_size=4))
        assert_matches_sequential(res, loop)

    def test_window_larger_than_loop(self):
        loop = fully_parallel_loop(8)
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=100))
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_uneven_tail(self):
        loop = fully_parallel_loop(13)
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=8))
        assert_matches_sequential(res, loop)
