"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sequential import sequential_reference
from repro.loopir.loop import ArraySpec, SpeculativeLoop


def make_simple_loop(n: int = 64, stride: int = 7, offset: int = 3) -> SpeculativeLoop:
    """A small loop with input-dependent writes: ``A[(i*stride+offset) % n]``.

    Dense enough in dependences to exercise multi-stage recursion at
    moderate processor counts.
    """

    def body(ctx, i):
        x = ctx.load("A", i)
        ctx.store("A", (i * stride + offset) % n, x + 1.0)

    return SpeculativeLoop(
        name=f"simple_{n}_{stride}_{offset}",
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("A", np.zeros(n))],
    )


def assert_matches_sequential(result, loop, tolerant: bool = False) -> None:
    """The runtime's fundamental guarantee, as a test helper."""
    reference = sequential_reference(loop)
    if tolerant:
        assert result.memory.allclose(reference), (
            f"{result.strategy} run of {loop.name} diverged from sequential"
        )
    else:
        assert result.memory.equals(reference), (
            f"{result.strategy} run of {loop.name} diverged from sequential"
        )


@pytest.fixture
def simple_loop() -> SpeculativeLoop:
    return make_simple_loop()
