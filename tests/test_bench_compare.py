"""Tests for the experiment-snapshot regression diff."""

import json

import pytest

from repro.bench.compare import ComparisonReport, compare_data, compare_exports
from repro.bench.export import export_experiments


def write_snapshot(directory, payloads):
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {}
    for name, data in payloads.items():
        (directory / f"{name}.json").write_text(
            json.dumps({"id": name, "data": data})
        )
        manifest[name] = {"title": name, "file": f"{name}.json"}
    (directory / "index.json").write_text(json.dumps(manifest))


class TestCompareData:
    def test_identical_is_clean(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"a": [1.0, 2.0]}, {"a": [1.0, 2.0]}, 0.1, report)
        assert report.clean

    def test_small_drift_within_tolerance(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"a": 100.0}, {"a": 105.0}, 0.1, report)
        assert report.clean

    def test_large_drift_flagged(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"a": 100.0}, {"a": 150.0}, 0.1, report)
        assert len(report.drifts) == 1
        assert report.drifts[0].path == "a"
        assert report.drifts[0].relative == pytest.approx(1 / 3)

    def test_nested_paths(self):
        report = ComparisonReport(tolerance=0.0)
        compare_data(
            "x",
            {"series": {"s1": [1.0, 2.0]}},
            {"series": {"s1": [1.0, 3.0]}},
            0.0,
            report,
        )
        assert report.drifts[0].path == "series.s1[1]"

    def test_structure_change_detected(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"a": 1.0}, {"b": 1.0}, 0.1, report)
        assert len(report.structure_changes) == 2  # a removed, b added

    def test_string_change_is_structural(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"kind": "geometric"}, {"kind": "linear"}, 0.1, report)
        assert report.structure_changes

    def test_bools_not_treated_as_numbers(self):
        report = ComparisonReport(tolerance=0.1)
        compare_data("x", {"flag": True}, {"flag": False}, 0.1, report)
        assert report.structure_changes and not report.drifts


class TestCompareExports:
    def test_same_snapshot_clean(self, tmp_path):
        write_snapshot(tmp_path / "a", {"e1": {"v": 1.0}})
        write_snapshot(tmp_path / "b", {"e1": {"v": 1.0}})
        report = compare_exports(tmp_path / "a", tmp_path / "b")
        assert report.clean
        assert "no drift" in report.render()

    def test_missing_and_added(self, tmp_path):
        write_snapshot(tmp_path / "a", {"e1": {"v": 1.0}, "e2": {"v": 1.0}})
        write_snapshot(tmp_path / "b", {"e1": {"v": 1.0}, "e3": {"v": 1.0}})
        report = compare_exports(tmp_path / "a", tmp_path / "b")
        assert report.missing == ["e2"]
        assert report.added == ["e3"]
        assert not report.clean

    def test_drift_render(self, tmp_path):
        write_snapshot(tmp_path / "a", {"e1": {"speedup": 4.0}})
        write_snapshot(tmp_path / "b", {"e1": {"speedup": 2.0}})
        report = compare_exports(tmp_path / "a", tmp_path / "b", tolerance=0.1)
        assert "DRIFT e1:speedup" in report.render()

    def test_missing_index_raises(self, tmp_path):
        (tmp_path / "a").mkdir()
        write_snapshot(tmp_path / "b", {"e1": {"v": 1.0}})
        with pytest.raises(FileNotFoundError):
            compare_exports(tmp_path / "a", tmp_path / "b")

    def test_cli_compare_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        write_snapshot(tmp_path / "a", {"e1": {"speedup": 4.0}})
        write_snapshot(tmp_path / "b", {"e1": {"speedup": 4.0}})
        assert main(["--compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        write_snapshot(tmp_path / "c", {"e1": {"speedup": 1.0}})
        assert main(["--compare", str(tmp_path / "a"), str(tmp_path / "c")]) == 1

    def test_real_exports_self_compare_clean(self, tmp_path):
        """Determinism end to end: two exports of the same experiment are
        bit-identical, so the diff is empty at zero tolerance."""
        export_experiments(tmp_path / "run1", ids=["fig01"], quick=True)
        export_experiments(tmp_path / "run2", ids=["fig01"], quick=True)
        report = compare_exports(tmp_path / "run1", tmp_path / "run2",
                                 tolerance=0.0)
        assert report.clean
