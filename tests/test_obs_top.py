"""The live status stream and ``repro top`` (:mod:`repro.obs.top`).

Sink multiplexing, the :class:`TopState` fold, the pure renderer, the
``follow`` loop in ``--once`` mode, and the CLI wiring -- driven both
from hand-built records and from a real run with ``status_path`` set.
"""

import io
import json

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.obs.top import (
    StatusStreamSink,
    TopState,
    follow,
    render_top,
    sparkline,
)
from repro.workloads.synthetic import chain_loop, geometric_chain_targets


def _loop(n=64):
    return chain_loop(n, geometric_chain_targets(n, 0.5))


class TestStatusStreamSink:
    def test_multiplexes_three_planes(self):
        from repro.obs.events import RunBegin

        buffer = io.StringIO()
        sink = StatusStreamSink(buffer)
        sink.emit(RunBegin(loop="x", strategy="nrd", n_procs=2,
                           n_iterations=8))
        sink.note_oplog({"component": "engine", "event": "run-begin"})
        sink.note_resources({"t": 0.1, "rss_bytes": 42})
        sink.close()
        records = [json.loads(line) for line in
                   buffer.getvalue().splitlines()]
        assert [r["plane"] for r in records] == [
            "events", "oplog", "resources",
        ]
        assert records[0]["event"] == "run_begin"
        assert records[2]["rss_bytes"] == 42

    def test_writes_are_line_flushed_to_file(self, tmp_path):
        path = tmp_path / "status.jsonl"
        sink = StatusStreamSink(str(path))
        sink.note_oplog({"event": "tick"})
        # Visible to a reader *before* close -- `repro top` tails live.
        assert json.loads(path.read_text())["event"] == "tick"
        sink.close()

    def test_close_is_idempotent_and_stops_writes(self):
        buffer = io.StringIO()
        sink = StatusStreamSink(buffer)
        sink.close()
        sink.close()
        sink.note_oplog({"event": "late"})
        assert buffer.getvalue() == ""

    def test_unserializable_record_is_dropped(self):
        buffer = io.StringIO()
        sink = StatusStreamSink(buffer)
        sink.note_oplog({"bad": object()})  # default=str handles this
        sink.close()
        assert "bad" in buffer.getvalue()


class TestTopStateFold:
    def _state(self, records):
        state = TopState()
        for record in records:
            state.feed(record)
        return state

    def test_run_begin_and_commit(self):
        state = self._state([
            {"plane": "events", "event": "run_begin", "loop": "chain",
             "strategy": "adaptive", "n_procs": 4, "n_iterations": 96},
            {"plane": "events", "event": "commit", "stage": 0,
             "committed_upto": 48},
        ])
        assert state.loop == "chain"
        assert state.n_iterations == 96
        assert state.committed_upto == 48
        assert "commit" in state.last

    def test_failed_stage_counts_as_restart(self):
        state = self._state([
            {"plane": "events", "event": "stage_end", "stage": 0,
             "result": {"failed": True}},
            {"plane": "events", "event": "stage_end", "stage": 1,
             "result": {"failed": False}},
        ])
        assert state.stages == 2
        assert state.restarts == 1

    def test_degradation_and_supervision_counters(self):
        state = self._state([
            {"plane": "events", "event": "backend_degraded",
             "from_backend": "fork", "to_backend": "serial"},
            {"plane": "oplog", "component": "supervise",
             "event": "worker-respawned"},
            {"plane": "oplog", "component": "supervise",
             "event": "worker-respawned"},
        ])
        assert state.degradations == ["fork->serial"]
        assert state.supervise["worker-respawned"] == 2

    def test_run_failed_marks_done(self):
        state = self._state([
            {"plane": "oplog", "component": "engine", "event": "run-failed",
             "error": "SpeculationError: boom"},
        ])
        assert state.done
        assert "boom" in state.failed

    def test_resources_fold_prefers_thread_count(self):
        state = self._state([
            {"plane": "resources", "rss_bytes": 10, "worker_threads": 3,
             "workers": []},
        ])
        assert state.workers_alive == 3
        state = self._state([
            {"plane": "resources", "rss_bytes": 10,
             "workers": [{"pid": 1}, {"pid": 2}]},
        ])
        assert state.workers_alive == 2

    def test_torn_tail_line_is_ignored(self):
        state = TopState()
        state.feed_line('{"plane": "events", "event": "run_beg')
        state.feed_line("")
        assert state.loop == "?"


class TestRendering:
    def test_sparkline_scales_to_peak(self):
        line = sparkline([0, 5, 10], width=3)
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_empty_and_flat_zero(self):
        assert sparkline([]) == "-"
        assert sparkline([0, 0]) == "▁▁"

    def test_render_frame_contents(self):
        state = TopState()
        state.feed({"plane": "events", "event": "run_begin", "loop": "chain",
                    "strategy": "adaptive", "n_procs": 4, "n_iterations": 10})
        state.feed({"plane": "events", "event": "commit", "stage": 0,
                    "committed_upto": 5})
        state.feed({"plane": "resources", "rss_bytes": 1_000_000,
                    "worker_rss_bytes": 0, "shm_bytes": 0, "cpu_s": 0.5,
                    "backend": "fork", "gil": "gil"})
        frame = render_top(state)
        assert "chain" in frame
        assert " 50.0%" in frame
        assert "(5/10 iterations)" in frame
        assert "backend fork [gil]" in frame
        assert "1.0 MB" in frame

    def test_render_without_samples_hints_at_flag(self):
        frame = render_top(TopState())
        assert "--resources" in frame


class TestFollowAndCli:
    def _record_run(self, path):
        parallelize(_loop(), 4, RuntimeConfig.adaptive(
            backend="threads", backend_workers=2,
            status_path=str(path), resource_interval=0.002,
        ))

    def test_real_run_streams_all_planes(self, tmp_path):
        path = tmp_path / "status.jsonl"
        self._record_run(path)
        planes = {
            json.loads(line)["plane"]
            for line in path.read_text().splitlines()
        }
        assert planes == {"events", "oplog", "resources"}

    def test_follow_once_renders_final_frame(self, tmp_path):
        path = tmp_path / "status.jsonl"
        self._record_run(path)
        out = io.StringIO()
        assert follow(str(path), once=True, stream=out) == 0
        frame = out.getvalue()
        assert "done." in frame
        assert "100.0%" in frame
        assert "\x1b" not in frame  # --once emits no terminal control codes

    def test_follow_live_loop_stops_on_run_end(self, tmp_path):
        path = tmp_path / "status.jsonl"
        self._record_run(path)
        out = io.StringIO()
        assert follow(str(path), interval=0.001, stream=out,
                      max_frames=50) == 0
        assert "done." in out.getvalue()

    def test_follow_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            follow(str(tmp_path / "nope.jsonl"), once=True)

    def test_follow_reports_failure_via_exit_code(self, tmp_path):
        path = tmp_path / "status.jsonl"
        path.write_text(json.dumps({
            "plane": "oplog", "component": "engine", "event": "run-failed",
            "error": "SpeculationError: boom",
        }) + "\n")
        out = io.StringIO()
        assert follow(str(path), once=True, stream=out) == 1
        assert "FAILED" in out.getvalue()

    def test_cli_run_status_then_top(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "status.jsonl"
        assert main([
            "run", "chain", "-p", "4", "--status", str(path),
        ]) == 0
        assert main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "done." in out
