"""The hot-path kernels layer: vector and scalar must be bit-identical.

The numpy-vectorized kernels (:mod:`repro.kernels.vector`) are the
production default; the pure-Python loops (:mod:`repro.kernels.scalar`)
are the semantic reference.  These tests drive both implementations with
the same seeded random index/value decks -- duplicates and aliasing
included, since ``bitwise_or.at``-style unbuffered ufuncs are exactly
where vectorization bugs hide -- and demand identical results at three
levels: raw primitives, the shadow/view/checkpoint structures built on
them, and a full speculative run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ConfigurationError, RuntimeConfig
from repro.core.runner import parallelize
from repro.kernels import (
    KERNELS,
    get_default_kernels,
    get_kernels,
    kernel_names,
    scalar,
    use_kernels,
    vector,
)
from repro.machine.memory import SharedArray, make_private_view
from repro.shadow.dense import DenseShadow
from repro.shadow.sparse import SparseShadow
from repro.workloads.synthetic import random_dependence_loop

N = 192

index_decks = st.lists(
    st.lists(st.integers(min_value=0, max_value=N - 1), min_size=0, max_size=24),
    min_size=1,
    max_size=8,
)

#: (kind, indices) operation decks: interleaved reads/writes/updates.
op_decks = st.lists(
    st.tuples(
        st.sampled_from(["r", "w", "u"]),
        st.lists(st.integers(min_value=0, max_value=N - 1), min_size=0, max_size=16),
    ),
    min_size=1,
    max_size=10,
)


def _idx(ids) -> np.ndarray:
    return np.asarray(ids, dtype=np.int64)


# ---------------------------------------------------------------------------
# Primitive-level differentials
# ---------------------------------------------------------------------------


@given(decks=index_decks)
@settings(max_examples=60, deadline=None)
def test_bit_plane_primitives_match(decks):
    n_words = (N + 63) // 64
    planes = {
        name: [np.zeros(n_words, dtype=np.uint64) for _ in range(3)]
        for name in KERNELS
    }
    for deck in decks:
        idx = _idx(deck)
        for name, impl in KERNELS.items():
            write, exposed, any_read = planes[name]
            impl.set_bits(write, N, idx[::2])
            impl.mark_reads_bits(write, exposed, any_read, N, idx)
    v_planes, s_planes = planes["vector"], planes["scalar"]
    for v, s in zip(v_planes, s_planes):
        assert np.array_equal(v, s)
        assert vector.popcount(v) == scalar.popcount(s)
        assert np.array_equal(
            vector.bits_to_indices(v, N), scalar.bits_to_indices(s, N)
        )
    assert vector.words_intersect(*v_planes[:2]) == scalar.words_intersect(
        *s_planes[:2]
    )
    assert np.array_equal(
        vector.and_words_indices(v_planes[0], v_planes[2], N),
        scalar.and_words_indices(s_planes[0], s_planes[2], N),
    )


@given(decks=index_decks, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_copy_primitives_match(decks, seed):
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal(N)
    dense = {
        name: (np.zeros(N), np.zeros(N, dtype=bool), np.zeros(N, dtype=bool))
        for name in KERNELS
    }
    sparse = {name: ({}, set()) for name in KERNELS}
    for deck in decks:
        idx = _idx(deck)
        new_values = rng.standard_normal(len(idx))
        outs = {}
        for name, impl in KERNELS.items():
            values, have, written = dense[name]
            value_map, written_set = sparse[name]
            out_d = impl.copy_in_dense(values, have, shared, idx)
            impl.store_dense(values, have, written, idx[::2], new_values[::2])
            out_s = impl.copy_in_sparse(value_map, shared, idx)
            impl.store_sparse(value_map, written_set, idx[::2], new_values[::2])
            outs[name] = (out_d, out_s)
        (vd, vs), (sd, ss) = outs["vector"], outs["scalar"]
        assert np.array_equal(vd[0], sd[0]) and vd[1] == sd[1]
        assert np.array_equal(vs[0], ss[0]) and vs[1] == ss[1]
    v_out = vector.copy_out_dense(dense["vector"][0], dense["vector"][2])
    s_out = scalar.copy_out_dense(dense["scalar"][0], dense["scalar"][2])
    assert all(np.array_equal(v, s) for v, s in zip(v_out, s_out))
    v_out = vector.copy_out_sparse(*sparse["vector"], shared.dtype)
    s_out = scalar.copy_out_sparse(*sparse["scalar"], shared.dtype)
    assert all(np.array_equal(v, s) for v, s in zip(v_out, s_out))


@given(
    a=st.lists(st.integers(min_value=0, max_value=4 * N), max_size=64),
    b=st.lists(st.integers(min_value=0, max_value=4 * N), max_size=64),
)
@settings(max_examples=60, deadline=None)
def test_reduction_primitives_match(a, b):
    assert np.array_equal(
        vector.intersect_indices(_idx(a), _idx(b)),
        scalar.intersect_indices(_idx(a), _idx(b)),
    )
    if a:
        assert vector.reduce_min_max(_idx(a)) == scalar.reduce_min_max(_idx(a))


def test_intersect_falls_back_outside_table_span():
    a = _idx([0, 7, 1 << 40])
    b = _idx([7, 1 << 40, 9])
    assert np.array_equal(
        vector.intersect_indices(a, b), scalar.intersect_indices(a, b)
    )


@pytest.mark.parametrize("impl_name", sorted(KERNELS))
def test_primitive_bounds_errors(impl_name):
    impl = KERNELS[impl_name]
    words = np.zeros(4, dtype=np.uint64)
    with pytest.raises(IndexError, match=r"element 200 out of range \[0, 100\)"):
        impl.set_bits(words, 100, _idx([3, 200]))
    with pytest.raises(IndexError):
        impl.mark_reads_bits(words, words.copy(), words.copy(), 100, _idx([-1]))
    with pytest.raises(IndexError):
        impl.mark_writes_set(set(), 100, _idx([100]))


# ---------------------------------------------------------------------------
# Structure-level differentials (shadows and private views)
# ---------------------------------------------------------------------------


def _shadow_fingerprint(shadow):
    return (
        shadow.write_set(),
        shadow.exposed_read_set(),
        shadow.any_read_set(),
        shadow.update_set(),
        shadow.distinct_refs(),
    )


@pytest.mark.parametrize("shadow_cls", [DenseShadow, SparseShadow])
@given(decks=op_decks)
@settings(max_examples=40, deadline=None)
def test_shadow_marking_matches(shadow_cls, decks):
    prints = {}
    for name in sorted(KERNELS):
        with use_kernels(name):
            shadow = shadow_cls(N)
            for kind, ids in decks:
                idx = _idx(ids)
                if kind == "r":
                    shadow.mark_read_many(idx)
                elif kind == "w":
                    shadow.mark_write_many(idx)
                else:
                    shadow.mark_update_many(idx)
            prints[name] = _shadow_fingerprint(shadow)
    assert prints["vector"] == prints["scalar"]


@pytest.mark.parametrize("sparse", [False, True])
@given(decks=op_decks, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_private_view_copies_match(sparse, decks, seed):
    rng = np.random.default_rng(seed)
    shared_data = rng.standard_normal(N)
    prints = {}
    for name in sorted(KERNELS):
        with use_kernels(name):
            view = make_private_view(SharedArray("A", shared_data), sparse=sparse)
            loads = []
            value_rng = np.random.default_rng(seed + 1)
            for kind, ids in decks:
                idx = _idx(ids)
                if kind == "w":
                    view.store_many(idx, value_rng.standard_normal(len(idx)))
                else:
                    values, copied = view.load_many(idx)
                    loads.append((values.tobytes(), copied))
            indices, values = view.written_arrays()
            prints[name] = (loads, indices.tobytes(), values.tobytes(), view.n_written())
    assert prints["vector"] == prints["scalar"]


# ---------------------------------------------------------------------------
# End-to-end differential and selection plumbing
# ---------------------------------------------------------------------------


def _run_fingerprint(kernels: str):
    loop = random_dependence_loop(128, density=0.08, max_distance=8, seed=11)
    result = parallelize(loop, 4, RuntimeConfig.adaptive(kernels=kernels))
    return (
        {name: data.tobytes() for name, data in sorted(result.memory.snapshot().items())},
        repr(result.total_time),
        result.n_stages,
        result.kernels,
    )


def test_run_bit_identical_across_kernels():
    v = _run_fingerprint("vector")
    s = _run_fingerprint("scalar")
    assert v[:3] == s[:3]
    assert (v[3], s[3]) == ("vector", "scalar")


def test_result_reports_kernels_mode():
    loop = random_dependence_loop(64, density=0.1, max_distance=4, seed=2)
    result = parallelize(loop, 2, RuntimeConfig.adaptive(kernels="scalar"))
    assert result.kernels == "scalar"
    assert result.summary()["kernels"] == "scalar"


def test_config_rejects_unknown_kernels():
    with pytest.raises(ConfigurationError, match="unknown kernels"):
        RuntimeConfig(kernels="simd")


def test_registry_and_scoping():
    assert kernel_names() == sorted(KERNELS)
    default = get_default_kernels()
    with use_kernels("scalar"):
        assert get_kernels() is scalar
        with use_kernels("vector"):
            assert get_kernels() is vector
        assert get_kernels() is scalar
    assert get_default_kernels() == default


def test_cli_flag_selects_kernels(capsys):
    from repro.cli import main

    assert main(["run", "random-deps", "-p", "2", "--kernels", "scalar"]) == 0
    assert "kernels scalar" in capsys.readouterr().out
