"""The unified operational logger (:mod:`repro.obs.oplog`).

Covers the envelope, env-var path resolution (``REPRO_OPLOG`` plus the
deprecated ``REPRO_SUPERVISE_LOG`` alias), size rotation, taps, and the
adoption by the engine and both worker supervisors -- the two previously
divergent ``REPRO_SUPERVISE_LOG`` JSONL writers now share one sink.
"""

import json

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.obs.oplog import ENV_ALIAS, ENV_MAX_BYTES, ENV_PATH, OpLog, get_oplog
from repro.workloads.synthetic import chain_loop, geometric_chain_targets


def _records(path):
    return [json.loads(line) for line in open(path, encoding="utf-8")]


class TestOpLog:
    def test_log_writes_envelope_and_fields(self, tmp_path, monkeypatch):
        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        log = OpLog()
        log.log("engine", "run-begin", loop="x", n_procs=4)
        [record] = _records(path)
        assert record["component"] == "engine"
        assert record["event"] == "run-begin"
        assert record["severity"] == "info"
        assert record["loop"] == "x"
        assert record["n_procs"] == 4
        assert isinstance(record["ts"], float)
        assert isinstance(record["t"], float)

    def test_caller_fields_override_envelope(self, tmp_path, monkeypatch):
        # The supervisors keep their run-relative ``t``; a caller-supplied
        # field must win over the envelope default.
        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        OpLog().log("supervise", "worker-died", t=1.25)
        [record] = _records(path)
        assert record["t"] == 1.25

    def test_no_path_means_no_write_but_taps_fire(self, monkeypatch):
        monkeypatch.delenv(ENV_PATH, raising=False)
        monkeypatch.delenv(ENV_ALIAS, raising=False)
        log = OpLog()
        seen = []
        log.add_tap(seen.append)
        log.log("engine", "run-begin")
        assert [r["event"] for r in seen] == ["run-begin"]

    def test_remove_tap(self, monkeypatch):
        monkeypatch.delenv(ENV_PATH, raising=False)
        log = OpLog()
        seen = []
        log.add_tap(seen.append)
        log.remove_tap(seen.append)
        log.log("engine", "run-begin")
        assert seen == []

    def test_failing_tap_does_not_break_logging(self, monkeypatch):
        monkeypatch.delenv(ENV_PATH, raising=False)
        log = OpLog()
        seen = []
        log.add_tap(lambda record: 1 / 0)
        log.add_tap(seen.append)
        log.log("engine", "run-begin")
        assert len(seen) == 1

    def test_deprecated_alias_still_works_and_warns_once(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "legacy.jsonl"
        monkeypatch.delenv(ENV_PATH, raising=False)
        monkeypatch.setenv(ENV_ALIAS, str(path))
        log = OpLog()
        log.log("supervise", "worker-died")
        log.log("supervise", "worker-respawned")
        records = _records(path)
        deprecations = [
            r for r in records if r["event"] == "deprecated-env-alias"
        ]
        assert len(deprecations) == 1
        assert deprecations[0]["severity"] == "warn"
        assert ENV_PATH in deprecations[0]["use"]
        assert [r["event"] for r in records if r["component"] == "supervise"] \
            == ["worker-died", "worker-respawned"]

    def test_explicit_path_beats_alias(self, tmp_path, monkeypatch):
        new = tmp_path / "new.jsonl"
        old = tmp_path / "old.jsonl"
        monkeypatch.setenv(ENV_PATH, str(new))
        monkeypatch.setenv(ENV_ALIAS, str(old))
        OpLog().log("engine", "run-begin")
        assert new.exists()
        assert not old.exists()

    def test_rotation_at_max_bytes(self, tmp_path, monkeypatch):
        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        monkeypatch.setenv(ENV_MAX_BYTES, "400")
        log = OpLog()
        for i in range(40):
            log.log("engine", "tick", i=i, pad="x" * 40)
        rotated = tmp_path / "ops.jsonl.1"
        assert rotated.exists()
        assert path.stat().st_size <= 800
        # Every rotated line is still valid JSONL.
        for record in _records(rotated):
            assert record["event"] == "tick"

    def test_unwritable_path_never_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_PATH, str(tmp_path / "no" / "such" / "dir" / "x"))
        OpLog().log("engine", "run-begin")  # must not raise

    def test_get_oplog_is_a_singleton(self):
        assert get_oplog() is get_oplog()


class TestAdoption:
    """Engine + supervisors write through the same oplog file."""

    def _run_with_chaos(self, backend, tmp_path, monkeypatch, env=ENV_PATH):
        from repro.faults.os_chaos import OsChaosPlan

        path = tmp_path / "ops.jsonl"
        monkeypatch.delenv(ENV_PATH, raising=False)
        monkeypatch.delenv(ENV_ALIAS, raising=False)
        monkeypatch.setenv(env, str(path))
        n = 96
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        parallelize(loop, 4, RuntimeConfig.adaptive(
            backend=backend, backend_workers=4,
            os_chaos=OsChaosPlan.kill_workers(0, [1]),
        ))
        return _records(path)

    def test_fork_supervision_records_flow_through_oplog(
        self, tmp_path, monkeypatch
    ):
        records = self._run_with_chaos("fork", tmp_path, monkeypatch)
        events = [r["event"] for r in records]
        assert "run-begin" in events
        assert "run-end" in events
        assert "pool-started" in events
        assert "worker-respawned" in events
        respawn = next(r for r in records if r["event"] == "worker-respawned")
        # Legacy supervision record shape is preserved on the new sink.
        assert respawn["component"] == "supervise"
        assert respawn["backend"] == "fork"
        assert isinstance(respawn["pid"], int)
        assert isinstance(respawn["blocks"], list)

    def test_legacy_alias_env_still_collects_supervision(
        self, tmp_path, monkeypatch
    ):
        records = self._run_with_chaos(
            "fork", tmp_path, monkeypatch, env=ENV_ALIAS
        )
        assert "worker-respawned" in [r["event"] for r in records]

    def test_threads_supervision_records_flow_through_oplog(
        self, tmp_path, monkeypatch
    ):
        import time as _time

        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        stalls = {"left": 1}

        def body(ctx, i):
            if i == 5 and stalls["left"] > 0:
                stalls["left"] -= 1
                _time.sleep(0.6)
            ctx.work(1.0)
            ctx.store("A", i, float(i) * 2.0)

        loop = SpeculativeLoop(
            "stall_doall", 16, body, arrays=[ArraySpec("A", np.zeros(16))]
        )
        # certify="off": the stall closure is stateful, so a certification
        # probe would both consume the stall and hide the supervision path
        # under test.
        parallelize(loop, 4, RuntimeConfig.nrd(
            backend="threads", backend_workers=4, worker_timeout=0.15,
            certify="off",
        ))
        records = _records(path)
        by_component = {r["component"] for r in records}
        assert {"engine", "backend", "supervise"} <= by_component
        overdue = [r for r in records if r["event"] == "worker-overdue"]
        assert overdue and overdue[0]["severity"] == "warn"
        # pid carries the worker's native thread id on this backend.
        assert isinstance(overdue[0]["pid"], int)

    def test_shm_arena_lifecycle_is_logged(self, tmp_path, monkeypatch):
        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        n = 64
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        parallelize(loop, 4, RuntimeConfig.adaptive(backend="shm"))
        events = [r["event"] for r in _records(path)]
        assert "arena-created" in events
        assert "arena-released" in events
        created = next(
            r for r in _records(path) if r["event"] == "arena-created"
        )
        assert created["component"] == "shm"
        assert created["bytes"] > 0

    def test_run_failed_record_on_uncaught_error(self, tmp_path, monkeypatch):
        from repro.errors import SpeculationError

        path = tmp_path / "ops.jsonl"
        monkeypatch.setenv(ENV_PATH, str(path))
        n = 96
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        with pytest.raises(SpeculationError):
            parallelize(loop, 4, RuntimeConfig.adaptive(max_stages=1))
        failed = [r for r in _records(path) if r["event"] == "run-failed"]
        assert len(failed) == 1
        assert failed[0]["severity"] == "error"
        assert "SpeculationError" in failed[0]["error"]
