"""Tests for history-based strategy and window prediction."""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize, run_program, run_program_predictive
from repro.sched.predictor import StrategyPredictor, WindowPredictor
from repro.workloads.synthetic import fully_parallel_loop, random_dependence_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop


CANDIDATES = [
    RuntimeConfig.nrd(),
    RuntimeConfig.adaptive(),
    RuntimeConfig.sw(window_size=16),
]


class TestStrategyPredictor:
    def test_explores_each_candidate_once(self):
        pred = StrategyPredictor(CANDIDATES)
        chosen = []
        for _ in range(3):
            cfg = pred.choose("x")
            chosen.append(cfg.label())
            pred.record("x", cfg, parallelize(fully_parallel_loop(64), 4, cfg))
        assert set(chosen) == {c.label() for c in CANDIDATES}

    def test_exploits_best_after_exploration(self):
        pred = StrategyPredictor(CANDIDATES)
        # Fully parallel loop: blocked strategies beat the per-strip-sync SW.
        for _ in range(3):
            cfg = pred.choose("x")
            pred.record("x", cfg, parallelize(fully_parallel_loop(64), 4, cfg))
        assert pred.choose("x").label() in ("NRD", "RD-adaptive")

    def test_per_loop_histories_independent(self):
        pred = StrategyPredictor(CANDIDATES)
        cfg = pred.choose("a")
        pred.record("a", cfg, parallelize(fully_parallel_loop(64), 4, cfg))
        # Loop "b" has seen nothing: exploration restarts from the first
        # candidate.
        assert pred.choose("b").label() == CANDIDATES[0].label()

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            StrategyPredictor([])

    def test_invalid_explore_rounds_rejected(self):
        with pytest.raises(ValueError):
            StrategyPredictor(CANDIDATES, explore_rounds=0)

    def test_degradation_triggers_reexploration(self):
        pred = StrategyPredictor(CANDIDATES, degrade_tolerance=0.8)
        # Explore all candidates on an easy loop.
        for _ in range(3):
            cfg = pred.choose("x")
            pred.record("x", cfg, parallelize(fully_parallel_loop(64), 4, cfg))
        best = pred.choose("x")
        # The loop's behavior shifts: the chosen config suddenly crawls.
        bad = parallelize(
            random_dependence_loop(64, density=0.5, max_distance=2, seed=1),
            4,
            best,
        )
        pred.record("x", best, bad)
        # Exploration reopens: the next choice revisits candidates.
        labels = {pred.choose("x").label()}
        cfg = pred.choose("x")
        pred.record("x", cfg, parallelize(fully_parallel_loop(64), 4, cfg))
        labels.add(pred.choose("x").label())
        assert len(labels) >= 1  # re-exploration did not deadlock

    def test_end_to_end_converges_to_winner(self):
        """On a parallel program, the predictive runner matches the best
        fixed strategy after the exploration phase."""
        deck = dataclasses.replace(NLFILT_DECKS["fully-par"], n=400)
        loops = [make_nlfilt_loop(deck, instance=k) for k in range(6)]
        pred = StrategyPredictor(CANDIDATES)
        adaptive_prog = run_program(
            (make_nlfilt_loop(deck, instance=k) for k in range(6)),
            8,
            RuntimeConfig.adaptive(),
        )
        predictive_prog = run_program_predictive(loops, 8, pred)
        # The last runs must use the winning strategy, so the tail speedups
        # match the fixed-best program's.
        assert predictive_prog.runs[-1].speedup == pytest.approx(
            adaptive_prog.runs[-1].speedup, rel=0.05
        )


class TestWindowPredictor:
    def _result(self, speedup):
        """A minimal RunResult stand-in carrying only a speedup."""

        class R:
            pass

        r = R()
        r.speedup = speedup
        return r

    def test_initial_window(self):
        pred = WindowPredictor(initial=16)
        assert pred.window_for("x") == 16

    def test_first_move_grows(self):
        pred = WindowPredictor(initial=16)
        pred.record("x", self._result(2.0))
        assert pred.window_for("x") == 32

    def test_keeps_growing_while_improving(self):
        pred = WindowPredictor(initial=16, maximum=256)
        for s in (2.0, 2.5, 3.0):
            pred.record("x", self._result(s))
        assert pred.window_for("x") == 128

    def test_reverses_on_regression(self):
        pred = WindowPredictor(initial=16, maximum=256)
        pred.record("x", self._result(3.0))  # -> 32
        pred.record("x", self._result(2.0))  # worse: reverse -> 16
        assert pred.window_for("x") == 16

    def test_bounds_respected_and_probe_back(self):
        pred = WindowPredictor(initial=8, minimum=4, maximum=16)
        pred.record("x", self._result(1.0))  # -> 16 (cap)
        pred.record("x", self._result(2.0))  # improving, pinned: probes back
        assert 4 <= pred.window_for("x") <= 16

    def test_hill_climb_finds_better_window_end_to_end(self):
        """On the long-distance deck the climber must end at a window no
        worse than where it started."""
        deck_loop = lambda k: make_nlfilt_loop(  # noqa: E731
            dataclasses.replace(NLFILT_DECKS["16-400"], n=800), instance=k
        )
        pred = WindowPredictor(initial=8, maximum=512)
        speedups = []
        for k in range(6):
            loop = deck_loop(k)
            res = parallelize(loop, 8, pred.config_for(loop.name))
            pred.record(loop.name, res)
            speedups.append(res.speedup)
        assert max(speedups[2:]) >= speedups[0]

    def test_config_for(self):
        pred = WindowPredictor(initial=8)
        cfg = pred.config_for("x")
        assert cfg.window_size == 8

    def test_per_loop_state(self):
        pred = WindowPredictor(initial=8)
        pred.record("a", self._result(1.0))
        assert pred.window_for("a") == 16
        assert pred.window_for("b") == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowPredictor(initial=1, minimum=2)
        with pytest.raises(ValueError):
            WindowPredictor(initial=32, maximum=16)


class TestSecondOrderFeedback:
    def test_extrapolates_trend(self):
        from repro.sched.feedback import FeedbackBalancer

        b = FeedbackBalancer(order=2)
        b.record("x", {0: 1.0, 1: 1.0}, 2)
        b.record("x", {0: 2.0, 1: 3.0}, 2)
        pred = b.predict("x", 2)
        assert pred[0] == pytest.approx(3.0)  # 2 + (2 - 1)
        assert pred[1] == pytest.approx(5.0)  # 3 + (3 - 1)

    def test_clamped_at_zero(self):
        from repro.sched.feedback import FeedbackBalancer

        b = FeedbackBalancer(order=2)
        b.record("x", {0: 5.0}, 1)
        b.record("x", {0: 1.0}, 1)
        assert b.predict("x", 1)[0] == 0.0

    def test_order_one_ignores_previous(self):
        from repro.sched.feedback import FeedbackBalancer

        b = FeedbackBalancer(order=1)
        b.record("x", {0: 1.0}, 1)
        b.record("x", {0: 2.0}, 1)
        assert b.predict("x", 1)[0] == pytest.approx(2.0)

    def test_invalid_order(self):
        from repro.sched.feedback import FeedbackBalancer

        with pytest.raises(ValueError):
            FeedbackBalancer(order=3)

    def test_second_order_beats_first_on_drifting_ramp(self):
        """A ramp whose slope grows each instantiation: the first-order
        predictor lags one instantiation behind; the second-order one
        extrapolates the trend."""
        import numpy as np

        from repro.sched.feedback import FeedbackBalancer
        from repro.util.blocks import partition_weighted

        def profile(k):
            # Instantiation k has ramp slope proportional to k.
            return 1.0 + np.linspace(0.0, 2.0 + 2.0 * k, 256)

        def bottleneck(weights, actual):
            blocks = partition_weighted(0, 256, list(range(8)), weights)
            return max(actual[b.start : b.stop].sum() for b in blocks)

        first, second = FeedbackBalancer(order=1), FeedbackBalancer(order=2)
        for k in range(3):
            w = profile(k)
            for b in (first, second):
                b.record("x", {i: w[i] for i in range(256)}, 256)
        actual = profile(3)
        t1 = bottleneck(first.predict("x", 256), actual)
        t2 = bottleneck(second.predict("x", 256), actual)
        assert t2 <= t1 + 1e-9


class TestCertificateHints:
    """Certificates feed the predictors without overriding measurements."""

    def _cert(self, **kw):
        from repro.model.certify import LoopCertificate

        defaults = dict(
            loop_name="L", verdict="SPECULATE", basis="trace", exact=True,
            reason="test",
        )
        defaults.update(kw)
        return LoopCertificate(**defaults)

    def test_hint_promotes_matching_candidate(self):
        pred = StrategyPredictor(CANDIDATES)
        pred.note_hint("L", self._cert(strategy_hint="sw", window_hint=16))
        assert pred.choose("L").label().startswith("SW")
        # Other loops keep the default exploration order.
        assert pred.choose("M").label() == CANDIDATES[0].label()

    def test_adaptive_hint_matches_label(self):
        pred = StrategyPredictor(CANDIDATES)
        pred.note_hint("L", self._cert(strategy_hint="adaptive"))
        assert pred.choose("L").label() == "RD-adaptive"

    def test_unknown_or_absent_hint_is_a_noop(self):
        pred = StrategyPredictor(CANDIDATES)
        pred.note_hint("L", self._cert(strategy_hint=None))
        pred.note_hint("L", self._cert(strategy_hint="warp-drive"))
        assert pred.choose("L").label() == CANDIDATES[0].label()

    def test_measurements_retain_the_final_say(self):
        pred = StrategyPredictor(CANDIDATES)
        pred.note_hint("x", self._cert(strategy_hint="sw", window_hint=16))
        for _ in range(3):
            cfg = pred.choose("x")
            pred.record(
                "x", cfg,
                parallelize(fully_parallel_loop(64), 4,
                            cfg.with_options(certify="off")),
            )
        # SW was explored first (the hint), but blocked strategies win the
        # exploitation phase on a fully parallel loop.
        assert pred.choose("x").label() in ("NRD", "RD-adaptive")

    def test_window_seed_sets_initial_window(self):
        pred = WindowPredictor(initial=8)
        pred.seed("L", self._cert(strategy_hint="sw", window_hint=32))
        assert pred.window_for("L") == 32

    def test_window_seed_clamped_to_bounds(self):
        pred = WindowPredictor(initial=8, minimum=4, maximum=64)
        pred.seed("L", self._cert(strategy_hint="sw", window_hint=1 << 20))
        assert pred.window_for("L") == 64

    def test_window_seed_never_resets_a_climb(self):
        pred = WindowPredictor(initial=8)
        res = parallelize(
            fully_parallel_loop(64), 4, RuntimeConfig.sw(8, certify="off")
        )
        pred.record("L", res)
        climbed = pred.window_for("L")
        pred.seed("L", self._cert(strategy_hint="sw", window_hint=2))
        assert pred.window_for("L") == climbed
