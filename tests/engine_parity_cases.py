"""Fixed-seed parity cases shared by the golden generator and the tests.

Each case runs one driver on one deterministic workload (optionally with a
deterministic fault plan) and is summarized down to bit-exact observables:
final-memory hash, stage counts, committed-iteration sets and virtual-time
totals.  ``tests/data/engine_golden.json`` holds the summaries captured on
the pre-engine seed drivers; ``tests/test_engine_parity.py`` re-runs the
matrix and requires bit-identical results from the engine-based drivers.

Regenerate (only when behavior is *supposed* to change) with::

    PYTHONPATH=src:. python tests/engine_parity_cases.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

from repro.config import RuntimeConfig
from repro.core.induction_runner import run_induction
from repro.core.iterwise import run_blocked_iterwise
from repro.core.rlrpd import run_blocked
from repro.core.window import run_sliding_window
from repro.faults import FaultEvent, FaultKind, FaultPlan, random_plan
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.topology import Topology
from repro.workloads.patterns import scatter_loop
from repro.workloads.synthetic import (
    chain_loop,
    geometric_chain_targets,
    random_dependence_loop,
)
from repro.workloads.track_extend import ExtendDeck, make_extend_loop

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "engine_golden.json"

P = 4


def _chain(n: int = 96) -> SpeculativeLoop:
    return chain_loop(n, geometric_chain_targets(n, 0.5))


def _rand() -> SpeculativeLoop:
    return random_dependence_loop(128, density=0.08, max_distance=8, seed=3)


def _exit_loop(n: int = 64, exit_at: int = 41) -> SpeculativeLoop:
    def body(ctx, i):
        ctx.work(1.0)
        ctx.store("A", i, float(i))
        if i == exit_at:
            ctx.exit_loop()

    return SpeculativeLoop(
        "parity_exit", n, body, arrays=[ArraySpec("A", np.zeros(n))]
    )


def _untested(n: int = 48) -> SpeculativeLoop:
    """Disjoint untested writes: exercises checkpoint/restore."""

    def body(ctx, i):
        ctx.work(1.0)
        x = ctx.load("A", max(0, i - 9))
        ctx.store("A", i, x + 1.0)
        ctx.store("B", i, float(i) + 1.0)

    return SpeculativeLoop(
        "parity_untested",
        n,
        body,
        arrays=[
            ArraySpec("A", np.zeros(n)),
            ArraySpec("B", np.zeros(n), tested=False),
        ],
    )


def _extend() -> SpeculativeLoop:
    return make_extend_loop(ExtendDeck("parity", n=240, keep_prob=0.55,
                                       lookback_prob=0.01))


def _fail0() -> FaultPlan:
    """Kill the lowest-ranked block of stage 0: the zero-commit retry path."""
    return FaultPlan(events=(
        FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=0, after_fraction=0.25),
    ))


def _ckpt_plan() -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent(FaultKind.CHECKPOINT, stage=0),
        FaultEvent(FaultKind.STRAGGLER, stage=0, proc=1, slowdown=2.5),
    ))


CASES = {
    # -- blocked NRD / RD / adaptive -------------------------------------------
    "nrd-chain": lambda: run_blocked(_chain(), P, RuntimeConfig.nrd()),
    "rd-chain": lambda: run_blocked(_chain(), P, RuntimeConfig.rd()),
    "adaptive-chain": lambda: run_blocked(_chain(), P, RuntimeConfig.adaptive()),
    "nrd-rand": lambda: run_blocked(_rand(), P, RuntimeConfig.nrd()),
    "rd-rand": lambda: run_blocked(_rand(), P, RuntimeConfig.rd()),
    "adaptive-scatter": lambda: run_blocked(
        scatter_loop(n=160), P, RuntimeConfig.adaptive()
    ),
    "nrd-preinit": lambda: run_blocked(
        _rand(), P, RuntimeConfig.nrd(pre_initialize=True)
    ),
    "adaptive-weights": lambda: run_blocked(
        _chain(), P, RuntimeConfig.adaptive(),
        weights=np.linspace(2.0, 1.0, 96),
    ),
    "nrd-topology": lambda: run_blocked(
        _chain(), P, RuntimeConfig.rd(),
        topology=Topology.ring(P, remote_factor=1.5),
    ),
    "adaptive-exit": lambda: run_blocked(_exit_loop(), P, RuntimeConfig.adaptive()),
    "nrd-untested": lambda: run_blocked(_untested(), P, RuntimeConfig.nrd()),
    "nrd-untested-full-ckpt": lambda: run_blocked(
        _untested(), P, RuntimeConfig.nrd(on_demand_checkpoint=False)
    ),
    # -- blocked with faults ----------------------------------------------------
    "nrd-chain-faults11": lambda: run_blocked(
        _chain(), P, RuntimeConfig.nrd(fault_plan=random_plan(11, n_procs=P))
    ),
    "rd-chain-faults11": lambda: run_blocked(
        _chain(), P, RuntimeConfig.rd(fault_plan=random_plan(11, n_procs=P))
    ),
    "adaptive-rand-faults5": lambda: run_blocked(
        _rand(), P, RuntimeConfig.adaptive(fault_plan=random_plan(5, n_procs=P))
    ),
    "nrd-zero-commit-retry": lambda: run_blocked(
        _rand(), P, RuntimeConfig.nrd(fault_plan=_fail0())
    ),
    "nrd-untested-ckpt-fault": lambda: run_blocked(
        _untested(), P, RuntimeConfig.nrd(fault_plan=_ckpt_plan())
    ),
    "nrd-untested-selfcheck": lambda: run_blocked(
        _untested(), P, RuntimeConfig.nrd(self_check=True)
    ),
    "adaptive-exit-faults3": lambda: run_blocked(
        _exit_loop(), P,
        RuntimeConfig.adaptive(fault_plan=random_plan(3, n_procs=P)),
    ),
    # -- sliding window ---------------------------------------------------------
    "sw-auto-chain": lambda: run_sliding_window(_chain(), P, RuntimeConfig.sw()),
    "sw8-chain": lambda: run_sliding_window(
        _chain(), P, RuntimeConfig.sw(window_size=8)
    ),
    "sw8-adaptive-rand": lambda: run_sliding_window(
        _rand(), P, RuntimeConfig.sw(window_size=8, adaptive_window=True)
    ),
    "sw-rand-faults11": lambda: run_sliding_window(
        _rand(), P,
        RuntimeConfig.sw(window_size=16, fault_plan=random_plan(11, n_procs=P)),
    ),
    "sw-zero-commit-retry": lambda: run_sliding_window(
        _rand(), P, RuntimeConfig.sw(window_size=16, fault_plan=_fail0())
    ),
    "sw-untested": lambda: run_sliding_window(
        _untested(), P, RuntimeConfig.sw(window_size=8)
    ),
    # -- two-phase induction ----------------------------------------------------
    "induction-extend": lambda: run_induction(_extend(), P, RuntimeConfig.rd()),
    "induction-extend-faults9": lambda: run_induction(
        _extend(), P, RuntimeConfig.rd(fault_plan=random_plan(9, n_procs=P))
    ),
    "induction-extend-selfcheck": lambda: run_induction(
        _extend(), P, RuntimeConfig.rd(self_check=True)
    ),
    "induction-zero-commit-retry": lambda: run_induction(
        _extend(), P, RuntimeConfig.rd(fault_plan=FaultPlan(events=(
            FaultEvent(FaultKind.FAIL_STOP, stage=1, proc=0,
                       after_fraction=0.25),
        )))
    ),
    # -- iteration-wise ---------------------------------------------------------
    "iterwise-nrd-chain": lambda: run_blocked_iterwise(
        _chain(), P, RuntimeConfig.nrd()
    ),
    "iterwise-adaptive-rand": lambda: run_blocked_iterwise(
        _rand(), P, RuntimeConfig.adaptive()
    ),
    "iterwise-rd-chain": lambda: run_blocked_iterwise(
        _chain(), P, RuntimeConfig.rd()
    ),
}


def summarize(result) -> dict:
    """Bit-exact observables of one run (floats as reprs)."""
    mem = result.memory
    h = hashlib.sha256()
    for name in sorted(mem.names()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(mem[name].data).tobytes())
    return {
        "memory_sha": h.hexdigest(),
        "strategy": result.strategy,
        "n_stages": result.n_stages,
        "restarts": result.n_restarts,
        "committed": [s.committed_iterations for s in result.stages],
        "failed": [bool(s.failed) for s in result.stages],
        "sinks": [s.earliest_sink_pos for s in result.stages],
        "committed_elements": [s.committed_elements for s in result.stages],
        "restored_elements": [s.restored_elements for s in result.stages],
        "redistributed": [s.redistributed_iterations for s in result.stages],
        "migration": [repr(s.migration_distance) for s in result.stages],
        "spans": [repr(s.span) for s in result.stages],
        "faulted_procs": [s.faulted_procs for s in result.stages],
        "degraded": [bool(s.degraded) for s in result.stages],
        "total_time": repr(result.total_time),
        "sequential_work": repr(result.sequential_work),
        "speedup": repr(result.speedup),
        "retries": result.retries,
        "faults_survived": result.faults_survived,
        "fault_counts": result.fault_counts,
        "degraded_stages": result.degraded_stages,
        "dead_procs": result.dead_procs,
        "induction_finals": result.induction_finals,
        "exit_iteration": result.exit_iteration,
        "iter_times": repr(sum(sorted(result.iteration_times.values()))),
    }


def run_case(name: str) -> dict:
    return summarize(CASES[name]())


def generate() -> dict:
    return {name: run_case(name) for name in sorted(CASES)}


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(generate(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(CASES)} cases)")
