"""Tests for the command-line driver."""

import pytest

from repro.cli import WORKLOADS, main, resolve_workload


class TestResolve:
    def test_family_default_deck(self):
        loop = resolve_workload("nlfilt")
        assert "16-400" in loop.name

    def test_family_with_deck(self):
        loop = resolve_workload("extend:heavy-deps")
        assert "heavy-deps" in loop.name

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            resolve_workload("nope")

    def test_unknown_deck(self):
        with pytest.raises(SystemExit):
            resolve_workload("nlfilt:nope")

    def test_deck_on_plain_workload_rejected(self):
        with pytest.raises(SystemExit):
            resolve_workload("doall:whatever")

    def test_every_registered_workload_resolves(self):
        for family, factory in WORKLOADS.items():
            decks = getattr(factory, "decks", [])
            spec = f"{family}:{decks[0]}" if decks else family
            loop = resolve_workload(spec)
            assert loop.n_iterations > 0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "nlfilt" in out and "pointer-chase" in out

    def test_run_blocked(self, capsys):
        assert main(["run", "doall", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_sliding_window(self, capsys):
        assert main(["run", "random-deps", "-p", "4", "--strategy", "sw",
                     "--window", "16"]) == 0
        out = capsys.readouterr().out
        assert "SW(w=16)" in out

    def test_run_breakdown(self, capsys):
        assert main(["run", "doall", "-p", "2", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "breakdown" in out

    def test_certify_ok(self, capsys):
        assert main(["certify", "gather", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out

    def test_certify_tolerant_bjt(self, capsys):
        assert main(["certify", "bjt", "-p", "2", "--tolerant"]) == 0

    def test_ddg(self, capsys):
        assert main(["ddg", "forest", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out

    def test_run_induction_workload(self, capsys):
        assert main(["run", "extend:clean", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "induction" in out

    def test_run_with_faults_reports_survival(self, capsys):
        # Seed 1 is known (and pinned by determinism) to fire faults on
        # this workload within the first stages.
        assert main(["run", "random-deps", "-p", "8", "--strategy", "sw",
                     "--faults", "1", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "faults survived:" in out
        assert "fault retries:" in out

    def test_run_self_check_alone(self, capsys):
        assert main(["run", "scatter", "-p", "4", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "faults survived" not in out  # fault-free machine
