"""Tests for the command-line driver."""

import pytest

from repro.cli import WORKLOADS, main, resolve_workload


class TestResolve:
    def test_family_default_deck(self):
        loop = resolve_workload("nlfilt")
        assert "16-400" in loop.name

    def test_family_with_deck(self):
        loop = resolve_workload("extend:heavy-deps")
        assert "heavy-deps" in loop.name

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            resolve_workload("nope")

    def test_unknown_deck(self):
        with pytest.raises(SystemExit):
            resolve_workload("nlfilt:nope")

    def test_deck_on_plain_workload_rejected(self):
        with pytest.raises(SystemExit):
            resolve_workload("doall:whatever")

    def test_every_registered_workload_resolves(self):
        for family, factory in WORKLOADS.items():
            decks = getattr(factory, "decks", [])
            spec = f"{family}:{decks[0]}" if decks else family
            loop = resolve_workload(spec)
            assert loop.n_iterations > 0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "nlfilt" in out and "pointer-chase" in out

    def test_run_blocked(self, capsys):
        assert main(["run", "doall", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_sliding_window(self, capsys):
        assert main(["run", "random-deps", "-p", "4", "--strategy", "sw",
                     "--window", "16"]) == 0
        out = capsys.readouterr().out
        assert "SW(w=16)" in out

    def test_default_run_takes_certified_fast_path(self, capsys):
        assert main(["run", "doall", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "certificate: DOALL" in out
        assert "certified-doall" in out

    def test_explicit_strategy_disables_certification(self, capsys):
        # --strategy means "run exactly this": the certifiable doall must
        # run under NRD, with no certificate line rerouting it.
        assert main(["run", "doall", "-p", "4", "--strategy", "nrd"]) == 0
        out = capsys.readouterr().out
        assert "under NRD" in out
        assert "certificate" not in out

    def test_explicit_certify_overrides_explicit_strategy(self, capsys):
        assert main(["run", "doall", "-p", "4", "--strategy", "nrd",
                     "--certify", "hint"]) == 0
        out = capsys.readouterr().out
        assert "certified-doall" in out

    def test_run_breakdown(self, capsys):
        assert main(["run", "doall", "-p", "2", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "breakdown" in out

    def test_certify_ok(self, capsys):
        assert main(["certify", "gather", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED" in out

    def test_certify_tolerant_bjt(self, capsys):
        assert main(["certify", "bjt", "-p", "2", "--tolerant"]) == 0

    def test_ddg(self, capsys):
        assert main(["ddg", "forest", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out

    def test_run_induction_workload(self, capsys):
        assert main(["run", "extend:clean", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "induction" in out

    def test_run_with_faults_reports_survival(self, capsys):
        # Seed 1 is known (and pinned by determinism) to fire faults on
        # this workload within the first stages.
        assert main(["run", "random-deps", "-p", "8", "--strategy", "sw",
                     "--faults", "1", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "faults survived:" in out
        assert "fault retries:" in out

    def test_run_self_check_alone(self, capsys):
        assert main(["run", "scatter", "-p", "4", "--self-check"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "faults survived" not in out  # fault-free machine


class TestEngineCli:
    """Registry-resolved strategies and the stage-event trace flags."""

    def test_strategy_choices_come_from_registry(self):
        from repro.core.engine import strategy_names

        assert {"nrd", "rd", "adaptive", "sw", "iterwise", "induction"} <= set(
            strategy_names()
        )

    def test_run_iterwise_strategy(self, capsys):
        assert main(["run", "random-deps", "-p", "4",
                     "--strategy", "iterwise"]) == 0
        out = capsys.readouterr().out
        assert "iterwise" in out

    def test_run_explicit_induction_strategy(self, capsys):
        assert main(["run", "extend:clean", "-p", "4",
                     "--strategy", "induction"]) == 0
        out = capsys.readouterr().out
        assert "induction" in out

    def test_induction_strategy_on_plain_loop_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "doall", "-p", "2", "--strategy", "induction"])

    def test_run_trace_writes_valid_jsonl(self, tmp_path, capsys):
        import json

        from repro.obs.events import event_from_dict, validate_events

        path = tmp_path / "run.jsonl"
        assert main(["run", "random-deps", "-p", "4",
                     "--trace", str(path)]) == 0
        events = [
            event_from_dict(json.loads(line))
            for line in path.read_text().strip().splitlines()
        ]
        validate_events(events)

    def test_run_progress_narrates_stages(self, capsys):
        assert main(["run", "doall", "-p", "2", "--progress"]) == 0
        out = capsys.readouterr().out
        assert "stage 0:" in out and "done:" in out
