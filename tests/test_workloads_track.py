"""Tests for the TRACK workload kernels (NLFILT, EXTEND, FPTRAK)."""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.core.window import run_sliding_window
from repro.workloads.track_extend import EXTEND_DECKS, ExtendDeck, make_extend_loop
from repro.workloads.track_fptrak import FPTRAK_DECKS, FptrakDeck, make_fptrak_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS, NlfiltDeck, make_nlfilt_loop
from tests.conftest import assert_matches_sequential


SMALL_NLFILT = dataclasses.replace(NLFILT_DECKS["medium-deps"], n=600)
SMALL_EXTEND = dataclasses.replace(EXTEND_DECKS["light-deps"], n=512)
SMALL_FPTRAK = dataclasses.replace(FPTRAK_DECKS["light-deps"], n=512)


class TestNlfilt:
    def test_deck_validation(self):
        with pytest.raises(ValueError):
            NlfiltDeck("bad", n=0, dep_prob=0.1, mean_distance=2.0)
        with pytest.raises(ValueError):
            NlfiltDeck("bad", n=10, dep_prob=1.5, mean_distance=2.0)
        with pytest.raises(ValueError):
            NlfiltDeck("bad", n=10, dep_prob=0.1, mean_distance=0.5)

    def test_deterministic_per_instance(self):
        from repro.baselines.sequential import sequential_reference

        a = sequential_reference(make_nlfilt_loop(SMALL_NLFILT, instance=1))
        b = sequential_reference(make_nlfilt_loop(SMALL_NLFILT, instance=1))
        assert all((a[k] == b[k]).all() for k in a)

    def test_instances_differ(self):
        from repro.baselines.sequential import sequential_reference

        a = sequential_reference(make_nlfilt_loop(SMALL_NLFILT, instance=0))
        b = sequential_reference(make_nlfilt_loop(SMALL_NLFILT, instance=1))
        assert not (a["NUSED"] == b["NUSED"]).all()

    def test_fully_par_deck_single_stage(self):
        deck = dataclasses.replace(NLFILT_DECKS["fully-par"], n=400)
        res = parallelize(make_nlfilt_loop(deck), 8)
        assert res.n_stages == 1

    @pytest.mark.parametrize("strategy", ["blocked", "sw"])
    def test_correct_under_both_strategies(self, strategy):
        loop = make_nlfilt_loop(SMALL_NLFILT)
        if strategy == "blocked":
            res = parallelize(loop, 8, RuntimeConfig.adaptive())
        else:
            res = run_sliding_window(loop, 8, RuntimeConfig.sw(window_size=32))
        assert_matches_sequential(res, loop)

    def test_untested_state_survives_restarts(self):
        deck = dataclasses.replace(NLFILT_DECKS["dense-deps"], n=600)
        loop = make_nlfilt_loop(deck)
        res = parallelize(loop, 8, RuntimeConfig.rd())
        assert res.n_restarts > 0
        assert_matches_sequential(res, loop)

    def test_work_ramp_profile(self):
        deck = dataclasses.replace(SMALL_NLFILT, work_ramp=2.0, work_cv=0.0)
        loop = make_nlfilt_loop(deck)
        assert loop.work_of(deck.n - 1) > 2.5 * loop.work_of(0)


class TestExtend:
    def test_deck_validation(self):
        with pytest.raises(ValueError):
            ExtendDeck("bad", n=0)
        with pytest.raises(ValueError):
            ExtendDeck("bad", n=10, keep_prob=2.0)

    def test_clean_deck_no_restarts(self):
        deck = dataclasses.replace(EXTEND_DECKS["clean"], n=512)
        res = parallelize(make_extend_loop(deck), 8)
        assert res.n_restarts == 0
        assert res.n_stages == 2

    def test_induction_final_counts_kept_tracks(self):
        loop = make_extend_loop(SMALL_EXTEND)
        res = parallelize(loop, 4)
        from repro.baselines.sequential import run_sequential

        seq = run_sequential(make_extend_loop(SMALL_EXTEND))
        assert res.induction_finals == seq.induction_finals

    def test_correct_with_lookback_deps(self):
        deck = dataclasses.replace(EXTEND_DECKS["heavy-deps"], n=512)
        loop = make_extend_loop(deck)
        res = parallelize(loop, 8)
        assert_matches_sequential(res, loop)

    def test_lookback_lowers_pr(self):
        clean = parallelize(
            make_extend_loop(dataclasses.replace(EXTEND_DECKS["clean"], n=1024)), 8
        )
        heavy = parallelize(
            make_extend_loop(dataclasses.replace(EXTEND_DECKS["heavy-deps"], n=1024)), 8
        )
        assert heavy.parallelism_ratio < clean.parallelism_ratio


class TestFptrak:
    def test_deck_validation(self):
        with pytest.raises(ValueError):
            FptrakDeck("bad", n=10, scratch_slots=0)

    def test_scratch_is_privatizable(self):
        """The scratch array is written before read in every iteration --
        shared across all processors yet never a dependence source."""
        deck = dataclasses.replace(FPTRAK_DECKS["clean"], n=512)
        res = parallelize(make_fptrak_loop(deck), 8)
        assert res.n_restarts == 0

    def test_correct_with_inspection_deps(self):
        deck = dataclasses.replace(FPTRAK_DECKS["heavy-deps"], n=512)
        loop = make_fptrak_loop(deck)
        res = parallelize(loop, 8)
        assert_matches_sequential(res, loop)

    def test_matches_sequential_all_decks(self):
        for name in FPTRAK_DECKS:
            deck = dataclasses.replace(FPTRAK_DECKS[name], n=256)
            loop = make_fptrak_loop(deck)
            assert_matches_sequential(parallelize(loop, 4), loop)
