"""Concurrent-merge determinism stress for the threads backend.

The threads backend's whole correctness argument is that *completion
order never matters*: worker threads finish blocks in whatever order the
scheduler and the workload's skew dictate, and the merge replays the
order-sensitive residue (virtual-time charges, metrics, untested writes)
strictly in block-position order.  These tests make the completion order
maximally adversarial -- per-iteration host-time sleeps drawn from a
seeded RNG, so some blocks finish orders of magnitude later than their
merge position -- and assert the full bit-exact run fingerprint
(:func:`tests.engine_parity_cases.summarize`: memory hash, per-stage
commit/restore/span records, virtual times as float reprs) plus the
metrics snapshot equal the serial backend's, across 20 seeds.

Sleeps change host wall-clock only; virtual time comes from ``ctx.work``,
so a correct merge is *bit*-identical, not just approximately equal.
"""

import random
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from tests.engine_parity_cases import summarize

P = 4
N = 48
SEEDS = range(20)


def _skewed_doall(seed: int) -> SpeculativeLoop:
    """A doall whose per-iteration host time is adversarially skewed:
    most iterations are instant, a seeded few sleep ~3ms, so block
    completion order is effectively random and rarely matches block
    order."""
    rng = random.Random(f"{seed}-skew")
    delays = [
        rng.choice([0.0, 0.0, 0.0, 0.0, 0.003]) for _ in range(N)
    ]

    def body(ctx, i):
        if delays[i]:
            time.sleep(delays[i])
        ctx.work(1.0 + (i % 3))
        ctx.store("A", i, float(i) * 2.0 + 1.0)

    return SpeculativeLoop(
        f"skewed_doall_{seed}", N, body,
        arrays=[ArraySpec("A", np.zeros(N))],
    )


def _skewed_chain(seed: int) -> SpeculativeLoop:
    """Dependence-bearing variant: seeded short-distance flow dependences
    force restarts and redistribution (multi-stage merges, untested-style
    recovery paths), under the same host-time skew."""
    rng = random.Random(f"{seed}-chain")
    delays = [
        rng.choice([0.0, 0.0, 0.0, 0.002, 0.004]) for _ in range(N)
    ]
    reads = {
        i: rng.randint(max(0, i - 6), i - 1)
        for i in range(1, N)
        if rng.random() < 0.25
    }

    def body(ctx, i):
        if delays[i]:
            time.sleep(delays[i])
        acc = float(i)
        if i in reads:
            acc += ctx.load("A", reads[i])
        ctx.work(1.0)
        ctx.store("A", i, acc)

    return SpeculativeLoop(
        f"skewed_chain_{seed}", N, body,
        arrays=[ArraySpec("A", np.zeros(N))],
    )


def _run(make_loop, seed: int, backend: str):
    config = RuntimeConfig.adaptive(
        backend=backend, backend_workers=P, metrics=True,
    )
    return parallelize(make_loop(seed), P, config=config)


def _fingerprint(result) -> dict:
    record = summarize(result)
    record["metrics"] = result.metrics
    return record


@pytest.mark.parametrize("seed", SEEDS)
def test_threads_skewed_doall_bit_identical(seed):
    serial = _fingerprint(_run(_skewed_doall, seed, "serial"))
    threads = _fingerprint(_run(_skewed_doall, seed, "threads"))
    assert threads == serial


@pytest.mark.parametrize("seed", SEEDS)
def test_threads_skewed_chain_bit_identical(seed):
    serial = _fingerprint(_run(_skewed_chain, seed, "serial"))
    threads = _fingerprint(_run(_skewed_chain, seed, "threads"))
    assert threads == serial
