"""Tests for scaling prediction from one observed run."""

import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.machine.costs import CostModel
from repro.model.predict import predict_scaling, predicted_time
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_rd_targets,
    linear_chain_targets,
)

COSTS = CostModel(omega=1.0, ell=0.3, sync=20.0)


class TestPredictScaling:
    def test_parallel_loop_predicts_near_linear(self):
        res = run_blocked(fully_parallel_loop(2048), 4, RuntimeConfig.nrd(), costs=COSTS)
        pred = predict_scaling(res, COSTS, [2, 8, 16])
        assert pred.kind == "parallel"
        assert pred.predictions[16] > pred.predictions[8] > pred.predictions[2]
        assert pred.predictions[16] > 12.0

    def test_geometric_loop_saturates(self):
        n, p = 2048, 8
        loop = chain_loop(n, geometric_rd_targets(n, 0.5, p))
        res = run_blocked(loop, p, RuntimeConfig.adaptive(), costs=COSTS)
        pred = predict_scaling(res, COSTS, [2, 4, 8, 16])
        assert pred.kind == "geometric"
        assert pred.parameter == pytest.approx(0.5, abs=0.15)
        # More processors help, but sublinearly (the alpha tail).
        eff = {p_: s / p_ for p_, s in pred.predictions.items()}
        assert eff[16] < eff[2]

    def test_linear_loop_prediction_bounded(self):
        n, p = 512, 8
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd(), costs=COSTS)
        pred = predict_scaling(res, COSTS, [8])
        assert pred.predictions[8] < 2.0  # sequentialized loop cannot scale

    def test_prediction_matches_future_run(self):
        """The capacity-planning claim: a fit at p=4 predicts the modeled
        behavior at p=16 within the model's own accuracy band."""
        n = 4096
        loop4 = chain_loop(n, geometric_rd_targets(n, 0.5, 4))
        observed = run_blocked(loop4, 4, RuntimeConfig.adaptive(), costs=COSTS)
        t16_pred = predicted_time(observed, COSTS, 16)
        # Actually run at p=16 (targets tuned for p=4 partitions do not
        # align exactly with p=16 grids, so allow a generous band).
        loop16 = chain_loop(n, geometric_rd_targets(n, 0.5, 4))
        actual = run_blocked(loop16, 16, RuntimeConfig.adaptive(), costs=COSTS)
        assert t16_pred == pytest.approx(actual.total_time, rel=0.6)

    def test_best_p(self):
        res = run_blocked(fully_parallel_loop(1024), 4, RuntimeConfig.nrd(), costs=COSTS)
        pred = predict_scaling(res, COSTS, [2, 4, 8])
        assert pred.best_p() == 8

    def test_validation(self):
        res = run_blocked(fully_parallel_loop(64), 2, RuntimeConfig.nrd())
        with pytest.raises(ValueError):
            predict_scaling(res, COSTS, [])
        with pytest.raises(ValueError):
            predict_scaling(res, COSTS, [0])
