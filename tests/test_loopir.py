"""Unit tests for the loop IR: specs, contexts, reductions, inductions."""

import math

import numpy as np
import pytest

from repro.loopir.context import SequentialContext
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.memory import MemoryImage, SharedArray


class TestReductionOp:
    def test_sum_identity(self):
        assert ReductionOp.SUM.identity == 0.0
        assert ReductionOp.SUM.combine(2, 3) == 5

    def test_prod_identity(self):
        assert ReductionOp.PROD.identity == 1.0
        assert ReductionOp.PROD.combine(2, 3) == 6

    def test_min_identity(self):
        assert ReductionOp.MIN.identity == math.inf
        assert ReductionOp.MIN.combine(2, 3) == 2

    def test_max_identity(self):
        assert ReductionOp.MAX.identity == -math.inf
        assert ReductionOp.MAX.combine(2, 3) == 3

    @pytest.mark.parametrize("op", list(ReductionOp))
    def test_identity_is_neutral(self, op):
        assert op.combine(op.identity, 7.0) == 7.0
        assert op.combine(7.0, op.identity) == 7.0

    @pytest.mark.parametrize("op", list(ReductionOp))
    def test_commutative(self, op):
        assert op.combine(3.0, 5.0) == op.combine(5.0, 3.0)


class TestArraySpec:
    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ArraySpec("A", np.zeros((2, 2)))

    def test_make_shared_copies(self):
        spec = ArraySpec("A", np.arange(3.0))
        shared = spec.make_shared()
        shared.data[0] = 9
        assert spec.initial[0] == 0.0


class TestSpeculativeLoop:
    def body(self, ctx, i):
        pass

    def test_duplicate_arrays_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeLoop(
                "x", 4, self.body,
                arrays=[ArraySpec("A", np.zeros(2)), ArraySpec("A", np.zeros(2))],
            )

    def test_reduction_must_be_tested(self):
        with pytest.raises(ValueError):
            SpeculativeLoop(
                "x", 4, self.body,
                arrays=[ArraySpec("A", np.zeros(2), tested=False)],
                reductions={"A": ReductionOp.SUM},
            )

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeLoop("x", -1, self.body, arrays=[])

    def test_duplicate_inductions_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeLoop(
                "x", 4, self.body, arrays=[],
                inductions=[InductionSpec("k"), InductionSpec("k")],
            )

    def test_tested_untested_partition(self):
        loop = SpeculativeLoop(
            "x", 4, self.body,
            arrays=[
                ArraySpec("A", np.zeros(2), tested=True),
                ArraySpec("B", np.zeros(2), tested=False),
            ],
        )
        assert loop.tested_names == ["A"]
        assert loop.untested_names == ["B"]

    def test_work_of_default_uniform(self):
        loop = SpeculativeLoop("x", 4, self.body, arrays=[])
        assert loop.work_of(0) == 1.0
        assert loop.total_work() == 4.0

    def test_work_of_custom(self):
        loop = SpeculativeLoop(
            "x", 4, self.body, arrays=[], iter_work=lambda i: float(i)
        )
        assert loop.total_work() == 6.0

    def test_negative_work_rejected(self):
        loop = SpeculativeLoop(
            "x", 4, self.body, arrays=[], iter_work=lambda i: -1.0
        )
        with pytest.raises(ValueError):
            loop.work_of(0)

    def test_materialize_fresh_every_time(self):
        loop = SpeculativeLoop(
            "x", 4, self.body, arrays=[ArraySpec("A", np.zeros(2))]
        )
        m1 = loop.materialize()
        m1["A"].data[0] = 5
        m2 = loop.materialize()
        assert m2["A"].data[0] == 0.0

    def test_initial_inductions(self):
        loop = SpeculativeLoop(
            "x", 4, self.body, arrays=[],
            inductions=[InductionSpec("k", initial=10)],
        )
        assert loop.initial_inductions() == {"k": 10}


class TestInductionSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            InductionSpec("")


class TestSequentialContext:
    def make_memory(self):
        return MemoryImage([SharedArray("A", np.arange(8.0))])

    def test_load_store(self):
        mem = self.make_memory()
        ctx = SequentialContext(mem)
        assert ctx.load("A", 3) == 3.0
        ctx.store("A", 3, 42.0)
        assert mem["A"].data[3] == 42.0

    def test_update_applies_operator(self):
        mem = self.make_memory()
        ctx = SequentialContext(mem, reductions={"A": ReductionOp.SUM})
        ctx.update("A", 2, 10.0)
        assert mem["A"].data[2] == 12.0

    def test_load_of_reduction_array_rejected(self):
        ctx = SequentialContext(self.make_memory(), reductions={"A": ReductionOp.SUM})
        with pytest.raises(ValueError):
            ctx.load("A", 0)
        with pytest.raises(ValueError):
            ctx.store("A", 0, 1.0)

    def test_update_without_declaration_rejected(self):
        ctx = SequentialContext(self.make_memory())
        with pytest.raises(ValueError):
            ctx.update("A", 0, 1.0)

    def test_bump_semantics(self):
        ctx = SequentialContext(self.make_memory(), inductions={"k": 5})
        assert ctx.bump("k") == 5
        assert ctx.bump("k") == 6
        assert ctx.peek("k") == 7
        assert ctx.induction_values() == {"k": 7}

    def test_work_accumulates(self):
        ctx = SequentialContext(self.make_memory())
        ctx.work(2.5)
        ctx.work(1.0)
        assert ctx.extra_work == 3.5

    def test_negative_work_rejected(self):
        ctx = SequentialContext(self.make_memory())
        with pytest.raises(ValueError):
            ctx.work(-1.0)

    def test_trace_records_accesses(self):
        ctx = SequentialContext(self.make_memory(), trace=True)
        ctx.iteration = 4
        ctx.load("A", 1)
        ctx.store("A", 2, 0.0)
        kinds = [(r.iteration, r.kind, r.array, r.index) for r in ctx.records]
        assert kinds == [(4, "r", "A", 1), (4, "w", "A", 2)]
