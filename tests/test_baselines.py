"""Tests for the comparison baselines: sequential, inspector/executor,
DOACROSS."""

import numpy as np
import pytest

from repro.baselines.doacross import run_doacross
from repro.baselines.inspector import (
    dependence_edges_from_trace,
    run_inspector_executor,
)
from repro.baselines.sequential import run_sequential, sequential_reference
from repro.errors import InspectorUnavailableError
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.shadow.edges import EdgeKind
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    random_dependence_loop,
)


class TestSequential:
    def test_total_time_is_work_only(self):
        loop = fully_parallel_loop(64)
        res = run_sequential(loop)
        assert res.total_time == pytest.approx(64.0)
        assert res.overhead_time == 0.0

    def test_iter_work_includes_extra(self):
        def body(ctx, i):
            ctx.work(1.5)

        loop = SpeculativeLoop(
            "w", 4, body, arrays=[ArraySpec("A", np.zeros(1))]
        )
        res = run_sequential(loop)
        assert res.total_time == pytest.approx(4 * 2.5)

    def test_reference_snapshot(self):
        loop = fully_parallel_loop(8)
        ref = sequential_reference(loop)
        assert np.allclose(ref["A"], np.arange(8.0) * 2.0 + 1.0)

    def test_inductions_supported(self):
        from repro.loopir.induction import InductionSpec

        def body(ctx, i):
            ctx.store("T", ctx.bump("k"), 1.0)

        loop = SpeculativeLoop(
            "ind", 4, body,
            arrays=[ArraySpec("T", np.zeros(10))],
            inductions=[InductionSpec("k", 2)],
        )
        res = run_sequential(loop)
        assert res.induction_finals == {"k": 6}


class TestTraceEdges:
    def test_flow_from_trace(self):
        trace = [(set(), {("A", 0)}), ({("A", 0)}, set())]
        edges = dependence_edges_from_trace(trace)
        assert edges.iteration_pairs([EdgeKind.FLOW]) == {(0, 1)}

    def test_anti_from_trace(self):
        trace = [({("A", 0)}, set()), (set(), {("A", 0)})]
        edges = dependence_edges_from_trace(trace)
        assert edges.iteration_pairs([EdgeKind.ANTI]) == {(0, 1)}

    def test_output_from_trace(self):
        trace = [(set(), {("A", 0)}), (set(), {("A", 0)})]
        edges = dependence_edges_from_trace(trace)
        assert edges.iteration_pairs([EdgeKind.OUTPUT]) == {(0, 1)}

    def test_same_iteration_rw_no_edge(self):
        trace = [({("A", 0)}, {("A", 0)})]
        assert len(dependence_edges_from_trace(trace)) == 0


class TestInspectorExecutor:
    def test_executes_correctly(self):
        loop = random_dependence_loop(64, density=0.2, max_distance=5, seed=4)
        res = run_inspector_executor(loop, 4)
        assert res.memory.equals(sequential_reference(loop))

    def test_unavailable_inspector_raises(self):
        loop = SpeculativeLoop(
            "no-inspector", 4, lambda ctx, i: None,
            arrays=[ArraySpec("A", np.zeros(4))],
        )
        with pytest.raises(InspectorUnavailableError):
            run_inspector_executor(loop, 4)

    def test_wrong_trace_length_raises(self):
        loop = SpeculativeLoop(
            "bad", 4, lambda ctx, i: None,
            arrays=[ArraySpec("A", np.zeros(4))],
            inspector=lambda mem: [(set(), set())],  # 1 != 4
        )
        with pytest.raises(InspectorUnavailableError):
            run_inspector_executor(loop, 4)

    def test_inspection_cost_charged(self):
        loop = fully_parallel_loop(64)
        with_ie = run_inspector_executor(loop, 4)
        plain_seq = run_sequential(fully_parallel_loop(64))
        # Faster than sequential, but pays inspection on top of execution.
        assert with_ie.total_time < plain_seq.total_time
        assert "inspector" in with_ie.strategy


class TestDoacross:
    def test_executes_correctly(self):
        loop = chain_loop(64, targets=[10, 30])
        res = run_doacross(loop, 4)
        assert res.memory.equals(sequential_reference(loop))

    def test_unavailable_inspector_raises(self):
        loop = SpeculativeLoop(
            "no-inspector", 4, lambda ctx, i: None,
            arrays=[ArraySpec("A", np.zeros(4))],
        )
        with pytest.raises(InspectorUnavailableError):
            run_doacross(loop, 4)

    def test_full_chain_near_sequential(self):
        n = 64
        loop = chain_loop(n, targets=list(range(1, n)))
        res = run_doacross(loop, 8)
        assert res.speedup < 1.2  # flow chain serializes everything

    def test_parallel_loop_pays_setup(self):
        """Kazi & Lilja's weakness the paper cites: per-iteration setup and
        broadcast are paid even by fully parallel loops."""
        loop = fully_parallel_loop(256)
        res = run_doacross(loop, 8)
        assert res.speedup < 8.0
        assert res.speedup > 1.0

    def test_setup_scales_with_procs(self):
        s8 = run_doacross(fully_parallel_loop(256), 8)
        s2 = run_doacross(fully_parallel_loop(256), 2)
        # Broadcast cost grows with p; per-proc work shrinks.  Efficiency
        # (speedup/p) must degrade.
        assert s8.speedup / 8 < s2.speedup / 2
