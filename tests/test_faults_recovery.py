"""Recovery semantics under targeted (hand-written) fault plans."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.errors import FaultError, SelfCheckError
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.faults.selfcheck import check_final_state
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.timeline import Category
from repro.workloads import EXTEND_DECKS, make_extend_loop

from tests.conftest import assert_matches_sequential, make_simple_loop


def doall_loop(n=64, name="doall_faults"):
    def body(ctx, i):
        x = ctx.load("A", i)
        ctx.store("A", i, x + float(i))

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("A", np.zeros(n))]
    )


def untested_loop(n=64, name="untested_faults"):
    """Disjoint per-iteration writes to a statically analyzable array."""

    def body(ctx, i):
        ctx.work(1.0)
        ctx.store("B", i, float(i) + 1.0)

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("B", np.zeros(n), tested=False)]
    )


def fail_stop(stage, proc, *, permanent=False, after=0.5):
    return FaultEvent(
        FaultKind.FAIL_STOP, stage=stage, proc=proc,
        permanent=permanent, after_fraction=after,
    )


class TestFailStop:
    def test_transient_death_recovers(self):
        plan = FaultPlan(events=(fail_stop(0, 2),))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        assert_matches_sequential(result, doall_loop())
        assert result.retries == 1
        assert result.faults_survived == 1
        assert result.fault_counts == {"fail-stop": 1}
        assert result.stages[0].faulted_procs == [2]
        assert result.stages[0].failed
        assert result.dead_procs == []
        assert result.degraded_stages == 0

    def test_blocks_before_the_fault_commit(self):
        plan = FaultPlan(events=(fail_stop(0, 2),))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        # Fully parallel loop: positions 0 and 1 commit, 2.. re-execute.
        assert result.stages[0].committed_iterations == 32
        assert result.n_stages == 2

    def test_permanent_death_degrades_the_machine(self):
        plan = FaultPlan(events=(fail_stop(0, 1, permanent=True),))
        loop = make_simple_loop()
        result = parallelize(
            loop, 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        assert_matches_sequential(result, make_simple_loop())
        assert result.dead_procs == [1]
        assert result.degraded_stages >= 1
        assert any(s.degraded for s in result.stages)

    def test_permanent_death_under_rd(self):
        plan = FaultPlan(events=(fail_stop(0, 1, permanent=True),))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.rd(fault_plan=plan)
        )
        assert_matches_sequential(result, doall_loop())
        assert result.dead_procs == [1]
        # Degraded stages never schedule the dead processor.
        for stage in result.stages[1:]:
            assert all(b.proc != 1 for b in stage.blocks)

    def test_sliding_window_fail_stop(self):
        plan = FaultPlan(events=(fail_stop(0, 0),))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.sw(8, fault_plan=plan)
        )
        assert_matches_sequential(result, doall_loop())
        assert result.retries == 1
        assert result.stages[0].committed_iterations == 0

    def test_induction_runner_fail_stop(self):
        deck = EXTEND_DECKS["clean"]
        plan = FaultPlan(events=(fail_stop(1, 1),))  # phase B of round one
        result = parallelize(
            make_extend_loop(deck), 4, RuntimeConfig.rd(fault_plan=plan)
        )
        assert_matches_sequential(result, make_extend_loop(deck))
        assert result.retries == 1
        assert result.fault_counts == {"fail-stop": 1}

    def test_last_survivor_cannot_die(self):
        plan = FaultPlan(events=(
            fail_stop(0, 0, permanent=True, after=0.0),
        ))
        result = parallelize(
            doall_loop(), 1,
            RuntimeConfig.nrd(fault_plan=plan, max_fault_retries=3),
        )
        # The only processor's permanent death is downgraded to transient.
        assert_matches_sequential(result, doall_loop())
        assert result.dead_procs == []


class TestZeroCommitRetry:
    def test_bounded_retries_then_fault_error(self):
        plan = FaultPlan(events=(
            fail_stop(0, 0, after=0.0),
            fail_stop(1, 0, after=0.0),
            fail_stop(2, 0, after=0.0),
        ))
        with pytest.raises(FaultError) as exc:
            parallelize(
                doall_loop(), 4,
                RuntimeConfig.nrd(fault_plan=plan, max_fault_retries=2),
            )
        assert exc.value.loop == "doall_faults"
        assert exc.value.stage == 2

    def test_zero_retries_budget(self):
        plan = FaultPlan(events=(fail_stop(0, 0, after=0.0),))
        with pytest.raises(FaultError):
            parallelize(
                doall_loop(), 4,
                RuntimeConfig.nrd(fault_plan=plan, max_fault_retries=0),
            )

    def test_recovery_within_budget(self):
        plan = FaultPlan(events=(
            fail_stop(0, 0, after=0.0),
            fail_stop(1, 0, after=0.0),
        ))
        result = parallelize(
            doall_loop(), 4,
            RuntimeConfig.nrd(fault_plan=plan, max_fault_retries=2),
        )
        assert_matches_sequential(result, doall_loop())
        assert result.retries == 2
        assert result.stages[0].committed_iterations == 0
        assert result.stages[1].committed_iterations == 0


class TestStraggler:
    def test_slows_the_run_without_changing_results(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=3.0),
        ))
        clean = parallelize(doall_loop(), 4, RuntimeConfig.nrd())
        slow = parallelize(
            doall_loop(), 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        assert_matches_sequential(slow, doall_loop())
        assert slow.fault_counts == {"straggler": 1}
        assert slow.retries == 0
        assert slow.n_restarts == 0
        # The useful-work denominator is invariant; only elapsed time grows.
        assert slow.sequential_work == pytest.approx(clean.sequential_work)
        assert slow.total_time > clean.total_time


class TestCorruptWrite:
    def test_detected_and_reexecuted(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=1,
                       magnitude=100.0),
        ))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        assert_matches_sequential(result, doall_loop())
        assert result.fault_counts == {"corrupt-write": 1}
        assert result.retries == 1
        assert result.stages[0].faulted_procs == [1]

    def test_vacuous_when_block_writes_nothing(self):
        def body(ctx, i):
            if i < 16:  # only processor 0's block writes
                ctx.store("A", i, 1.0)

        loop = SpeculativeLoop(
            "sparse_writes", 64, body, arrays=[ArraySpec("A", np.zeros(64))]
        )
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=2),
        ))
        result = parallelize(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert result.faults_survived == 0
        assert result.retries == 0


class TestCheckpointFault:
    @pytest.mark.parametrize("on_demand", [True, False])
    def test_recharges_checkpoint_cost(self, on_demand):
        plan = FaultPlan(events=(FaultEvent(FaultKind.CHECKPOINT, stage=0),))
        clean = parallelize(
            untested_loop(), 4,
            RuntimeConfig.nrd(on_demand_checkpoint=on_demand),
        )
        faulted = parallelize(
            untested_loop(), 4,
            RuntimeConfig.nrd(fault_plan=plan, on_demand_checkpoint=on_demand),
        )
        assert_matches_sequential(faulted, untested_loop())
        assert faulted.fault_counts == {"checkpoint": 1}
        assert faulted.retries == 0
        assert (
            faulted.timeline.charged_category(Category.CHECKPOINT)
            > clean.timeline.charged_category(Category.CHECKPOINT)
        )

    def test_no_checkpointed_arrays_means_no_fault(self):
        plan = FaultPlan(events=(FaultEvent(FaultKind.CHECKPOINT, stage=0),))
        result = parallelize(
            doall_loop(), 4, RuntimeConfig.nrd(fault_plan=plan)
        )
        assert result.faults_survived == 0


class TestSelfCheck:
    def test_clean_run_passes(self):
        loop = make_simple_loop()
        result = parallelize(
            loop, 4, RuntimeConfig.adaptive(self_check=True)
        )
        assert_matches_sequential(result, make_simple_loop())

    def test_catches_untested_isolation_violation(self):
        # B carries a cross-processor flow dependence but is (wrongly)
        # declared statically analyzable.
        def body(ctx, i):
            prev = ctx.load("B", i - 1) if i else 0.0
            ctx.store("B", i, prev + 1.0)

        loop = SpeculativeLoop(
            "mis_declared", 32, body,
            arrays=[ArraySpec("B", np.zeros(32), tested=False)],
        )
        # certify="off": the certifier would (correctly) route this loop to
        # the in-order fast path; the speculative self-check is the target.
        with pytest.raises(SelfCheckError) as exc:
            parallelize(
                loop, 4, RuntimeConfig.nrd(self_check=True, certify="off")
            )
        assert exc.value.loop == "mis_declared"
        assert exc.value.stage == 0

    def test_final_state_divergence_detected(self):
        loop = doall_loop()
        result = parallelize(loop, 4, RuntimeConfig.nrd())
        snapshot = {"A": np.zeros(64)}
        result.memory["A"].data[7] += 1.0  # simulated silent corruption
        with pytest.raises(SelfCheckError, match="sequential oracle"):
            check_final_state(loop, result.memory, snapshot)

    def test_self_check_composes_with_faults(self):
        plan = FaultPlan(events=(
            fail_stop(0, 1),
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=2),
        ))
        result = parallelize(
            doall_loop(), 4,
            RuntimeConfig.rd(fault_plan=plan, self_check=True),
        )
        assert_matches_sequential(result, doall_loop())
        assert result.faults_survived == 2
