"""Driver-level verification of the documented timeline semantics.

docs/cost-model.md promises: processors overlap within a stage, commit and
restore overlap across the two disjoint groups, and the barrier serializes.
These tests verify the promises on *real runs* (via the raw timeline
records), not on hand-built records.
"""

import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.machine.costs import CostModel
from repro.machine.timeline import GLOBAL, Category
from repro.workloads.synthetic import chain_loop, fully_parallel_loop


class TestStageSpanSemantics:
    def test_span_below_sum_of_charges(self):
        """Parallel execution: the stage span must be far below the total
        charged time once several processors participate."""
        res = run_blocked(fully_parallel_loop(512), 8, RuntimeConfig.nrd())
        record = res.timeline.stages[0]
        total_charged = sum(record.category_total(c) for c in Category)
        assert record.span() < total_charged / 4

    def test_span_equals_max_proc_plus_global(self):
        res = run_blocked(fully_parallel_loop(64), 4, RuntimeConfig.nrd())
        record = res.timeline.stages[0]
        parallel = max(
            record.proc_time(p) for p in record.per_proc if p != GLOBAL
        )
        assert record.span() == pytest.approx(
            parallel + record.proc_time(GLOBAL)
        )

    def test_commit_restore_overlap_in_failed_stage(self):
        """In a failing stage the committing processors pay commit and the
        failing ones pay re-init; the span reflects the max of the two
        groups plus global charges, never their sum."""
        costs = CostModel(commit_per_elem=0.5, reinit_per_elem=0.5)
        loop = chain_loop(64, targets=[32])
        res = run_blocked(loop, 4, RuntimeConfig.nrd(), costs=costs)
        assert res.stages[0].failed
        record = res.timeline.stages[0]
        overlap_bound = max(
            record.proc_time(p) for p in record.per_proc if p != GLOBAL
        )
        assert record.span() <= overlap_bound + record.proc_time(GLOBAL) + 1e-9
        # Both phases really happened on disjoint processors.
        commit_procs = {
            p for p in record.per_proc
            if p != GLOBAL and record.per_proc[p].get(Category.COMMIT)
        }
        reinit_procs = {
            p for p in record.per_proc
            if p != GLOBAL and record.per_proc[p].get(Category.REINIT)
        }
        assert commit_procs and reinit_procs
        assert not commit_procs & reinit_procs

    def test_barrier_serializes(self):
        costs = CostModel(sync=100.0)
        res = run_blocked(fully_parallel_loop(64), 8, RuntimeConfig.nrd(), costs=costs)
        record = res.timeline.stages[0]
        # The barrier appears in full in the span regardless of p.
        assert record.span() >= 100.0
        assert record.proc_time(GLOBAL) >= 100.0

    def test_one_barrier_per_stage(self):
        costs = CostModel(sync=10.0)
        loop = chain_loop(64, targets=[32])
        res = run_blocked(loop, 4, RuntimeConfig.nrd(), costs=costs)
        assert res.timeline.charged_category(Category.SYNC) == pytest.approx(
            10.0 * res.n_stages
        )
