"""Tests for the Section 4 analytic model and loop classification."""

import math

import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.machine.costs import CostModel
from repro.model.analytic import (
    k_d_geometric,
    k_s_geometric,
    k_s_linear,
    remaining_after,
    t_dyn_geometric,
    t_static,
    total_time_geometric,
)
from repro.model.classify import classify_loop, estimate_alpha, estimate_beta
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_rd_targets,
    linear_chain_targets,
)


class TestKs:
    def test_fully_parallel_one_step(self):
        assert k_s_geometric(0.0, 8) == 1.0

    def test_alpha_half_log2p(self):
        """alpha = 1/2: k_s = log2 p (paper's worked example)."""
        assert k_s_geometric(0.5, 8) == pytest.approx(3.0)
        assert k_s_geometric(0.5, 16) == pytest.approx(4.0)

    def test_single_proc(self):
        assert k_s_geometric(0.5, 1) == 1.0

    def test_linear_fully_parallel(self):
        assert k_s_linear(0.0) == 1.0

    def test_linear_sequential(self):
        """beta = (p-1)/p: k_s = p (paper's worked example)."""
        p = 8
        assert k_s_linear((p - 1) / p) == pytest.approx(p)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            k_s_geometric(1.0, 8)
        with pytest.raises(ValueError):
            k_s_geometric(-0.1, 8)


class TestTStatic:
    def test_fully_parallel_example(self):
        """T_static = n*omega/p + s for beta = 0 (paper)."""
        assert t_static(100, 2.0, 5.0, 4, k_s=1.0) == pytest.approx(55.0)

    def test_sequential_example(self):
        """T_static = n*omega + p*s for the sequentialized loop (paper)."""
        n, omega, s, p = 100, 2.0, 5.0, 4
        assert t_static(n, omega, s, p, k_s=p) == pytest.approx(
            n * omega + p * s
        )


class TestKd:
    def test_never_pays_when_omega_below_ell(self):
        assert k_d_geometric(1000, 1.0, 2.0, 1.0, 8, 0.5) == 0.0

    def test_small_loop_never_redistributes(self):
        # threshold = p*s/(omega-ell) = 8*10/0.5 = 160 > n
        assert k_d_geometric(100, 1.0, 0.5, 10.0, 8, 0.5) == 0.0

    def test_eq7_value(self):
        """k_d = log_alpha((s/(omega-ell)) * (p/n))."""
        n, omega, ell, s, p, alpha = 4096, 1.0, 0.25, 4.0, 8, 0.5
        expected = math.log((s / (omega - ell)) * (p / n)) / math.log(alpha)
        assert k_d_geometric(n, omega, ell, s, p, alpha) == pytest.approx(expected)

    def test_kd_grows_with_n(self):
        a = k_d_geometric(1 << 10, 1.0, 0.25, 4.0, 8, 0.5)
        b = k_d_geometric(1 << 14, 1.0, 0.25, 4.0, 8, 0.5)
        assert b > a

    def test_remaining_after(self):
        assert remaining_after(1024, 0.5, 3) == 128.0


class TestTotalTime:
    def test_tdyn_includes_barriers(self):
        t = t_dyn_geometric(1024, 1.0, 0.0, 5.0, 8, 0.5, k_d=2.0)
        # steps 0..2: (1024 + 512 + 256)/8 work + 3 barriers
        assert t == pytest.approx(1792 / 8 + 15.0)

    def test_initial_step_pays_no_redistribution(self):
        free = t_dyn_geometric(1024, 1.0, 0.0, 0.0, 8, 0.5, k_d=0.0)
        moved = t_dyn_geometric(1024, 1.0, 10.0, 0.0, 8, 0.5, k_d=0.0)
        assert free == moved  # only step 0 ran: ell never charged

    def test_total_time_monotone_in_alpha(self):
        times = [
            total_time_geometric(4096, 1.0, 0.25, 4.0, 8, a)
            for a in (0.3, 0.5, 0.7)
        ]
        assert times[0] < times[1] < times[2]

    def test_model_tracks_simulation(self):
        """The headline Section 4 claim: the closed form predicts the
        simulated RD execution within the overheads it omits."""
        n, p, alpha = 2048, 8, 0.5
        costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
        loop = chain_loop(n, geometric_rd_targets(n, alpha, p))
        sim = run_blocked(loop, p, RuntimeConfig.adaptive(), costs=costs)
        model = total_time_geometric(n, costs.omega, costs.ell, costs.sync, p, alpha)
        assert sim.total_time == pytest.approx(model, rel=0.40)


class TestLinearModelAndAdvice:
    def test_total_time_linear_examples(self):
        from repro.model.analytic import total_time_linear

        # beta = 0: one step.
        assert total_time_linear(100, 2.0, 5.0, 4, 0.0) == pytest.approx(55.0)
        # beta = (p-1)/p: p steps = sequential + p barriers.
        assert total_time_linear(100, 2.0, 5.0, 4, 0.75) == pytest.approx(220.0)

    def test_speedup_geometric_decreases_with_alpha(self):
        from repro.model.analytic import speedup_geometric

        s = [speedup_geometric(4096, 1.0, 0.25, 4.0, 8, a) for a in (0.2, 0.5, 0.8)]
        assert s[0] > s[1] > s[2]

    def test_speedup_linear_fully_parallel_near_p(self):
        from repro.model.analytic import speedup_linear

        assert speedup_linear(10_000, 1.0, 4.0, 8, 0.0) == pytest.approx(8.0, rel=0.01)

    def test_speedup_linear_sequential_below_one(self):
        from repro.model.analytic import speedup_linear

        assert speedup_linear(100, 1.0, 4.0, 8, 7 / 8) < 1.0

    def test_recommend_strategy(self):
        from repro.model.analytic import recommend_strategy

        # Cheap iterations, expensive movement: never redistribute.
        assert recommend_strategy(1000, 0.1, 0.5, 4.0, 8) == "nrd"
        # Heavy iterations: adaptive redistribution.
        assert recommend_strategy(1000, 10.0, 0.5, 4.0, 8) == "adaptive"

    def test_linear_model_tracks_nrd_simulation(self):
        n, p = 1024, 8
        from repro.model.analytic import total_time_linear

        costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
        loop = chain_loop(n, linear_chain_targets(n, p))
        sim = run_blocked(loop, p, RuntimeConfig.nrd(), costs=costs)
        model = total_time_linear(n, costs.omega, costs.sync, p, (p - 1) / p)
        assert sim.total_time == pytest.approx(model, rel=0.30)


class TestClassification:
    def test_geometric_loop_alpha_estimate(self):
        n, p, alpha = 1024, 8, 0.5
        loop = chain_loop(n, geometric_rd_targets(n, alpha, p))
        res = run_blocked(loop, p, RuntimeConfig.rd())
        est = estimate_alpha(res)
        assert est == pytest.approx(alpha, abs=0.1)

    def test_linear_loop_beta_estimate(self):
        n, p = 512, 8
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        est = estimate_beta(res)
        assert est == pytest.approx((p - 1) / p, abs=0.05)

    def test_parallel_loop_unclassifiable(self):
        res = run_blocked(fully_parallel_loop(64), 8, RuntimeConfig.nrd())
        assert estimate_alpha(res) is None
        assert classify_loop(res).kind == "parallel"

    def test_geometric_preferred_for_geometric(self):
        n, p = 1024, 8
        loop = chain_loop(n, geometric_rd_targets(n, 0.5, p))
        res = run_blocked(loop, p, RuntimeConfig.rd())
        verdict = classify_loop(res)
        assert verdict.kind == "geometric"
        assert verdict.geometric_error <= verdict.linear_error

    def test_linear_preferred_for_linear(self):
        n, p = 512, 8
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        verdict = classify_loop(res)
        assert verdict.kind == "linear"
