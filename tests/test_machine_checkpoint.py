"""Unit tests for checkpoint/restore of untested state."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.machine.checkpoint import CheckpointManager, verify_untested_isolation
from repro.machine.memory import MemoryImage, SharedArray


def make_memory(n=8):
    return MemoryImage([SharedArray("B", np.arange(float(n)))])


class TestFullCheckpoint:
    def test_begin_copies_everything(self):
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=False)
        assert ckpt.begin_stage() == 8

    def test_restore_failed_rolls_back(self):
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=False)
        ckpt.begin_stage()
        ckpt.note_write(2, "B", 5)
        mem["B"].data[5] = -1.0
        restored = ckpt.restore_failed([2])
        assert restored == 1
        assert mem["B"].data[5] == 5.0

    def test_committed_procs_not_rolled_back(self):
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=False)
        ckpt.begin_stage()
        ckpt.note_write(0, "B", 1)
        mem["B"].data[1] = 100.0
        ckpt.restore_failed([3])  # proc 3 wrote nothing
        assert mem["B"].data[1] == 100.0


class TestOnDemandCheckpoint:
    def test_begin_copies_nothing(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        assert ckpt.begin_stage() == 0

    def test_first_touch_saves(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        ckpt.begin_stage()
        assert ckpt.note_write(0, "B", 3) == 1
        assert ckpt.note_write(0, "B", 3) == 0  # second touch is free

    def test_first_touch_saves_old_value(self):
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(1, "B", 4)
        mem["B"].data[4] = -7.0
        mem["B"].data[4] = -8.0  # overwritten twice
        ckpt.restore_failed([1])
        assert mem["B"].data[4] == 4.0

    def test_restore_is_dirty_only_and_counts_bytes(self):
        # Restoration touches exactly the failed processors' dirty indices;
        # last_restored_bytes reports the traffic of the most recent call.
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(1, "B", 2)
        ckpt.note_write(1, "B", 5)
        ckpt.note_write(0, "B", 6)  # survives: proc 0 is not restored
        mem["B"].data[[2, 5, 6]] = -1.0
        assert ckpt.restore_failed([1]) == 2
        assert ckpt.last_restored_bytes == 2 * mem["B"].data.dtype.itemsize
        assert mem["B"].data[2] == 2.0 and mem["B"].data[5] == 5.0
        assert mem["B"].data[6] == -1.0
        assert ckpt.restore_failed([1]) == 0
        assert ckpt.last_restored_bytes == 0

    def test_elements_checkpointed_counter(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(0, "B", 0)
        ckpt.note_write(0, "B", 1)
        ckpt.note_write(1, "B", 2)
        assert ckpt.elements_checkpointed == 3


class TestContractEnforcement:
    def test_cross_group_write_detected(self):
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(0, "B", 3)  # committing proc
        ckpt.note_write(5, "B", 3)  # failed proc, same element
        with pytest.raises(CheckpointError):
            ckpt.restore_failed([5])

    def test_unknown_array_rejected(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        ckpt.begin_stage()
        with pytest.raises(CheckpointError):
            ckpt.note_write(0, "C", 0)

    @pytest.mark.parametrize("on_demand", [True, False])
    def test_write_before_begin_stage_rejected(self, on_demand):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=on_demand)
        with pytest.raises(CheckpointError, match="begin_stage"):
            ckpt.note_write(0, "B", 3)

    def test_begin_stage_opens_the_epoch(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        ckpt.begin_stage()
        assert ckpt.note_write(0, "B", 3) == 1  # no lifecycle error

    def test_restore_clears_failed_logs(self):
        # After restoration the failed processors re-execute and re-write;
        # their old logs must not leak into the next stage's restore.
        mem = make_memory()
        ckpt = CheckpointManager(mem, ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(2, "B", 6)
        mem["B"].data[6] = -1.0
        ckpt.restore_failed([2])
        assert ckpt.restore_failed([2]) == 0  # nothing left to restore

    def test_modified_by(self):
        ckpt = CheckpointManager(make_memory(), ["B"], on_demand=True)
        ckpt.begin_stage()
        ckpt.note_write(1, "B", 2)
        ckpt.note_write(3, "B", 7)
        assert ckpt.modified_by([1]) == {"B": [2]}
        assert ckpt.modified_by([1, 3]) == {"B": [2, 7]}


class TestIsolationValidator:
    def test_clean_pattern_passes(self):
        reads = {"B": {3: {0}}}
        writes = {"B": {3: {0}}}
        assert verify_untested_isolation(reads, writes) == []

    def test_cross_proc_raw_flagged(self):
        reads = {"B": {3: {2}}}
        writes = {"B": {3: {0}}}
        problems = verify_untested_isolation(reads, writes)
        assert len(problems) == 1
        assert "B[3]" in problems[0]

    def test_read_only_element_ok(self):
        reads = {"B": {3: {0, 1, 2}}}
        writes = {"B": {}}
        assert verify_untested_isolation(reads, writes) == []
