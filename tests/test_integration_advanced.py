"""Advanced integration scenarios: feature interplay across subsystems."""

import dataclasses

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.induction_runner import run_induction
from repro.core.rlrpd import run_blocked
from repro.core.runner import parallelize, run_program
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.topology import Topology
from tests.conftest import assert_matches_sequential


class TestMixedArrayKinds:
    def make_loop(self, n=64):
        """Dense tested + sparse tested + untested + reduction, one loop."""

        def body(ctx, i):
            x = ctx.load("DENSE", i)
            big_addr = (i * 9173) % (1 << 18)
            ctx.store("SPARSE", big_addr, x + 1.0)
            y = ctx.load("SPARSE", big_addr)
            ctx.store("DENSE", (i * 5 + 2) % n, y * 0.5)
            ctx.store("LOG", i, float(i))          # untested, own element
            ctx.update("SUMS", i % 4, 1.0)          # integer reduction

        return SpeculativeLoop(
            "mixed", n, body,
            arrays=[
                ArraySpec("DENSE", np.arange(float(n)), tested=True, sparse=False),
                ArraySpec("SPARSE", np.zeros(1 << 18), tested=True, sparse=True),
                ArraySpec("LOG", np.zeros(n), tested=False),
                ArraySpec("SUMS", np.zeros(4), tested=True),
            ],
            reductions={"SUMS": ReductionOp.SUM},
        )

    @pytest.mark.parametrize("cfg", [
        RuntimeConfig.nrd(),
        RuntimeConfig.rd(),
        RuntimeConfig.sw(window_size=16),
    ], ids=lambda c: c.label())
    def test_all_kinds_together(self, cfg):
        loop = self.make_loop()
        res = parallelize(loop, 8, cfg)
        assert_matches_sequential(res, loop)

    def test_restarts_do_not_corrupt_reductions(self):
        loop = self.make_loop()
        res = parallelize(loop, 8, RuntimeConfig.rd())
        assert res.n_restarts > 0  # DENSE writes collide across procs
        assert res.memory["SUMS"].data.sum() == 64.0


class TestInductionWithUntested:
    def test_untested_state_correct_across_phases(self):
        """Phase A privatizes even untested arrays (wrong-offset writes must
        vanish); phase B writes them through under checkpoint."""

        def body(ctx, i):
            slot = ctx.peek("K")
            ctx.store("T", slot, float(i))
            ctx.store("B", i, float(slot))  # untested, per-iteration element
            if i % 3 == 0:
                ctx.bump("K")

        loop = SpeculativeLoop(
            "ind-untested", 48, body,
            arrays=[
                ArraySpec("T", np.zeros(64), tested=True),
                ArraySpec("B", np.zeros(48), tested=False),
            ],
            inductions=[InductionSpec("K", initial=2)],
        )
        res = run_induction(loop, 4)
        assert_matches_sequential(res, loop)
        # B records the true induction values, proving phase A leaked nothing.
        assert res.memory["B"].data[0] == 2.0


class TestFeedbackWithRestarts:
    def test_balancer_survives_partially_parallel_runs(self):
        """Measured times come from the final committed executions even when
        iterations re-execute in later stages."""

        def make(k):
            def body(ctx, i):
                x = ctx.load("A", i)
                if i == 50:
                    x += ctx.load("A", 10)
                ctx.store("A", i, x + 1.0)

            return SpeculativeLoop(
                "fb-restart", 100, body,
                arrays=[ArraySpec("A", np.zeros(100))],
                iter_work=lambda i: 1.0 + i / 50.0,
            )

        prog = run_program(
            (make(k) for k in range(3)),
            4,
            RuntimeConfig.adaptive(feedback_balancing=True),
        )
        assert prog.n_instantiations == 3
        for run in prog.runs:
            assert set(run.iteration_times) == set(range(100))


class TestTopologyWithFeedback:
    def test_combined_features_still_sound(self):
        from repro.workloads.synthetic import chain_loop, geometric_chain_targets

        loop = chain_loop(256, geometric_chain_targets(256, 0.5))
        res = run_blocked(
            loop, 8,
            RuntimeConfig.rd(feedback_balancing=True),
            weights=np.ones(256),
            topology=Topology.numa(8, 2, remote_factor=1.5),
        )
        assert_matches_sequential(res, loop)
        assert any(s.migration_distance > 0 for s in res.stages)


class TestExitWithReductions:
    def test_reduction_partials_respect_exit(self):
        def body(ctx, i):
            ctx.update("H", i % 2, 1.0)
            if i == 9:
                ctx.exit_loop()

        loop = SpeculativeLoop(
            "exit-red", 64, body,
            arrays=[ArraySpec("H", np.zeros(2))],
            reductions={"H": ReductionOp.SUM},
        )
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert res.exit_iteration == 9
        assert res.memory["H"].data.sum() == 10.0
        assert_matches_sequential(res, loop)


class TestProgramLevelComposition:
    def test_program_mixes_strategies_per_loop_kind(self):
        """One 'program' using the blocked runner, the SW runner and the
        induction runner in sequence, PR aggregated across all."""
        from repro.workloads.synthetic import fully_parallel_loop
        from repro.workloads.track_extend import EXTEND_DECKS, make_extend_loop

        deck = dataclasses.replace(EXTEND_DECKS["clean"], n=128)
        loops = [fully_parallel_loop(128), make_extend_loop(deck)]
        prog = run_program(loops, 4, RuntimeConfig.adaptive())
        assert prog.n_instantiations == 2
        assert prog.parallelism_ratio == 1.0
