"""The static certification front-end and its zero-speculation fast path.

Three layers under test:

* the symbolic probe layer (:mod:`repro.loopir.symbolic`): recorded
  traces, affine site fitting, and the exact dependence tests;
* the certifier (:mod:`repro.model.certify`): verdicts, evidence classes,
  and the soundness differential oracle -- every exact certificate must
  agree with an independently computed shadow-marked serial replay;
* the engine fast path (:mod:`repro.core.fastpath`): certified-DOALL and
  certified-SEQUENTIAL runs must be bit-identical to the sequential
  reference on every backend, and ``--certify=off`` must reproduce the
  speculative pipeline byte-for-byte.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.errors import ConfigurationError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.symbolic import (
    AffineSite,
    affine_dependences,
    probe_loop,
    trace_dependences,
)
from repro.model.certify import (
    DOALL,
    SEQUENTIAL,
    SPECULATE,
    certify_loop,
    fastpath_strategy,
)
from repro.workloads.patterns import (
    gather_loop,
    pointer_chase_loop,
    scatter_loop,
    stencil_loop,
)
from repro.workloads.synthetic import (
    chain_loop,
    copyin_loop,
    fully_parallel_loop,
    prefix_sum_loop,
    privatizable_loop,
    random_dependence_loop,
    reduction_loop,
    strided_doall_loop,
)
from tests.conftest import assert_matches_sequential
from tests.engine_parity_cases import summarize

P = 4

HAS_FORK = "fork" in mp.get_all_start_methods()
BACKENDS = ["serial", "threads"] + (["fork", "shm"] if HAS_FORK else [])


# -- symbolic probe layer ---------------------------------------------------------


class TestProbe:
    def test_full_probe_records_exact_trace(self):
        probe = probe_loop(prefix_sum_loop(16))
        assert probe.full and probe.iterations == list(range(16))
        reads = [(r.array, r.index) for r in probe.records if r.kind == "r"]
        # Iteration 0 reads only B[0]; each later i reads A[i-1] then B[i].
        assert reads[0] == ("B", 0)
        assert ("A", 14) in reads

    def test_probe_never_mutates_the_input_image(self):
        loop = fully_parallel_loop(8)
        image = loop.materialize()
        before = {n: image[n].data.copy() for n in image.names()}
        probe_loop(loop, memory=image)
        for name, data in before.items():
            assert (image[name].data == data).all()

    def test_sampled_probe_fits_affine_sites(self):
        loop = strided_doall_loop(10_000, stride=3)
        probe = probe_loop(loop, limit=4096, sample=48)
        assert not probe.full and probe.uniform
        fits = {(s.kind, s.array): (s.stride, s.offset) for s in probe.sites}
        assert fits[("r", "B")] == (3, 0)
        assert fits[("w", "A")] == (1, 0)

    def test_data_dependent_subscripts_do_not_fit(self):
        loop = scatter_loop(10_000, n_targets=64, seed=3)
        probe = probe_loop(loop, limit=4096, sample=48)
        assert probe.sites is None

    def test_bulk_ops_record_per_element(self):
        def body(ctx, i):
            vals = ctx.load_many("A", np.array([i, i], dtype=np.int64))
            ctx.store_many("A", np.array([i], dtype=np.int64), vals[:1] + 1.0)

        loop = SpeculativeLoop(
            "bulk", 4, body, arrays=[ArraySpec("A", np.zeros(4))]
        )
        probe = probe_loop(loop)
        per_iter = [r for r in probe.records if r.iteration == 2]
        assert [(r.kind, r.index) for r in per_iter] == [
            ("r", 2), ("r", 2), ("w", 2)
        ]

    def test_premature_exit_recorded(self):
        def body(ctx, i):
            ctx.store("A", i, 1.0)
            if i == 5:
                ctx.exit_loop()

        loop = SpeculativeLoop(
            "exiter", 32, body, arrays=[ArraySpec("A", np.zeros(32))]
        )
        probe = probe_loop(loop)
        assert probe.exit_at == 5
        # Sequential semantics: nothing past the exit executes.
        assert max(r.iteration for r in probe.records) == 5


class TestDependenceTests:
    def test_read_only_sharing_is_not_a_conflict(self):
        loop = gather_loop(64, fan_in=4, seed=2)
        probe = probe_loop(loop)
        assert trace_dependences(probe.records, 64).conflicts == 0

    def test_chain_has_full_critical_path(self):
        probe = probe_loop(prefix_sum_loop(32))
        deps = trace_dependences(probe.records, 32)
        assert deps.critical_path == 32
        assert deps.max_distance == 1
        assert (0, 1) in deps.flow_edges

    def test_affine_disjoint_sites(self):
        sites = [
            AffineSite(0, "r", "B", 2, 0),
            AffineSite(1, "w", "A", 1, 0),
        ]
        assert affine_dependences(sites, 1000).conflicts == 0

    def test_affine_distance_one_chain(self):
        sites = [
            AffineSite(0, "r", "A", 1, -1),
            AffineSite(1, "w", "A", 1, 0),
        ]
        deps = affine_dependences(sites, 64)
        assert deps.conflicts > 0
        assert deps.critical_path == 64

    def test_affine_constant_site_conflicts(self):
        sites = [AffineSite(0, "w", "H", 0, 3)]
        assert affine_dependences(sites, 16).conflicts > 0

    def test_affine_commuting_updates_are_clean(self):
        sites = [AffineSite(0, "u", "H", 0, 3)]
        assert affine_dependences(sites, 16).conflicts == 0


# -- certifier verdicts -----------------------------------------------------------


class TestVerdicts:
    def test_doall_from_full_probe(self):
        cert = certify_loop(fully_parallel_loop(64))
        assert (cert.verdict, cert.basis, cert.exact) == (DOALL, "trace", True)

    def test_sequential_from_full_probe(self):
        cert = certify_loop(prefix_sum_loop(64))
        assert (cert.verdict, cert.exact) == (SEQUENTIAL, True)

    def test_affine_model_verdict_is_not_exact(self):
        cert = certify_loop(strided_doall_loop(10_000))
        assert (cert.verdict, cert.basis, cert.exact) == (DOALL, "affine", False)

    def test_sparse_dependences_speculate_with_hint(self):
        cert = certify_loop(random_dependence_loop(256, 0.05, 4, seed=7))
        assert cert.verdict == SPECULATE
        assert cert.strategy_hint in ("nrd", "adaptive", "sw")

    def test_dense_short_distance_hints_sliding_window(self):
        cert = certify_loop(random_dependence_loop(256, 0.9, 2, seed=7))
        assert cert.verdict == SPECULATE
        assert cert.strategy_hint == "sw"
        assert cert.window_hint is not None and cert.window_hint >= 2

    def test_reductions_are_structural_speculate(self):
        cert = certify_loop(reduction_loop(64))
        assert (cert.verdict, cert.basis) == (SPECULATE, "structural")

    def test_premature_exit_blocks_the_plain_path(self):
        def body(ctx, i):
            ctx.store("A", i, float(i))
            if i == 9:
                ctx.exit_loop()

        loop = SpeculativeLoop(
            "exit-doall", 64, body, arrays=[ArraySpec("A", np.zeros(64))]
        )
        cert = certify_loop(loop)
        assert cert.verdict == SPECULATE

    def test_zero_iterations_is_trivial_doall(self):
        cert = certify_loop(fully_parallel_loop(0))
        assert (cert.verdict, cert.basis) == (DOALL, "trivial")

    def test_raising_body_yields_opaque_speculate(self):
        def body(ctx, i):
            raise RuntimeError("boom")

        loop = SpeculativeLoop(
            "boom", 8, body, arrays=[ArraySpec("A", np.zeros(8))]
        )
        cert = certify_loop(loop)
        assert (cert.verdict, cert.basis, cert.exact) == (
            SPECULATE, "opaque", False
        )
        assert "probe aborted" in cert.reason

    def test_fastpath_requires_exactness_unless_trusted(self):
        cert = certify_loop(strided_doall_loop(10_000))
        assert fastpath_strategy(cert, RuntimeConfig.adaptive()) is None
        trusted = fastpath_strategy(
            cert, RuntimeConfig.adaptive(certify="trust")
        )
        assert trusted is not None and trusted.name == "certified-doall"


# -- soundness: differential oracle over the corpus --------------------------------


def _corpus():
    return {
        "doall": fully_parallel_loop(96),
        "strided-doall": strided_doall_loop(256, stride=2),
        "prefix-sum": prefix_sum_loop(96),
        "chain-sparse": chain_loop(96, [24, 48, 72]),
        "privatizable": privatizable_loop(96),
        "copyin": copyin_loop(96),
        "random-mid": random_dependence_loop(96, 0.3, 6, seed=5),
        "stencil": stencil_loop(96, radius=1),
        "pointer-chase": pointer_chase_loop(96, seed=1),
        "gather": gather_loop(96, fan_in=4, seed=2),
        "scatter": scatter_loop(96, n_targets=12, seed=3),
    }


def _replay_conflicts(loop) -> int:
    """Independent oracle: shadow-marked serial replay.

    Executes the loop with plain sequential semantics while recording
    every element access, then counts elements shared across iterations
    with at least one write -- deliberately *not* reusing the certifier's
    own dependence machinery.
    """
    memory = loop.materialize()
    ctx = SequentialContext(
        memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
        trace=True,
    )
    for i in range(loop.n_iterations):
        ctx.iteration = i
        loop.body(ctx, i)
        if ctx.exited:
            break
    touched: dict[tuple[str, int], set[int]] = {}
    written: dict[tuple[str, int], set[int]] = {}
    for rec in ctx.records:
        key = (rec.array, rec.index)
        touched.setdefault(key, set()).add(rec.iteration)
        if rec.kind in ("w", "u"):
            written.setdefault(key, set()).add(rec.iteration)
    return sum(
        1
        for key, iters in touched.items()
        if len(iters) > 1 and key in written
    )


class TestSoundnessOracle:
    @pytest.mark.parametrize("name", sorted(_corpus()))
    def test_exact_certificates_agree_with_shadow_replay(self, name):
        loop = _corpus()[name]
        cert = certify_loop(loop)
        if not cert.exact:
            pytest.skip("model evidence; the exactness oracle does not apply")
        conflicts = _replay_conflicts(loop)
        if cert.verdict == DOALL:
            assert conflicts == 0, f"{name}: certified DOALL but replay conflicts"
        elif cert.verdict == SEQUENTIAL:
            assert conflicts > 0, f"{name}: certified SEQUENTIAL but replay clean"

    @pytest.mark.parametrize("name", sorted(_corpus()))
    def test_certified_runs_match_sequential(self, name):
        loop = _corpus()[name]
        res = parallelize(loop, P)
        assert_matches_sequential(res, _corpus()[name])


# -- the fast path ----------------------------------------------------------------


class TestFastPath:
    def test_doall_takes_one_plain_stage(self):
        res = parallelize(fully_parallel_loop(64), P)
        assert res.strategy == "certified-doall"
        assert res.n_stages == 1 and res.n_restarts == 0
        assert res.certificate.verdict == DOALL

    def test_doall_charges_only_work_and_sync(self):
        res = parallelize(fully_parallel_loop(64), P)
        # No marking, no copy-in, no checkpoint, no analysis, no commit
        # copy-out: the virtual time is the work itself (split across P
        # processors) plus the per-stage synchronization charge.
        breakdown = {cat.name: t for cat, t in res.stages[0].breakdown.items()}
        assert set(breakdown) == {"WORK", "SYNC"}
        assert breakdown["WORK"] == pytest.approx(64 / P)
        spec = parallelize(
            fully_parallel_loop(64), P, RuntimeConfig.adaptive(certify="off")
        )
        assert res.speedup > spec.speedup
        assert res.total_time < spec.total_time

    def test_sequential_runs_in_order_on_one_processor(self):
        res = parallelize(prefix_sum_loop(64), P)
        assert res.strategy == "certified-seq"
        assert res.n_stages == 1 and res.n_restarts == 0

    def test_sequential_with_exit_matches_reference(self):
        def body(ctx, i):
            prev = ctx.load("A", i - 1) if i else 0.0
            ctx.store("A", i, prev + 1.0)
            if prev >= 9.0:
                ctx.exit_loop()

        def make():
            return SpeculativeLoop(
                "exit-chain", 64, body,
                arrays=[ArraySpec("A", np.zeros(64))],
            )

        res = parallelize(make(), P)
        assert res.strategy == "certified-seq"
        assert res.exit_iteration == 9
        assert_matches_sequential(res, make())

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("loop_name", ["strided-doall", "prefix-sum"])
    def test_bit_identical_across_backends(self, loop_name, backend):
        factory = _corpus()
        serial = summarize(parallelize(factory[loop_name], P))
        got = summarize(
            parallelize(
                _corpus()[loop_name], P,
                RuntimeConfig.adaptive(backend=backend, backend_workers=P),
            )
        )
        assert got == serial

    def test_weighted_partition_respected(self):
        loop = fully_parallel_loop(64)
        weights = np.ones(64)
        weights[:8] = 50.0
        res = parallelize(loop, P, weights=weights)
        assert res.strategy == "certified-doall"
        sizes = [len(b) for b in res.stages[0].blocks]
        assert min(sizes) < max(sizes)  # heavy prefix got a narrow block
        assert_matches_sequential(res, fully_parallel_loop(64))

    def test_explicit_strategy_bypasses_certification(self):
        res = parallelize(
            fully_parallel_loop(32), P, RuntimeConfig.nrd(),
        )
        # Config-level default still certifies...
        assert res.strategy == "certified-doall"
        from repro.core.rlrpd import BlockedNRD

        # ...but an explicit strategy object is always honored.
        res2 = parallelize(
            fully_parallel_loop(32), P, RuntimeConfig.nrd(),
            strategy=BlockedNRD(),
        )
        assert res2.strategy == "NRD"
        assert res2.certificate is None

    def test_fastpath_strategy_rejects_fault_plans(self):
        from repro.core.fastpath import CertifiedDoall
        from repro.faults import FaultEvent, FaultKind, FaultPlan

        cert = certify_loop(fully_parallel_loop(16))
        plan = FaultPlan(
            events=(FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=1),)
        )
        with pytest.raises(ConfigurationError):
            parallelize(
                fully_parallel_loop(16), P,
                RuntimeConfig.nrd(fault_plan=plan),
                strategy=CertifiedDoall(cert),
            )


# -- mode semantics ---------------------------------------------------------------


class TestCertifyModes:
    def test_off_reproduces_the_speculative_pipeline(self, tmp_path):
        # On a SPECULATE loop the hint-mode run must be byte-identical to
        # certify=off: hints only reorder predictor exploration, they never
        # perturb a single run's schedule or events.
        loop = lambda: random_dependence_loop(128, 0.3, 6, seed=5)  # noqa: E731
        off_trace = tmp_path / "off.jsonl"
        hint_trace = tmp_path / "hint.jsonl"
        off = parallelize(
            loop(), P,
            RuntimeConfig.adaptive(certify="off", trace_path=str(off_trace)),
        )
        hint = parallelize(
            loop(), P,
            RuntimeConfig.adaptive(certify="hint", trace_path=str(hint_trace)),
        )
        assert summarize(hint) == summarize(off)
        assert hint_trace.read_bytes() == off_trace.read_bytes()

    def test_off_disables_the_fast_path(self):
        res = parallelize(
            fully_parallel_loop(64), P, RuntimeConfig.adaptive(certify="off")
        )
        assert res.strategy == "RD-adaptive"
        assert res.certificate is None

    def test_trust_acts_on_model_evidence(self):
        loop = strided_doall_loop(6000)
        hint = parallelize(loop, P)
        assert hint.strategy != "certified-doall"  # affine evidence only
        trust = parallelize(
            strided_doall_loop(6000), P, RuntimeConfig.adaptive(certify="trust")
        )
        assert trust.strategy == "certified-doall"
        assert_matches_sequential(trust, strided_doall_loop(6000))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig.adaptive(certify="yolo")


# -- observability ----------------------------------------------------------------


class TestSurfacing:
    def test_certificate_on_result_and_summary(self):
        res = parallelize(fully_parallel_loop(32), P)
        assert res.certificate.verdict == DOALL
        assert res.summary()["certificate"] == DOALL

    def test_speculate_certificate_still_surfaced(self):
        res = parallelize(random_dependence_loop(64, 0.3, 4, seed=5), P)
        assert res.certificate is not None
        assert res.certificate.verdict == SPECULATE

    def test_stage_trace_leads_with_certificate(self):
        from repro.bench.trace import render_stage_trace

        res = parallelize(fully_parallel_loop(32), P)
        text = render_stage_trace(res)
        assert text.startswith("certificate: DOALL [trace/exact]")

    def test_report_names_the_fast_path(self, tmp_path):
        from repro.obs.report import load_trace, run_report

        trace = tmp_path / "trace.jsonl"
        parallelize(
            fully_parallel_loop(32), P,
            RuntimeConfig.adaptive(trace_path=str(trace)),
        )
        report = run_report(load_trace(str(trace)))
        assert "certified fast path" in report
