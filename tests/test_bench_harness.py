"""Tests for the experiment registry and report generation."""

import pytest

from repro.bench import ExperimentResult, list_experiments, run_experiment
from repro.bench.report import generate_report


EXPECTED_IDS = {
    "fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12a", "fig12b", "sec4",
    "ablation_copyin", "ablation_baselines",
}


class TestRegistry:
    def test_every_paper_figure_registered(self):
        assert EXPECTED_IDS <= set(list_experiments())

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.bench.harness import register

        with pytest.raises(ValueError):
            register("fig01")(lambda quick: None)

    def test_quick_experiments_return_consistent_ids(self):
        for exp_id in ("fig01", "fig02"):
            result = run_experiment(exp_id, quick=True)
            assert result.exp_id == exp_id
            assert result.table
            assert result.expectation


class TestRendering:
    def test_render_contains_table_and_expectation(self):
        result = ExperimentResult("x", "Title", "a  b\n1  2", "it holds")
        out = result.render()
        assert "## x: Title" in out
        assert "it holds" in out
        assert "```" in out

    def test_report_selected_ids(self):
        report = generate_report(quick=True, ids=["fig01"])
        assert "fig01" in report
        assert "fig02" not in report

    def test_cli_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out

    def test_cli_single_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig01", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "worked example" in out

    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        target = tmp_path / "report.md"
        # Only one experiment would be slow; use the full report at quick
        # scale with output redirection.
        assert main(["--quick", "--output", str(target)]) == 0
        assert target.exists()
        text = target.read_text()
        for exp_id in EXPECTED_IDS:
            assert f"## {exp_id}:" in text


class TestJsonExport:
    def test_export_single_experiment(self, tmp_path):
        import json

        from repro.bench.export import export_experiments

        written = export_experiments(tmp_path, ids=["fig01"], quick=True)
        files = {p.name for p in written}
        assert files == {"fig01.json", "index.json"}
        payload = json.loads((tmp_path / "fig01.json").read_text())
        assert payload["id"] == "fig01"
        assert "rows" in payload["data"]
        assert payload["quick"] is True

    def test_index_manifest(self, tmp_path):
        import json

        from repro.bench.export import export_experiments

        export_experiments(tmp_path, ids=["fig01", "fig02"], quick=True)
        manifest = json.loads((tmp_path / "index.json").read_text())
        assert set(manifest) == {"fig01", "fig02"}
        assert manifest["fig01"]["file"] == "fig01.json"

    def test_data_is_json_round_trippable(self, tmp_path):
        import json

        from repro.bench.export import export_experiments

        (path, _) = export_experiments(tmp_path, ids=["fig04"], quick=True)
        payload = json.loads(path.read_text())
        assert "cumulative" in payload["data"]
        # All series values are plain floats after conversion.
        for series in payload["data"]["cumulative"].values():
            assert all(isinstance(v, float) for v in series)

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["fig01", "--quick", "--json", str(tmp_path)]) == 0
        assert (tmp_path / "fig01.json").exists()
