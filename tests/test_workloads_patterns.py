"""Tests for the access-pattern workload taxonomy."""

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.runner import parallelize
from repro.core.wavefront import wavefront_schedule
from repro.workloads.patterns import (
    gather_loop,
    pointer_chase_loop,
    scatter_loop,
    stencil_loop,
    transitive_update_loop,
)
from tests.conftest import assert_matches_sequential


class TestStencil:
    def test_every_boundary_fails(self):
        # certify="off": the certifier proves this stencil SEQUENTIAL and
        # would skip the speculative sequentialization under test.
        loop = stencil_loop(64, radius=1)
        res = parallelize(loop, 8, RuntimeConfig.nrd(certify="off"))
        assert res.n_stages == 8  # sequentialized at processor granularity
        assert_matches_sequential(res, loop)

    def test_certifier_routes_stencil_to_in_order_fast_path(self):
        loop = stencil_loop(64, radius=1)
        res = parallelize(loop, 8, RuntimeConfig.nrd())
        assert res.strategy == "certified-seq"
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            stencil_loop(16, radius=0)

    def test_ddg_is_a_chain_lattice(self):
        loop = stencil_loop(32, radius=2)
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        sched = wavefront_schedule(ddg.graph(), 32)
        assert sched.critical_path == 32  # distance-1 edges chain everything


class TestGather:
    def test_fully_parallel(self):
        loop = gather_loop(128, fan_in=4, seed=2)
        res = parallelize(loop, 8)
        assert res.n_stages == 1
        assert res.parallelism_ratio == 1.0
        assert_matches_sequential(res, loop)

    def test_deterministic(self):
        from repro.baselines.sequential import sequential_reference

        a = sequential_reference(gather_loop(64, seed=5))
        b = sequential_reference(gather_loop(64, seed=5))
        assert (a["OUT"] == b["OUT"]).all()


class TestScatter:
    def test_output_deps_absorbed(self):
        """Colliding scatter targets are output dependences only:
        last-value commit keeps the loop a one-stage doall."""
        loop = scatter_loop(128, n_targets=16, seed=3)
        res = parallelize(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_read_back_creates_flow_deps(self):
        loop = scatter_loop(128, n_targets=16, read_back=True, seed=3)
        res = parallelize(loop, 8, RuntimeConfig.nrd())
        assert res.n_restarts > 0
        assert_matches_sequential(res, loop)


class TestPointerChase:
    def test_fully_sequential_but_bounded_slowdown(self):
        """The R-LRPD guarantee on the worst case: near-sequential time,
        never a blow-up."""
        loop = pointer_chase_loop(128, seed=1)
        res = parallelize(loop, 8, RuntimeConfig.nrd(certify="off"))
        assert res.n_stages == 8
        assert res.total_time < 1.6 * res.sequential_work
        assert_matches_sequential(res, loop)

    def test_chain_critical_path(self):
        loop = pointer_chase_loop(48, seed=1)
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        sched = wavefront_schedule(ddg.graph(), 48)
        assert sched.critical_path == 48

    def test_inspector_agrees(self):
        from repro.baselines.inspector import run_inspector_executor

        loop = pointer_chase_loop(48, seed=1)
        res = run_inspector_executor(loop, 4)
        assert_matches_sequential(res, loop)


class TestForest:
    def test_shallow_critical_path(self):
        loop = transitive_update_loop(512, seed=4)
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
        sched = wavefront_schedule(ddg.graph(), 512)
        assert sched.critical_path < 64  # O(log n) depth, lots of slack

    def test_branching_flattens_tree(self):
        deep = transitive_update_loop(512, branching=1, seed=4, name="deep")
        shallow = transitive_update_loop(512, branching=4, seed=4, name="shallow")
        cp = {}
        for loop in (deep, shallow):
            ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
            cp[loop.name] = wavefront_schedule(ddg.graph(), 512).critical_path
        assert cp["shallow"] <= cp["deep"]

    def test_matches_sequential_under_all(self):
        for cfg in (RuntimeConfig.nrd(), RuntimeConfig.sw(window_size=32)):
            loop = transitive_update_loop(256, seed=4)
            assert_matches_sequential(parallelize(loop, 8, cfg), loop)

    def test_validation(self):
        with pytest.raises(ValueError):
            transitive_update_loop(16, branching=0)
