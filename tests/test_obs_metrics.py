"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`).

The registry's contract is what the fork backend's determinism rests on:
snapshots are sorted and JSON-ready, merging per-block snapshots in block
order reproduces a serial run's totals exactly, and a disabled registry
is free (shared null instruments, no allocation, empty snapshots).
"""

import pytest

from repro.config import RuntimeConfig
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    instrumentation_defaults,
    render_metrics,
    resolve_metrics_enabled,
    resolve_spans_enabled,
    use_instrumentation,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(41)
        assert reg.counter("c").value == 42

    def test_counter_is_create_or_return(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (4, 2, 9):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 15.0, 2, 9)
        assert h.mean == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestDisabledRegistry:
    def test_disabled_hands_out_shared_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        null = reg.counter("c")
        assert null is reg.gauge("g") is reg.histogram("h")
        null.inc(5)
        null.set(5)
        null.observe(5)
        assert null.value == 0 and null.count == 0

    def test_disabled_snapshot_is_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_merge_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.merge({"counters": {"c": 5}})
        assert reg.snapshot()["counters"] == {}

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled


class TestSnapshotAndMerge:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.counter("a.count").inc(1)
        reg.gauge("pool").set(4)
        reg.histogram("sizes").observe(8)
        return reg

    def test_snapshot_keys_are_sorted(self):
        snap = self._populated().snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]

    def test_snapshot_is_json_ready(self):
        import json

        json.dumps(self._populated().snapshot())

    def test_merge_reproduces_serial_totals(self):
        # Two "workers" each observe a share; merging their snapshots in
        # order must equal one registry that saw everything serially.
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        for share in ([3, 1], [7]):
            worker = MetricsRegistry()
            for v in share:
                serial.counter("c").inc(v)
                serial.gauge("g").set(v)
                serial.histogram("h").observe(v)
                worker.counter("c").inc(v)
                worker.gauge("g").set(v)
                worker.histogram("h").observe(v)
            merged.merge(worker.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_merge_skips_empty_histograms(self):
        reg = MetricsRegistry()
        reg.merge({"histograms": {"h": {"count": 0, "total": 0.0,
                                        "min": None, "max": None}}})
        assert reg.snapshot()["histograms"]["h"]["min"] is None

    def test_reset_clears_everything(self):
        reg = self._populated()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestResolution:
    def test_defaults_are_off(self):
        assert instrumentation_defaults() == (False, False)
        config = RuntimeConfig.nrd()
        assert not resolve_metrics_enabled(config)
        assert not resolve_spans_enabled(config)

    def test_explicit_config_wins(self):
        on = RuntimeConfig.nrd(metrics=True, spans=True)
        assert resolve_metrics_enabled(on) and resolve_spans_enabled(on)
        with use_instrumentation(metrics=True, spans=True):
            off = RuntimeConfig.nrd(metrics=False, spans=False)
            assert not resolve_metrics_enabled(off)
            assert not resolve_spans_enabled(off)

    def test_use_instrumentation_scopes_the_default(self):
        config = RuntimeConfig.nrd()
        with use_instrumentation(metrics=True, spans=True):
            assert resolve_metrics_enabled(config)
            assert resolve_spans_enabled(config)
        assert not resolve_metrics_enabled(config)
        assert not resolve_spans_enabled(config)

    def test_perfetto_path_implies_spans(self):
        config = RuntimeConfig.nrd(perfetto_path="/tmp/x.json")
        assert resolve_spans_enabled(config)
        assert not resolve_spans_enabled(
            RuntimeConfig.nrd(perfetto_path="/tmp/x.json", spans=False)
        )


class TestRender:
    def test_render_lists_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(5)
        out = render_metrics(reg.snapshot())
        for token in ("c", "counter", "g", "gauge", "h", "histogram", "n=1"):
            assert token in out


class TestEngineIntegration:
    def test_result_metrics_empty_when_disabled(self):
        from repro.core.runner import parallelize
        from repro.workloads.synthetic import fully_parallel_loop

        result = parallelize(fully_parallel_loop(32), 2, RuntimeConfig.nrd())
        assert result.metrics == {}

    def test_result_metrics_populated_when_enabled(self):
        from repro.core.runner import parallelize
        from repro.workloads.synthetic import fully_parallel_loop

        # certify="off": the speculative pipeline's counters are the target
        # (the certified fast path skips marking/commit wholesale).
        result = parallelize(
            fully_parallel_loop(32), 2,
            RuntimeConfig.nrd(metrics=True, certify="off"),
        )
        counters = result.metrics["counters"]
        assert counters["exec.blocks"] == 2
        assert counters["commit.elements"] == 32
        assert counters["shadow.marks"] >= 32

    def test_feedback_scheduler_counts_its_traffic(self):
        # The balancer outlives single runs, so its counters live in a
        # program-scoped registry, not the per-run result snapshot.
        from repro.core.runner import run_program
        from repro.sched.feedback import FeedbackBalancer

        balancer = FeedbackBalancer(metrics=MetricsRegistry())
        run_program(
            [_chain(48), _chain(48)], 2,
            RuntimeConfig.adaptive(feedback_balancing=True),
            balancer=balancer,
        )
        counters = balancer.metrics.snapshot()["counters"]
        assert counters["sched.feedback.recordings"] == 2
        assert counters["sched.feedback.predictions"] == 1
        assert counters["sched.feedback.iterations_measured"] >= 48


def _chain(n):
    from repro.workloads.synthetic import chain_loop, geometric_chain_targets

    return chain_loop(n, geometric_chain_targets(n, 0.5))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
