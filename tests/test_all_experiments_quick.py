"""Every registered experiment runs at quick scale and yields a sane result.

The per-figure benchmarks assert the paper shapes; this sweep guards the
harness itself -- no experiment may crash, return an empty table, or
produce data the JSON exporter cannot serialize.
"""

import json

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.export import _jsonable


@pytest.fixture(scope="module")
def all_results():
    return {exp_id: run_experiment(exp_id, quick=True) for exp_id in EXPERIMENTS}


def test_registry_is_populated(all_results):
    assert len(all_results) >= 25


def test_tables_are_rendered(all_results):
    for exp_id, result in all_results.items():
        assert result.table.strip(), f"{exp_id} rendered an empty table"
        assert len(result.table.splitlines()) >= 3, f"{exp_id} table too small"


def test_expectations_documented(all_results):
    for exp_id, result in all_results.items():
        assert len(result.expectation) > 40, (
            f"{exp_id} lacks a meaningful paper-expectation note"
        )


def test_data_serializable(all_results):
    for exp_id, result in all_results.items():
        payload = json.dumps(_jsonable(result.data))
        assert payload, exp_id


def test_ids_consistent(all_results):
    for exp_id, result in all_results.items():
        assert result.exp_id == exp_id
