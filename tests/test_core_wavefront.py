"""Tests for wavefront scheduling and execution."""

import networkx as nx
import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.errors import ScheduleError
from repro.workloads.synthetic import chain_loop, fully_parallel_loop
from repro.workloads.spice import SPICE_DECKS, make_dcdcmp15_loop
from tests.conftest import assert_matches_sequential

import dataclasses


def graph_of(n, edges):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


class TestScheduleConstruction:
    def test_no_edges_single_level(self):
        sched = wavefront_schedule(graph_of(8, []), 8)
        assert sched.critical_path == 1
        assert sched.levels[0] == tuple(range(8))

    def test_chain_is_fully_sequential(self):
        edges = [(i, i + 1) for i in range(7)]
        sched = wavefront_schedule(graph_of(8, edges), 8)
        assert sched.critical_path == 8
        assert all(len(level) == 1 for level in sched.levels)

    def test_longest_path_layering(self):
        # 0 -> 1 -> 3, 0 -> 3: node 3 must sit at depth 2, not 1.
        sched = wavefront_schedule(graph_of(4, [(0, 1), (1, 3), (0, 3)]), 4)
        levels = {i: k for k, level in enumerate(sched.levels) for i in level}
        assert levels[3] == 2
        assert levels[2] == 0  # untouched node at depth 0

    def test_average_parallelism(self):
        sched = wavefront_schedule(graph_of(8, [(0, 4)]), 8)
        assert sched.critical_path == 2
        assert sched.average_parallelism == 4.0
        assert sched.max_width() == 7

    def test_backward_edge_rejected(self):
        g = nx.DiGraph()
        g.add_edge(3, 1)
        with pytest.raises(ScheduleError):
            wavefront_schedule(g, 4)

    def test_out_of_range_edge_rejected(self):
        g = nx.DiGraph()
        g.add_edge(0, 10)
        with pytest.raises(ScheduleError):
            wavefront_schedule(g, 4)

    def test_validate_accepts_own_schedule(self):
        g = graph_of(16, [(0, 5), (5, 9), (2, 9)])
        sched = wavefront_schedule(g, 16)
        sched.validate(g)  # must not raise

    def test_validate_rejects_coverage_gap(self):
        from repro.core.wavefront import WavefrontSchedule

        bad = WavefrontSchedule(n_iterations=4, levels=((0, 1),))
        with pytest.raises(ScheduleError):
            bad.validate(graph_of(4, []))

    def test_validate_rejects_same_level_edge(self):
        from repro.core.wavefront import WavefrontSchedule

        bad = WavefrontSchedule(n_iterations=2, levels=((0, 1),))
        with pytest.raises(ScheduleError):
            bad.validate(graph_of(2, [(0, 1)]))


class TestExecution:
    def test_executes_correctly(self):
        loop = chain_loop(64, targets=[10, 20, 30])
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=16))
        sched = wavefront_schedule(ddg.graph(), 64)
        res = execute_wavefront(loop, sched, 4)
        assert_matches_sequential(res, loop)

    def test_stage_count_equals_critical_path(self):
        loop = chain_loop(32, targets=[16])
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        sched = wavefront_schedule(ddg.graph(), 32)
        res = execute_wavefront(loop, sched, 4)
        assert res.n_stages == sched.critical_path

    def test_no_test_overhead(self):
        from repro.machine.timeline import Category

        loop = fully_parallel_loop(32)
        sched = wavefront_schedule(graph_of(32, []), 32)
        res = execute_wavefront(loop, sched, 4)
        assert res.timeline.total_category(Category.MARK) == 0.0
        assert res.timeline.total_category(Category.COPY_IN) == 0.0

    def test_mismatched_schedule_rejected(self):
        loop = fully_parallel_loop(32)
        sched = wavefront_schedule(graph_of(16, []), 16)
        with pytest.raises(ScheduleError):
            execute_wavefront(loop, sched, 4)

    def test_speedup_bounded_by_parallelism(self):
        loop = chain_loop(64, targets=list(range(1, 64)))  # full chain
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        sched = wavefront_schedule(ddg.graph(), 64)
        res = execute_wavefront(loop, sched, 4)
        assert sched.critical_path == 64
        assert res.speedup <= 1.0


class TestSpiceLU:
    def test_adder_deck_shape(self):
        """The headline DCDCMP-15 claim: thousands of iterations, short
        critical path, wavefront speedup well beyond the plain R-LRPD."""
        deck = dataclasses.replace(SPICE_DECKS["adder.128"], lu_rows=430)
        loop = make_dcdcmp15_loop(deck)
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
        sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
        assert sched.critical_path <= loop.n_iterations // 20
        res = execute_wavefront(loop, sched, 8)
        assert_matches_sequential(res, loop)
        assert res.speedup > 2.0

    def test_schedule_validates_against_graph(self):
        deck = dataclasses.replace(SPICE_DECKS["adder.128"], lu_rows=215)
        loop = make_dcdcmp15_loop(deck)
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=32))
        graph = ddg.graph()
        sched = wavefront_schedule(graph, loop.n_iterations)
        sched.validate(graph)
