"""Unit tests for shared memory and private (speculative) views."""

import numpy as np
import pytest

from repro.machine.memory import (
    DensePrivateView,
    MemoryImage,
    SharedArray,
    SparsePrivateView,
    make_private_view,
)


class TestSharedArray:
    def test_copies_initial_data(self):
        src = np.arange(4.0)
        arr = SharedArray("A", src)
        src[0] = 99
        assert arr.data[0] == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            SharedArray("A", np.zeros((2, 2)))

    def test_len(self):
        assert len(SharedArray("A", np.zeros(7))) == 7


class TestMemoryImage:
    def test_lookup(self):
        mem = MemoryImage([SharedArray("A", np.zeros(3))])
        assert len(mem["A"]) == 3
        assert "A" in mem and "B" not in mem

    def test_unknown_name_lists_known(self):
        mem = MemoryImage([SharedArray("A", np.zeros(3))])
        with pytest.raises(KeyError, match="A"):
            mem["B"]

    def test_duplicate_rejected(self):
        mem = MemoryImage([SharedArray("A", np.zeros(3))])
        with pytest.raises(ValueError):
            mem.add(SharedArray("A", np.zeros(3)))

    def test_snapshot_restore_roundtrip(self):
        mem = MemoryImage([SharedArray("A", np.arange(4.0))])
        snap = mem.snapshot()
        mem["A"].data[:] = -1
        mem.restore(snap)
        assert np.array_equal(mem["A"].data, np.arange(4.0))

    def test_snapshot_is_deep(self):
        mem = MemoryImage([SharedArray("A", np.zeros(3))])
        snap = mem.snapshot()
        mem["A"].data[0] = 5
        assert snap["A"][0] == 0

    def test_equals(self):
        mem = MemoryImage([SharedArray("A", np.arange(3.0))])
        assert mem.equals({"A": np.arange(3.0)})
        assert not mem.equals({"A": np.zeros(3)})
        assert not mem.equals({})

    def test_allclose_tolerates_fp_noise(self):
        mem = MemoryImage([SharedArray("A", np.array([1.0]))])
        assert mem.allclose({"A": np.array([1.0 + 1e-13])})
        assert not mem.allclose({"A": np.array([1.1])})


@pytest.mark.parametrize("view_cls", [DensePrivateView, SparsePrivateView])
class TestPrivateViews:
    def make(self, view_cls, data=None):
        shared = SharedArray("A", data if data is not None else np.arange(8.0))
        return shared, view_cls(shared)

    def test_first_load_copies_in(self, view_cls):
        _, view = self.make(view_cls)
        value, copied = view.load(3)
        assert value == 3.0 and copied

    def test_second_load_is_local(self, view_cls):
        _, view = self.make(view_cls)
        view.load(3)
        _, copied = view.load(3)
        assert not copied

    def test_store_then_load_returns_private(self, view_cls):
        shared, view = self.make(view_cls)
        view.store(2, 42.0)
        value, copied = view.load(2)
        assert value == 42.0 and not copied
        assert shared.data[2] == 2.0  # shared untouched

    def test_load_after_store_not_copyin(self, view_cls):
        _, view = self.make(view_cls)
        view.store(0, 1.0)
        _, copied = view.load(0)
        assert not copied

    def test_written_items_last_value(self, view_cls):
        _, view = self.make(view_cls)
        view.store(1, 10.0)
        view.store(1, 20.0)
        view.store(5, 50.0)
        assert dict(view.written_items()) == {1: 20.0, 5: 50.0}

    def test_n_written_counts_distinct(self, view_cls):
        _, view = self.make(view_cls)
        view.store(1, 1.0)
        view.store(1, 2.0)
        assert view.n_written() == 1

    def test_reads_do_not_count_as_written(self, view_cls):
        _, view = self.make(view_cls)
        view.load(4)
        assert view.n_written() == 0
        assert dict(view.written_items()) == {}

    def test_reset_discards_everything(self, view_cls):
        shared, view = self.make(view_cls)
        view.store(0, 99.0)
        view.reset()
        assert view.n_written() == 0
        value, copied = view.load(0)
        assert value == 0.0 and copied

    def test_has_local(self, view_cls):
        _, view = self.make(view_cls)
        assert not view.has_local(2)
        view.load(2)
        assert view.has_local(2)

    def test_copy_in_sees_current_shared_value(self, view_cls):
        # Copy-in must read shared memory at access time, not at view
        # creation: this is how flow dependences from committed stages are
        # satisfied during re-execution.
        shared, view = self.make(view_cls)
        shared.data[6] = 66.0
        value, _ = view.load(6)
        assert value == 66.0


class TestViewSelection:
    def test_small_array_dense(self):
        shared = SharedArray("A", np.zeros(16))
        assert isinstance(make_private_view(shared), DensePrivateView)

    def test_forced_sparse(self):
        shared = SharedArray("A", np.zeros(16))
        assert isinstance(make_private_view(shared, sparse=True), SparsePrivateView)

    def test_forced_dense(self):
        shared = SharedArray("A", np.zeros(16))
        assert isinstance(make_private_view(shared, sparse=False), DensePrivateView)
