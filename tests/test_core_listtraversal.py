"""Tests for speculative linked-list traversal distribution."""

import dataclasses

import numpy as np
import pytest

from repro.core.listtraversal import (
    LinkedListLoop,
    run_list_traversal,
    walk_list,
)
from repro.errors import SpeculationError
from repro.loopir.loop import ArraySpec
from repro.workloads.spice import SPICE_DECKS, make_bjt_list_loop


def simple_list_loop(n=16, shuffle_seed=3, dep_positions=()):
    """Nodes in shuffled list order; node work writes OUT[node]; optional
    dependences between consecutive *positions*."""
    rng = np.random.default_rng(shuffle_seed)
    order = rng.permutation(n)
    nxt = np.full(n, -1.0)
    for a, b in zip(order, order[1:]):
        nxt[a] = float(b)
    deps = frozenset(dep_positions)

    def body(ctx, node, position):
        value = float(node)
        if position in deps and position > 0:
            prev_node = int(order[position - 1])
            value += ctx.load("OUT", prev_node)
        ctx.store("OUT", node, value + position)

    return (
        LinkedListLoop(
            name="list-demo",
            head=int(order[0]),
            next_array="NEXT",
            body=body,
            arrays=[
                ArraySpec("OUT", np.zeros(n), tested=True),
                ArraySpec("NEXT", nxt, tested=False),
            ],
        ),
        order,
    )


class TestWalkList:
    def test_collects_in_order(self):
        nxt = np.array([2.0, -1.0, 1.0])
        assert walk_list(nxt, 0, 10) == [0, 2, 1]

    def test_cycle_detected(self):
        nxt = np.array([1.0, 0.0])
        with pytest.raises(SpeculationError, match="cycles"):
            walk_list(nxt, 0, 10)

    def test_limit_enforced(self):
        nxt = np.array([1.0, 2.0, 3.0, -1.0])
        with pytest.raises(SpeculationError, match="maximum"):
            walk_list(nxt, 0, 2)

    def test_out_of_range_pointer(self):
        nxt = np.array([7.0])
        with pytest.raises(SpeculationError, match="outside"):
            walk_list(nxt, 0, 10)

    def test_empty_list(self):
        assert walk_list(np.array([-1.0]), -1, 10) == []


class TestTraversalRun:
    def test_visits_every_node_once(self):
        llloop, order = simple_list_loop(16)
        result = run_list_traversal(llloop, 4)
        assert sorted(result.nodes) == list(range(16))
        assert result.nodes == list(order)

    def test_state_matches_single_proc_run(self):
        llloop, _ = simple_list_loop(32)
        parallel = run_list_traversal(llloop, 8)
        serial_loop, _ = simple_list_loop(32)
        serial = run_list_traversal(serial_loop, 1)
        assert parallel.memory.equals(serial.memory.snapshot())

    def test_position_dependences_detected(self):
        # Position 9 reads position 8's output: with blocks of 4 over 4
        # procs the arc crosses a block boundary and forces a restart.
        llloop, _ = simple_list_loop(16, dep_positions=[8])
        result = run_list_traversal(llloop, 4)
        assert result.run.n_restarts >= 1
        serial_loop, _ = simple_list_loop(16, dep_positions=[8])
        serial = run_list_traversal(serial_loop, 1)
        assert result.memory.equals(serial.memory.snapshot())

    def test_distributed_traversal_cheaper_on_long_lists(self):
        # Short lists: the extra barrier dominates and the serial walk wins;
        # long lists: the distributed chase amortizes over the processors.
        long_loop, _ = simple_list_loop(4096)
        fast = run_list_traversal(long_loop, 8, distributed_traversal=True)
        long_loop2, _ = simple_list_loop(4096)
        slow = run_list_traversal(long_loop2, 8, distributed_traversal=False)
        assert fast.traversal_time < slow.traversal_time

        short_loop, _ = simple_list_loop(16)
        fast_short = run_list_traversal(short_loop, 8, distributed_traversal=True)
        short_loop2, _ = simple_list_loop(16)
        slow_short = run_list_traversal(short_loop2, 8, distributed_traversal=False)
        assert slow_short.traversal_time < fast_short.traversal_time

    def test_traversal_counted_in_speedup(self):
        llloop, _ = simple_list_loop(64)
        result = run_list_traversal(llloop, 8)
        assert result.total_time > result.run.total_time
        assert result.speedup < result.run.speedup

    def test_summary_fields(self):
        llloop, _ = simple_list_loop(8)
        result = run_list_traversal(llloop, 2)
        s = result.summary()
        assert s["nodes"] == 8
        assert s["traversal"] > 0

    def test_next_array_must_be_declared(self):
        with pytest.raises(ValueError):
            LinkedListLoop(
                name="bad", head=0, next_array="MISSING",
                body=lambda ctx, n, k: None,
                arrays=[ArraySpec("A", np.zeros(2))],
            )


class TestBjtListWorkload:
    def make_deck(self):
        return dataclasses.replace(
            SPICE_DECKS["adder.128"], devices=256, workspace=1 << 12
        )

    def test_single_stage_with_reductions(self):
        result = run_list_traversal(make_bjt_list_loop(self.make_deck()), 8)
        assert result.run.n_stages == 1
        assert len(result.nodes) == 256

    def test_matches_serial_traversal(self):
        par = run_list_traversal(make_bjt_list_loop(self.make_deck()), 8)
        ser = run_list_traversal(make_bjt_list_loop(self.make_deck()), 1)
        assert par.memory.allclose(ser.memory.snapshot())

    def test_speedup_despite_traversal(self):
        result = run_list_traversal(make_bjt_list_loop(self.make_deck()), 8)
        assert result.speedup > 4.0
