"""Unit tests for RNG streams and table formatting."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.tables import format_series, format_table


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "x").random(5)
        b = make_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = make_rng(7, "x").random(5)
        b = make_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1, "x").random(5)
        b = make_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_int_stream_components(self):
        a = make_rng(7, "x", 0).random(3)
        b = make_rng(7, "x", 1).random(3)
        assert not np.array_equal(a, b)

    def test_stream_name_hash_is_stable(self):
        # Regression guard: the FNV-1a fold must not change between runs
        # (python's hash() is salted; ours must not be).
        v = make_rng(0, "stable-check").integers(0, 1 << 30)
        assert v == make_rng(0, "stable-check").integers(0, 1 << 30)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]])
        assert "3.142" in out

    def test_tiny_float_uses_sig_figs(self):
        out = format_table(["x"], [[0.000123]])
        assert "0.000123" in out

    def test_nan_renders_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_bool_renders_yes_no(self):
        out = format_table(["x"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_column_per_series(self):
        out = format_series("p", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        header = out.splitlines()[0]
        assert "p" in header and "s1" in header and "s2" in header

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("p", [1, 2], {"s": [1]})

    def test_values_in_rows(self):
        out = format_series("p", [4], {"speedup": [3.5]})
        assert "3.5" in out
