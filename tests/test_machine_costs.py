"""Unit tests for the cost model."""

import math

import pytest

from repro.machine.costs import CostModel


class TestValidation:
    def test_defaults_valid(self):
        CostModel()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(omega=-1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            CostModel(sync=float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            CostModel(ell=float("inf"))

    def test_zero_costs_allowed(self):
        cm = CostModel(mark=0.0, sync=0.0)
        assert cm.mark == 0.0

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(AttributeError):
            cm.omega = 2.0

    def test_with_costs_returns_modified_copy(self):
        cm = CostModel()
        cm2 = cm.with_costs(omega=5.0)
        assert cm2.omega == 5.0
        assert cm.omega == 1.0


class TestAnalysisCost:
    def test_scales_with_refs(self):
        cm = CostModel()
        assert cm.analysis_cost(200, 8) == 2 * cm.analysis_cost(100, 8)

    def test_scales_with_log_procs(self):
        cm = CostModel()
        assert cm.analysis_cost(100, 16) == pytest.approx(
            cm.analysis_cost(100, 4) * 2
        )

    def test_single_proc_floor(self):
        cm = CostModel()
        # log2(1) = 0 would erase the cost; floor at 1.
        assert cm.analysis_cost(100, 1) == pytest.approx(
            cm.analysis_per_ref * 100
        )

    def test_zero_refs_zero_cost(self):
        assert CostModel().analysis_cost(0, 8) == 0.0

    def test_negative_refs_rejected(self):
        with pytest.raises(ValueError):
            CostModel().analysis_cost(-1, 8)


class TestRedistributionRule:
    """Eq. (4): redistribute while n >= p*s / (omega - ell)."""

    def test_large_remainder_redistributes(self):
        cm = CostModel(omega=1.0, ell=0.25, sync=4.0)
        threshold = 8 * 4.0 / 0.75
        assert cm.should_redistribute(int(math.ceil(threshold)) + 1, 8)

    def test_small_remainder_does_not(self):
        cm = CostModel(omega=1.0, ell=0.25, sync=4.0)
        threshold = 8 * 4.0 / 0.75
        assert not cm.should_redistribute(int(threshold) - 1, 8)

    def test_exact_threshold_redistributes(self):
        cm = CostModel(omega=1.0, ell=0.5, sync=1.0)
        # threshold = p * 1 / 0.5 = 2p
        assert cm.should_redistribute(16, 8)

    def test_omega_leq_ell_never_redistributes(self):
        cm = CostModel(omega=1.0, ell=1.0, sync=0.0)
        assert not cm.should_redistribute(10**9, 8)

    def test_free_sync_always_redistributes(self):
        cm = CostModel(omega=1.0, ell=0.0, sync=0.0)
        assert cm.should_redistribute(1, 8)
