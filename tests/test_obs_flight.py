"""The crash flight recorder (:mod:`repro.obs.flight`).

Ring-buffer behaviour, bundle write/read round-trip, the rendered
report, crash-dir resolution -- and the headline end-to-end scenario:
a fork worker SIGKILL'd mid-run whose SpeculationError leaves behind a
bundle that ``repro report --bundle`` renders.
"""

import json
import os
import pathlib

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.errors import SpeculationError
from repro.obs.flight import (
    ENV_CRASH_DIR,
    FlightRecorder,
    dump_bundle,
    load_bundle,
    render_bundle,
    resolve_crash_dir,
)
from repro.workloads.synthetic import chain_loop, geometric_chain_targets


class TestFlightRecorder:
    def test_rings_are_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.note_oplog({"event": f"e{i}"})
        assert [r["event"] for r in recorder.oplog_records] \
            == ["e6", "e7", "e8", "e9"]

    def test_emit_stores_event_dicts(self):
        from repro.obs.events import RunBegin

        recorder = FlightRecorder()
        recorder.emit(RunBegin(
            loop="x", strategy="nrd", n_procs=2, n_iterations=8,
        ))
        [event] = recorder.events
        assert event["event"] == "run_begin"
        assert event["loop"] == "x"

    def test_snapshot_returns_plain_lists(self):
        recorder = FlightRecorder()
        recorder.note_oplog({"event": "a"})
        recorder.note_resources({"t": 0.0, "rss_bytes": 1})
        snap = recorder.snapshot()
        assert snap["oplog"] == [{"event": "a"}]
        assert snap["resources"] == [{"t": 0.0, "rss_bytes": 1}]
        assert snap["events"] == []


class TestCrashDirResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_CRASH_DIR, raising=False)
        assert resolve_crash_dir(RuntimeConfig()) is None

    def test_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_CRASH_DIR, "/tmp/envdir")
        assert resolve_crash_dir(
            RuntimeConfig(crash_dir="/tmp/confdir")
        ) == "/tmp/confdir"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(ENV_CRASH_DIR, "/tmp/envdir")
        assert resolve_crash_dir(RuntimeConfig()) == "/tmp/envdir"


def _stocked_recorder():
    recorder = FlightRecorder(capacity=8)
    recorder.note_oplog({
        "t": 0.1, "component": "supervise", "severity": "warn",
        "event": "worker-died", "backend": "fork",
    })
    recorder.note_resources({
        "t": 0.2, "rss_bytes": 50_000_000, "worker_rss_bytes": 10_000_000,
        "shm_bytes": 0, "cpu_s": 1.5, "gil": "gil",
    })
    return recorder


class TestBundleRoundTrip:
    def test_dump_and_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAKE", "1")
        try:
            raise SpeculationError("boom: exceeded max_stages=2")
        except SpeculationError as exc:
            path = dump_bundle(
                _stocked_recorder(), str(tmp_path), error=exc,
                config=RuntimeConfig.adaptive(),
                state={"backend": "fork", "stage": 1},
            )
        assert path.startswith(str(tmp_path))
        bundle = load_bundle(path)
        assert bundle["manifest"]["error"]["type"] == "SpeculationError"
        assert "boom" in bundle["manifest"]["error"]["message"]
        assert bundle["manifest"]["state"] == {"backend": "fork", "stage": 1}
        assert bundle["manifest"]["counts"] == {
            "events": 0, "oplog": 1, "resources": 1,
        }
        assert bundle["config"]["strategy"] is not None
        assert bundle["env"]["REPRO_FAKE"] == "1"
        assert bundle["oplog"][0]["event"] == "worker-died"
        assert bundle["resources"][0]["rss_bytes"] == 50_000_000

    def test_colliding_bundle_names_get_suffixes(self, tmp_path):
        first = dump_bundle(_stocked_recorder(), str(tmp_path))
        second = dump_bundle(_stocked_recorder(), str(tmp_path))
        assert first != second
        assert os.path.isdir(first) and os.path.isdir(second)

    def test_dump_never_raises_on_unwritable_dir(self, tmp_path):
        # A crash dir that is a plain file: makedirs fails with an
        # OSError on every platform (chmod tricks don't work as root).
        target = tmp_path / "not-a-dir"
        target.write_text("")
        assert dump_bundle(_stocked_recorder(), str(target)) == ""

    def test_render_bundle_tables(self, tmp_path):
        try:
            raise SpeculationError("boom")
        except SpeculationError as exc:
            path = dump_bundle(
                _stocked_recorder(), str(tmp_path), error=exc,
                config=RuntimeConfig.adaptive(),
                state={"backend": "fork"},
            )
        text = render_bundle(path)
        assert "crash" in text
        assert "SpeculationError: boom" in text
        assert "worker-died" in text
        assert "peak rss (MB)" in text
        assert "50.0" in text
        assert "traceback" in text

    def test_load_bundle_rejects_non_directory(self, tmp_path):
        with pytest.raises(OSError):
            load_bundle(str(tmp_path / "nope"))


class TestCrashBundleEndToEnd:
    """A SIGKILL'd fork worker escalates to an uncaught SpeculationError;
    the run leaves a crash bundle that the CLI renders."""

    def _crash(self, crash_dir):
        from repro.faults.os_chaos import OsChaosPlan

        n = 96
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        with pytest.raises(SpeculationError, match="max_stages"):
            parallelize(loop, 4, RuntimeConfig.adaptive(
                backend="fork", backend_workers=4,
                os_chaos=OsChaosPlan.kill_workers(0, [1]),
                max_worker_respawns=0, max_stages=2,
                crash_dir=str(crash_dir),
            ))

    def test_sigkilled_worker_leaves_a_bundle(self, tmp_path):
        self._crash(tmp_path)
        bundles = [p for p in tmp_path.iterdir() if p.name.startswith("crash-")]
        assert len(bundles) == 1
        bundle = load_bundle(str(bundles[0]))
        manifest = bundle["manifest"]
        assert manifest["error"]["type"] == "SpeculationError"
        state = manifest["state"]
        assert state["backend"] == "serial"  # degraded from fork
        degradations = [
            r for r in bundle["oplog"] if r["event"] == "pool-degraded"
        ]
        assert degradations, "supervisor degradation missing from oplog tail"
        events = {r["event"] for r in bundle["oplog"]}
        assert "worker-died" in events or "worker-found-dead" in events
        assert "run-failed" in events
        # Deterministic tail made it in too.
        assert any(e["event"] == "run_begin" for e in bundle["events"])

    def test_cli_renders_the_bundle(self, tmp_path, capsys):
        from repro.cli import main

        self._crash(tmp_path)
        [bundle] = [p for p in tmp_path.iterdir() if p.name.startswith("crash-")]
        assert main(["report", "--bundle", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "SpeculationError" in out
        assert "pool-degraded" in out
        assert "traceback" in out

    def test_no_crash_dir_means_no_bundle(self, tmp_path, monkeypatch):
        from repro.faults.os_chaos import OsChaosPlan

        monkeypatch.delenv(ENV_CRASH_DIR, raising=False)
        monkeypatch.chdir(tmp_path)
        n = 96
        loop = chain_loop(n, geometric_chain_targets(n, 0.5))
        with pytest.raises(SpeculationError):
            parallelize(loop, 4, RuntimeConfig.adaptive(
                backend="fork", backend_workers=4,
                os_chaos=OsChaosPlan.kill_workers(0, [1]),
                max_worker_respawns=0, max_stages=2,
            ))
        assert not [p for p in tmp_path.iterdir() if "crash" in p.name]

    def test_cli_report_bundle_rejects_missing_dir(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", "--bundle", str(tmp_path / "nope")])
