"""Tests for the loop-certification utility."""

import numpy as np

from repro.config import RuntimeConfig
from repro.core.verify import Certificate, certify, default_strategies
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.workloads.synthetic import fully_parallel_loop, reduction_loop
from repro.workloads.patterns import scatter_loop


class TestCertify:
    def test_sound_loop_certified(self):
        cert = certify(lambda: fully_parallel_loop(64), 4)
        assert cert.ok
        # One verdict per strategy plus the untested-contract check.
        assert len(cert.verdicts) == len(default_strategies(4)) + 1
        assert all(v.ok for v in cert.verdicts)

    def test_best_strategy_reported(self):
        cert = certify(lambda: fully_parallel_loop(256), 4)
        best = cert.best()
        assert best is not None
        # Fully parallel: blocked beats per-strip-synchronized SW.
        assert best.label in ("NRD", "RD", "RD-adaptive")

    def test_misdeclared_untested_array_caught(self):
        """The certification use case: an array declared statically
        analyzable that actually carries cross-processor traffic."""

        def body(ctx, i):
            # Every processor rewrites element 0: cross-processor writes
            # on an untested array violate its contract.
            ctx.store("B", 0, float(i))

        cert = certify(
            lambda: SpeculativeLoop(
                "bad-decl", 32, body,
                arrays=[ArraySpec("B", np.zeros(4), tested=False)],
            ),
            4,
        )
        assert not cert.ok
        contract = next(v for v in cert.verdicts if v.label == "untested-contract")
        assert not contract.ok
        assert "declare it tested" in contract.detail

    def test_float_reduction_needs_tolerant(self):
        def factory():
            rng = np.random.default_rng(5)
            vals = rng.random(64)

            def body(ctx, i):
                ctx.update("H", i % 3, float(vals[i]))

            return SpeculativeLoop(
                "float-red", 64, body,
                arrays=[ArraySpec("H", np.zeros(3))],
                reductions={"H": ReductionOp.SUM},
            )

        strict = certify(factory, 4)
        tolerant = certify(factory, 4, tolerant=True)
        assert tolerant.ok
        # Strict bit-equality may or may not fail depending on fold order;
        # tolerant certification is the documented path for float reductions.
        assert isinstance(strict, Certificate)

    def test_custom_strategy_list(self):
        cert = certify(
            lambda: scatter_loop(64, n_targets=8, seed=1),
            4,
            strategies=[RuntimeConfig.nrd()],
        )
        assert len(cert.verdicts) == 2  # NRD + contract check
        assert cert.ok

    def test_cross_proc_untested_read_caught(self):
        def body(ctx, i):
            if i == 0:
                ctx.store("B", 0, 1.0)
            else:
                ctx.load("B", 0)  # read on every proc of proc 0's write

        cert = certify(
            lambda: SpeculativeLoop(
                "bad-read", 32, body,
                arrays=[ArraySpec("B", np.zeros(2), tested=False)],
            ),
            4,
        )
        contract = next(v for v in cert.verdicts if v.label == "untested-contract")
        assert not contract.ok

    def test_read_only_untested_passes_contract(self):
        def body(ctx, i):
            ctx.load("C", i % 3)

        cert = certify(
            lambda: SpeculativeLoop(
                "ro", 16, body,
                arrays=[ArraySpec("C", np.ones(3), tested=False)],
            ),
            4,
        )
        assert cert.ok

    def test_render_contains_verdict(self):
        cert = certify(lambda: fully_parallel_loop(32), 2)
        out = cert.render()
        assert "CERTIFIED" in out
        assert "NRD" in out

    def test_render_flags_failure(self):
        def body(ctx, i):
            ctx.store("B", 0, float(i))

        cert = certify(
            lambda: SpeculativeLoop(
                "bad", 16, body,
                arrays=[ArraySpec("B", np.zeros(2), tested=False)],
            ),
            4,
        )
        assert "FAILED" in cert.render()

    def test_reduction_loop_integer_exact(self):
        cert = certify(lambda: reduction_loop(64, n_bins=4, seed=1), 4)
        assert cert.ok
