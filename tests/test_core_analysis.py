"""Unit tests for the analysis phase: earliest sink, doall validity."""


from repro.config import TestCondition
from repro.core.analysis import DependenceArc, analyze_stage, doall_valid
from repro.shadow import DenseShadow


def shadow(reads=(), writes=(), updates=(), n=32):
    sh = DenseShadow(n)
    # Order matters for exposure: mark reads first (read-first pattern)
    for i in reads:
        sh.mark_read(i)
    for i in writes:
        sh.mark_write(i)
    for i in updates:
        sh.mark_update(i)
    return sh


def groups_of(*shadows):
    return [(proc, {"A": sh}) for proc, sh in enumerate(shadows)]


class TestAnalyzeStage:
    def test_no_conflicts_fully_parallel(self):
        analysis = analyze_stage(groups_of(shadow(writes=[0]), shadow(writes=[1])))
        assert analysis.fully_parallel
        assert analysis.earliest_sink_pos is None
        assert analysis.arcs == []

    def test_flow_arc_detected(self):
        # proc 0 writes element 5; proc 1 exposed-reads it.
        analysis = analyze_stage(
            groups_of(shadow(writes=[5]), shadow(reads=[5]))
        )
        assert analysis.earliest_sink_pos == 1
        assert analysis.arcs == [DependenceArc(0, 1, "A", 5)]

    def test_anti_direction_is_not_a_flow_arc(self):
        # proc 0 reads element 5; proc 1 writes it: anti dependence,
        # absorbed by copy-in privatization.
        analysis = analyze_stage(
            groups_of(shadow(reads=[5]), shadow(writes=[5]))
        )
        assert analysis.fully_parallel

    def test_output_dependence_ok(self):
        analysis = analyze_stage(
            groups_of(shadow(writes=[5]), shadow(writes=[5]))
        )
        assert analysis.fully_parallel

    def test_covered_read_is_safe(self):
        # proc 1 writes 5 then reads it: not an exposed read.
        sh1 = DenseShadow(32)
        sh1.mark_write(5)
        sh1.mark_read(5)
        analysis = analyze_stage(groups_of(shadow(writes=[5]), sh1))
        assert analysis.fully_parallel

    def test_earliest_sink_is_minimum(self):
        analysis = analyze_stage(
            groups_of(
                shadow(writes=[1, 2]),
                shadow(reads=[9]),      # clean
                shadow(reads=[2]),      # sink at pos 2
                shadow(reads=[1]),      # sink at pos 3
            )
        )
        assert analysis.earliest_sink_pos == 2
        assert len(analysis.arcs) == 2

    def test_first_group_cannot_be_sink(self):
        analysis = analyze_stage(
            groups_of(shadow(reads=[5]), shadow(writes=[5]), shadow(reads=[5]))
        )
        assert analysis.earliest_sink_pos == 2

    def test_arcs_attribute_earliest_writer(self):
        analysis = analyze_stage(
            groups_of(shadow(writes=[5]), shadow(writes=[5]), shadow(reads=[5]))
        )
        [arc] = analysis.arcs
        assert arc.src_pos == 0

    def test_distinct_refs_collected(self):
        analysis = analyze_stage(
            groups_of(shadow(reads=[1], writes=[2]), shadow(writes=[3]))
        )
        assert analysis.distinct_refs == [2, 1]

    def test_multiple_arrays_independent(self):
        g = [
            (0, {"A": shadow(writes=[5]), "B": shadow()}),
            (1, {"A": shadow(), "B": shadow(reads=[5])}),
        ]
        assert analyze_stage(g).fully_parallel

    def test_arc_requires_same_array(self):
        g = [
            (0, {"A": shadow(writes=[5]), "B": shadow()}),
            (1, {"A": shadow(reads=[5]), "B": shadow()}),
        ]
        assert analyze_stage(g).earliest_sink_pos == 1

    def test_empty_groups(self):
        assert analyze_stage([]).fully_parallel


class TestReductionMixing:
    def test_pure_reduction_is_parallel(self):
        analysis = analyze_stage(
            groups_of(shadow(updates=[3]), shadow(updates=[3]))
        )
        assert analysis.fully_parallel
        assert analysis.mixed_reduction_elements == 0

    def test_mixed_update_and_read_is_flow(self):
        # proc 0 reduction-updates element 3; proc 1 plainly reads it:
        # the element is not a valid reduction, updates become write+read.
        analysis = analyze_stage(
            groups_of(shadow(updates=[3]), shadow(reads=[3]))
        )
        assert analysis.earliest_sink_pos == 1
        assert analysis.mixed_reduction_elements == 1

    def test_mixed_update_after_write_is_flow(self):
        analysis = analyze_stage(
            groups_of(shadow(writes=[3]), shadow(updates=[3]))
        )
        assert analysis.earliest_sink_pos == 1

    def test_mixing_on_unrelated_element_harmless(self):
        analysis = analyze_stage(
            groups_of(shadow(updates=[3]), shadow(updates=[3], writes=[4]))
        )
        assert analysis.fully_parallel


class TestDoallValid:
    def test_parallel_passes_both(self):
        g = groups_of(shadow(writes=[0]), shadow(writes=[1]))
        assert doall_valid(g, TestCondition.COPY_IN)
        assert doall_valid(g, TestCondition.PRIVATIZATION)

    def test_flow_fails_both(self):
        g = groups_of(shadow(writes=[5]), shadow(reads=[5]))
        assert not doall_valid(g, TestCondition.COPY_IN)
        assert not doall_valid(g, TestCondition.PRIVATIZATION)

    def test_anti_passes_copyin_fails_privatization(self):
        """The Section 2 distinction: (Read*|(Write|Read)*) vs (Write|Read)*."""
        g = groups_of(shadow(reads=[5]), shadow(writes=[5]))
        assert doall_valid(g, TestCondition.COPY_IN)
        assert not doall_valid(g, TestCondition.PRIVATIZATION)

    def test_single_proc_rmw_passes_both(self):
        # One processor reads then writes its own element: sequential
        # within the processor, fine under either condition.
        g = groups_of(shadow(reads=[5], writes=[5]), shadow(writes=[6]))
        assert doall_valid(g, TestCondition.COPY_IN)
        assert doall_valid(g, TestCondition.PRIVATIZATION)

    def test_read_only_passes_both(self):
        g = groups_of(shadow(reads=[5]), shadow(reads=[5]))
        assert doall_valid(g, TestCondition.COPY_IN)
        assert doall_valid(g, TestCondition.PRIVATIZATION)

    def test_write_first_sharing_passes_both(self):
        # Both procs write element 5 before reading it: privatizable.
        sh0, sh1 = DenseShadow(32), DenseShadow(32)
        for sh in (sh0, sh1):
            sh.mark_write(5)
            sh.mark_read(5)
        g = [(0, {"A": sh0}), (1, {"A": sh1})]
        assert doall_valid(g, TestCondition.COPY_IN)
        assert doall_valid(g, TestCondition.PRIVATIZATION)

    def test_mixed_reduction_fails_both(self):
        g = groups_of(shadow(updates=[3]), shadow(reads=[3]))
        assert not doall_valid(g, TestCondition.COPY_IN)
        assert not doall_valid(g, TestCondition.PRIVATIZATION)
