"""Contract tests for the engine's structured stage-event stream.

Every engine run must narrate itself as a well-formed event sequence
(:func:`repro.obs.events.validate_events`), and the JSONL trace written by
:class:`~repro.obs.sinks.JsonlTraceSink` must round-trip losslessly back
into the typed events.
"""

import io
import json

import pytest

from repro.config import RuntimeConfig
from repro.core.engine import StageEngine, resolve_strategy
from repro.core.runner import parallelize
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan, random_plan
from repro.obs.events import (
    Commit,
    DependenceFound,
    MetricsSnapshot,
    Restore,
    RunBegin,
    RunEnd,
    SpanClosed,
    StageBegin,
    StageEnd,
    event_from_dict,
    validate_events,
)
from repro.obs.metrics import use_instrumentation
from repro.obs.sinks import CliProgressSink, JsonlTraceSink, RecordingSink
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    random_dependence_loop,
)
from repro.workloads.track_extend import ExtendDeck, make_extend_loop

P = 4


def _chain(n=96):
    return chain_loop(n, geometric_chain_targets(n, 0.5))


def _rand():
    return random_dependence_loop(128, density=0.08, max_distance=8, seed=3)


def _recorded(loop, config, **kwargs):
    rec = RecordingSink()
    result = parallelize(loop, P, config, sinks=[rec], **kwargs)
    return result, rec.events


def _kinds(events):
    return [e.kind for e in events]


class TestStreamGrammar:
    def test_clean_single_stage_run(self):
        result, events = _recorded(fully_parallel_loop(64), RuntimeConfig.nrd())
        validate_events(events)
        assert _kinds(events)[0] == "run_begin"
        assert _kinds(events)[-1] == "run_end"
        assert sum(k == "commit" for k in _kinds(events)) == 1
        assert not any(k == "restore" for k in _kinds(events))
        assert result.n_stages == sum(k == "stage_end" for k in _kinds(events))

    def test_multi_stage_run_pairs_commit_and_restore(self):
        result, events = _recorded(_chain(), RuntimeConfig.nrd())
        validate_events(events)
        assert result.n_restarts > 0
        failed = [e for e in events if isinstance(e, DependenceFound)
                  and e.earliest_sink_pos is not None]
        restores = [e for e in events if isinstance(e, Restore)]
        assert failed and restores
        # Every restore follows the failing stage's analysis verdict.
        assert {e.stage for e in restores} <= {e.stage for e in failed}

    def test_stage_ids_are_monotone_and_dense(self):
        _, events = _recorded(_chain(), RuntimeConfig.rd())
        validate_events(events)
        begins = [e.stage for e in events if isinstance(e, StageBegin)]
        assert begins == sorted(begins)
        assert begins == list(range(len(begins)))

    def test_every_strategy_emits_a_valid_stream(self):
        runs = [
            (_chain(), RuntimeConfig.nrd()),
            (_chain(), RuntimeConfig.adaptive()),
            (_rand(), RuntimeConfig.sw(window_size=16)),
            (make_extend_loop(ExtendDeck("ev", n=120, keep_prob=0.55,
                                         lookback_prob=0.01)),
             RuntimeConfig.rd()),
        ]
        for loop, config in runs:
            result, events = _recorded(loop, config)
            validate_events(events)
            assert events[0].strategy == result.strategy

    def test_iterwise_strategy_emits_a_valid_stream(self):
        rec = RecordingSink()
        result = StageEngine(
            _rand(), P, resolve_strategy("iterwise")(), RuntimeConfig.nrd(),
            sinks=[rec],
        ).run()
        validate_events(rec.events)
        assert result.n_stages == sum(
            1 for e in rec.events if isinstance(e, StageEnd)
        )

    def test_fault_run_reports_injections(self):
        result, events = _recorded(
            _chain(), RuntimeConfig.nrd(fault_plan=random_plan(11, n_procs=P))
        )
        validate_events(events)
        injected = [e for e in events if e.kind == "fault_injected"]
        assert len(injected) == result.faults_survived

    def test_zero_commit_stage_emits_retry_not_commit(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=0, after_fraction=0.25),
        ))
        result, events = _recorded(_rand(), RuntimeConfig.nrd(fault_plan=plan))
        validate_events(events)
        retried = {e.stage for e in events if e.kind == "retry"}
        committed = {e.stage for e in events if isinstance(e, Commit)}
        assert retried and not (retried & committed)
        assert result.retries == len([e for e in events if e.kind == "retry"])

    def test_premature_exit_recorded_in_run_end(self):
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        def body(ctx, i):
            ctx.work(1.0)
            ctx.store("A", i, float(i))
            if i == 41:
                ctx.exit_loop()

        loop = SpeculativeLoop(
            "ev_exit", 64, body, arrays=[ArraySpec("A", np.zeros(64))]
        )
        result, events = _recorded(loop, RuntimeConfig.adaptive())
        validate_events(events)
        end = events[-1]
        assert isinstance(end, RunEnd)
        assert end.exit_iteration == result.exit_iteration == 41

    def test_aggregating_sink_is_the_single_source_of_stages(self):
        result, events = _recorded(_chain(), RuntimeConfig.adaptive())
        from_stream = [e.result for e in events if isinstance(e, StageEnd)]
        assert [s is r for s, r in zip(from_stream, result.stages)]
        assert len(from_stream) == len(result.stages)


class TestObservabilityStream:
    """Span/metric events must obey the contract under both backends."""

    def _instrumented(self, backend):
        from repro.core.backend import use_backend

        with use_backend(backend), use_instrumentation(metrics=True, spans=True):
            return _recorded(_rand(), RuntimeConfig.adaptive())

    @pytest.mark.parametrize("backend", ["serial", "fork"])
    def test_instrumented_stream_is_valid(self, backend):
        result, events = self._instrumented(backend)
        validate_events(events)
        spans = [e for e in events if isinstance(e, SpanClosed)]
        snaps = [e for e in events if isinstance(e, MetricsSnapshot)]
        assert {s.cat for s in spans} >= {"run", "stage", "phase", "block"}
        # One cumulative snapshot per stage, plus the run-scope one.
        assert len(snaps) == result.n_stages + 1
        assert snaps[-1].scope == "run" and snaps[-1].stage is None
        assert result.metrics["counters"] == snaps[-1].counters

    @pytest.mark.parametrize("backend", ["serial", "fork"])
    def test_block_spans_interleave_in_block_order(self, backend):
        _, events = self._instrumented(backend)
        for stage in {e.stage for e in events if isinstance(e, StageBegin)}:
            in_stage = [
                e for e in events
                if getattr(e, "stage", None) == stage
                and (e.kind == "block_executed"
                     or (isinstance(e, SpanClosed) and e.cat == "block"))
            ]
            # Each BlockExecuted is immediately shadowed by its block span,
            # on the same processor, in schedule (block) order.
            kinds = [e.kind for e in in_stage]
            assert kinds == ["block_executed", "span"] * (len(in_stage) // 2)
            assert [e.proc for e in in_stage[0::2]] == [
                e.proc for e in in_stage[1::2]
            ]

    def test_serial_and_fork_metrics_are_identical(self):
        from repro.core.backend import use_backend

        snapshots = {}
        for backend in ("serial", "fork"):
            with use_backend(backend), use_instrumentation(metrics=True):
                result = parallelize(_rand(), P, RuntimeConfig.adaptive())
            snapshots[backend] = result.metrics
        assert snapshots["serial"] == snapshots["fork"]
        assert snapshots["serial"]["counters"]["shadow.marks"] > 0

    def test_run_scoped_observability_event_legal_anywhere(self):
        span = SpanClosed(name="run", cat="run", stage=None, proc=None,
                          host_start=0.0, host_dur=1.0,
                          virt_start=0.0, virt_dur=1.0)
        run = TestValidateEvents.RUN
        end = TestValidateEvents.END
        validate_events([run, span, end])

    def test_stage_scoped_span_outside_its_stage_rejected(self):
        span = SpanClosed(name="execute", cat="phase", stage=2, proc=None,
                          host_start=0.0, host_dur=1.0,
                          virt_start=0.0, virt_dur=1.0)
        with pytest.raises(ValueError, match="carries stage"):
            validate_events([TestValidateEvents.RUN, span, TestValidateEvents.END])

    def test_observability_events_round_trip(self):
        _, events = self._instrumented("serial")
        decoded = [event_from_dict(json.loads(json.dumps(e.to_dict())))
                   for e in events]
        assert [e.to_dict() for e in decoded] == [e.to_dict() for e in events]


class TestPartialTraceFlush:
    """A crashed run must still leave a readable (partial) JSONL trace."""

    def test_mid_run_exception_flushes_trace(self, tmp_path):
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        def body(ctx, i):
            if i == 37:
                raise RuntimeError("boom at 37")
            ctx.work(1.0)
            ctx.store("A", i, float(i))

        loop = SpeculativeLoop(
            "ev_crash", 64, body, arrays=[ArraySpec("A", np.zeros(64))]
        )
        path = tmp_path / "partial.jsonl"
        with pytest.raises(RuntimeError, match="boom at 37"):
            parallelize(loop, P, RuntimeConfig.nrd(trace_path=str(path)))
        lines = path.read_text().strip().splitlines()
        decoded = [event_from_dict(json.loads(line)) for line in lines]
        assert decoded, "crashed run left an empty trace"
        assert decoded[0].kind == "run_begin"
        assert any(e.kind == "stage_begin" for e in decoded)
        assert decoded[-1].kind != "run_end"


class TestJsonlRoundTrip:
    def test_trace_path_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result, events = _recorded(
            _chain(), RuntimeConfig.nrd(trace_path=str(path))
        )
        lines = path.read_text().strip().splitlines()
        decoded = [event_from_dict(json.loads(line)) for line in lines]
        validate_events(decoded)
        assert [e.to_dict() for e in decoded] == [e.to_dict() for e in events]
        # StageEnd payloads rebuild the exact per-stage results.
        rebuilt = [e.result for e in decoded if isinstance(e, StageEnd)]
        assert [r.committed_iterations for r in rebuilt] == [
            s.committed_iterations for s in result.stages
        ]
        assert [r.breakdown for r in rebuilt] == [s.breakdown for s in result.stages]

    def test_borrowed_stream_sink(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        _result, _ = _recorded(fully_parallel_loop(32), RuntimeConfig.nrd())
        rec = RecordingSink()
        parallelize(fully_parallel_loop(32), P, RuntimeConfig.nrd(),
                    sinks=[rec, sink])
        sink.close()  # flushes, must not close the borrowed stream
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == len(rec.events)
        validate_events([event_from_dict(json.loads(line)) for line in lines])

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"event": "nope"})


class TestValidateEvents:
    RUN = RunBegin(loop="l", strategy="s", n_procs=2, n_iterations=4)
    END = RunEnd(loop="l", strategy="s", stages=1, restarts=0,
                 total_time=1.0, sequential_work=1.0)

    def _stage(self, i):
        return StageBegin(stage=i, blocks=[], remaining=4, degraded=False)

    def _stage_end(self, i):
        import repro.core.results as results

        from repro.obs.events import stage_result_from_dict

        return StageEnd(stage=i, result=stage_result_from_dict({
            "index": i, "blocks": [], "failed": False,
            "earliest_sink_pos": None, "committed_iterations": 0,
            "remaining_after": 0, "committed_work": 0.0, "n_arcs": 0,
            "committed_elements": 0, "restored_elements": 0,
            "redistributed_iterations": 0, "span": 0.0,
            "migration_distance": 0.0, "breakdown": {},
            "faulted_procs": [], "degraded": False,
        }))

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_events([])

    def test_missing_brackets_rejected(self):
        with pytest.raises(ValueError, match="bracketed"):
            validate_events([self._stage(0), self._stage_end(0)])

    def test_nested_stage_rejected(self):
        with pytest.raises(ValueError, match="nested"):
            validate_events(
                [self.RUN, self._stage(0), self._stage(1), self.END]
            )

    def test_unpaired_stage_end_rejected(self):
        with pytest.raises(ValueError, match="unpaired"):
            validate_events([self.RUN, self._stage_end(0), self.END])

    def test_non_monotone_stage_ids_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            validate_events([
                self.RUN, self._stage(1), self._stage_end(1),
                self._stage(0), self._stage_end(0), self.END,
            ])

    def test_in_stage_event_outside_stage_rejected(self):
        event = DependenceFound(stage=0, earliest_sink_pos=None, n_arcs=0)
        with pytest.raises(ValueError, match="outside any stage"):
            validate_events([self.RUN, event, self.END])

    def test_in_stage_event_with_wrong_id_rejected(self):
        event = DependenceFound(stage=3, earliest_sink_pos=None, n_arcs=0)
        with pytest.raises(ValueError, match="carries stage"):
            validate_events(
                [self.RUN, self._stage(0), event, self._stage_end(0), self.END]
            )

    def test_commit_and_retry_cannot_share_a_stage(self):
        from repro.obs.events import Retry

        commit = Commit(stage=0, iterations=1, elements=1, work=1.0,
                        committed_upto=1)
        retry = Retry(stage=0, streak=1)
        with pytest.raises(ValueError, match="both committed and retried"):
            validate_events([
                self.RUN, self._stage(0), commit, retry,
                self._stage_end(0), self.END,
            ])

    def test_dangling_stage_rejected(self):
        with pytest.raises(ValueError, match="never ended"):
            validate_events([self.RUN, self._stage(0), self.END])


class TestCliProgressSink:
    def test_narrates_stages_and_summary(self):
        buf = io.StringIO()
        parallelize(_chain(), P, RuntimeConfig.nrd(),
                    sinks=[CliProgressSink(buf)])
        out = buf.getvalue()
        assert "stage 0:" in out
        assert "done:" in out and "speedup" in out

    def test_zero_time_run_prints_na_not_fake_speedup(self):
        buf = io.StringIO()
        sink = CliProgressSink(buf)
        sink.emit(RunEnd(loop="l", strategy="s", stages=0, restarts=0,
                         total_time=0.0, sequential_work=0.0))
        out = buf.getvalue()
        assert "speedup n/a" in out
        assert "1.00x" not in out


class TestFaultSupportGuard:
    def test_doall_baseline_rejects_fault_plan(self):
        from repro.core.lrpd import run_doall_lrpd

        config = RuntimeConfig.nrd(fault_plan=random_plan(1, n_procs=P))
        with pytest.raises(ConfigurationError, match="fault injection"):
            run_doall_lrpd(fully_parallel_loop(16), P, config)

    def test_doall_baseline_rejects_self_check(self):
        from repro.core.lrpd import run_doall_lrpd

        with pytest.raises(ConfigurationError, match="self-check"):
            run_doall_lrpd(fully_parallel_loop(16), P,
                           RuntimeConfig.nrd(self_check=True))

    def test_ddg_extraction_rejects_fault_plan(self):
        from repro.core.ddg import extract_ddg

        config = RuntimeConfig.sw(
            window_size=8, fault_plan=random_plan(1, n_procs=P)
        )
        with pytest.raises(ConfigurationError, match="fault injection"):
            extract_ddg(_rand(), P, config)
