"""Tests for the machine topology and distance-aware redistribution."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.machine.machine import Machine
from repro.machine.timeline import Category
from repro.machine.topology import Topology
from repro.workloads.synthetic import chain_loop, geometric_chain_targets
from tests.conftest import assert_matches_sequential


class TestTopology:
    def test_flat_is_free(self):
        topo = Topology.flat(4)
        assert topo.migration_multiplier(0, 3) == 1.0
        assert topo.distance(0, 3) == 0.0

    def test_ring_distances(self):
        topo = Topology.ring(8)
        assert topo.distance(0, 1) == 1.0
        assert topo.distance(0, 4) == 4.0
        assert topo.distance(0, 7) == 1.0  # wraps around

    def test_numa_distances(self):
        topo = Topology.numa(8, nodes=2)
        assert topo.distance(0, 3) == 0.0  # same node
        assert topo.distance(0, 4) == 1.0  # across nodes
        assert topo.distance(5, 7) == 0.0

    def test_migration_multiplier(self):
        topo = Topology.ring(4, remote_factor=0.5)
        assert topo.migration_multiplier(0, 2) == 1.0 + 0.5 * 2.0
        assert topo.migration_multiplier(1, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(np.ones((2, 3)))
        with pytest.raises(ValueError):
            Topology(np.array([[1.0, 0.0], [0.0, 0.0]]))  # self-distance
        with pytest.raises(ValueError):
            Topology(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 2)), remote_factor=-1.0)
        with pytest.raises(ValueError):
            Topology.numa(4, nodes=0)

    def test_machine_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            Machine(8, topology=Topology.flat(4))


class TestDistanceAwareRedistribution:
    def make_loop(self, n=256):
        return chain_loop(n, geometric_chain_targets(n, 0.5))

    def test_still_correct(self):
        loop = self.make_loop()
        res = run_blocked(
            loop, 8, RuntimeConfig.rd(), topology=Topology.ring(8, 1.0)
        )
        assert_matches_sequential(res, loop)

    def test_migration_distance_recorded(self):
        res = run_blocked(
            self.make_loop(), 8, RuntimeConfig.rd(),
            topology=Topology.ring(8, 1.0),
        )
        assert any(s.migration_distance > 0 for s in res.stages)

    def test_flat_topology_distance_zero(self):
        res = run_blocked(
            self.make_loop(), 8, RuntimeConfig.rd(), topology=Topology.flat(8)
        )
        assert all(s.migration_distance == 0 for s in res.stages)

    def test_remote_machine_pays_more(self):
        near = run_blocked(
            self.make_loop(), 8, RuntimeConfig.rd(), topology=Topology.flat(8)
        )
        far = run_blocked(
            self.make_loop(), 8, RuntimeConfig.rd(),
            topology=Topology.ring(8, remote_factor=2.0),
        )
        assert far.timeline.charged_category(Category.REDISTRIBUTION) > (
            near.timeline.charged_category(Category.REDISTRIBUTION)
        )
        assert far.total_time > near.total_time

    def test_nrd_never_migrates(self):
        res = run_blocked(
            self.make_loop(), 8, RuntimeConfig.nrd(),
            topology=Topology.ring(8, 2.0),
        )
        assert all(s.migration_distance == 0 for s in res.stages)
        assert res.timeline.charged_category(Category.REDISTRIBUTION) == 0.0

    def test_first_stage_is_first_touch(self):
        """Stage 0 assigns owners without migration cost (the paper's
        'initial speculative run is assumed not to incur a redistribution
        overhead')."""
        res = run_blocked(
            self.make_loop(), 8, RuntimeConfig.rd(),
            topology=Topology.ring(8, 1.0),
        )
        assert res.stages[0].redistributed_iterations == 0
        assert res.stages[0].migration_distance == 0.0
