"""Unit tests for fault plans, the chaos generator and the injector."""

import numpy as np
import pytest

from repro.faults import (
    ANY_PROC,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    random_plan,
)
from repro.machine.memory import SharedArray, make_private_view


class TestFaultEvent:
    def test_defaults(self):
        ev = FaultEvent(FaultKind.FAIL_STOP, stage=2, proc=1)
        assert not ev.permanent
        assert ev.after_fraction == 0.5

    def test_negative_stage_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            FaultEvent(FaultKind.STRAGGLER, stage=-1, proc=0)

    def test_processor_fault_needs_proc(self):
        with pytest.raises(ValueError, match="processor"):
            FaultEvent(FaultKind.FAIL_STOP, stage=0)

    def test_checkpoint_fault_is_machine_wide(self):
        with pytest.raises(ValueError, match="machine-wide"):
            FaultEvent(FaultKind.CHECKPOINT, stage=0, proc=3)
        assert FaultEvent(FaultKind.CHECKPOINT, stage=0).proc == ANY_PROC

    def test_after_fraction_bounds(self):
        with pytest.raises(ValueError, match="after_fraction"):
            FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=0, after_fraction=1.0)

    def test_zero_magnitude_rejected(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=0, magnitude=0.0)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=0.5)


class TestFaultPlan:
    def test_lookups(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.FAIL_STOP, stage=1, proc=2),
                FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=2.0),
                FaultEvent(FaultKind.CHECKPOINT, stage=3),
            )
        )
        assert plan.fail_stop(1, 2) is not None
        assert plan.fail_stop(1, 3) is None
        assert plan.fail_stop(0, 2) is None
        assert plan.straggler(0, 0).slowdown == 2.0
        assert plan.checkpoint_fault(3) is not None
        assert plan.checkpoint_fault(2) is None
        assert len(plan) == 3 and bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()

    def test_first_event_wins_on_duplicates(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=2.0),
                FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=9.0),
            )
        )
        assert plan.straggler(0, 0).slowdown == 2.0

    def test_describe_mentions_every_event(self):
        plan = random_plan(7, n_procs=4, n_stages=16)
        text = plan.describe()
        assert "seed=7" in text
        assert text.count("\n") == len(plan)


class TestRandomPlan:
    def test_deterministic_for_seed(self):
        assert random_plan(11, n_procs=8) == random_plan(11, n_procs=8)

    def test_different_seeds_differ(self):
        a = random_plan(1, n_procs=8, fail_stop_rate=0.3)
        b = random_plan(2, n_procs=8, fail_stop_rate=0.3)
        assert a.events != b.events

    def test_rate_zero_yields_empty_plan(self):
        plan = random_plan(
            5, n_procs=8,
            fail_stop_rate=0.0, corrupt_rate=0.0,
            straggler_rate=0.0, checkpoint_rate=0.0,
        )
        assert len(plan) == 0

    def test_rate_one_fires_everywhere(self):
        plan = random_plan(
            5, n_procs=2, n_stages=4,
            fail_stop_rate=1.0, checkpoint_rate=1.0,
        )
        fail_stops = [
            ev for ev in plan.events if ev.kind is FaultKind.FAIL_STOP
        ]
        assert len(fail_stops) == 8  # every (stage, proc) cell
        assert sum(
            1 for ev in plan.events if ev.kind is FaultKind.CHECKPOINT
        ) == 4

    def test_permanent_deaths_keep_one_survivor(self):
        plan = random_plan(
            3, n_procs=4, n_stages=32,
            fail_stop_rate=1.0, permanent_rate=1.0,
        )
        permanent = [ev for ev in plan.events if ev.permanent]
        assert len(permanent) == 3  # n_procs - 1

    def test_dead_cell_cannot_also_straggle(self):
        plan = random_plan(
            9, n_procs=4, n_stages=32,
            fail_stop_rate=1.0, straggler_rate=1.0, corrupt_rate=1.0,
        )
        cells = {(ev.stage, ev.proc) for ev in plan.events
                 if ev.kind is FaultKind.FAIL_STOP}
        for ev in plan.events:
            if ev.kind in (FaultKind.STRAGGLER, FaultKind.CORRUPT_WRITE):
                assert (ev.stage, ev.proc) not in cells

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="corrupt_rate"):
            random_plan(0, n_procs=4, corrupt_rate=1.5)

    def test_no_procs_rejected(self):
        with pytest.raises(ValueError, match="processor"):
            random_plan(0, n_procs=0)


class _FakeState:
    """Just enough ProcessorState surface for FaultInjector.corrupt."""

    def __init__(self, views):
        self.views = views


class TestFaultInjector:
    def test_slowdown_defaults_to_one(self):
        inj = FaultInjector(FaultPlan())
        assert inj.slowdown(0, 0) == 1.0
        assert inj.total_injected == 0

    def test_fail_stop_point_boundaries(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=1,
                       after_fraction=0.0),
            FaultEvent(FaultKind.FAIL_STOP, stage=1, proc=1,
                       after_fraction=0.99, permanent=True),
        ))
        inj = FaultInjector(plan)
        assert inj.fail_stop_point(0, 1, 10) == (0, False)
        # Death is strictly before the block's end: always loses work.
        assert inj.fail_stop_point(1, 1, 10) == (9, True)
        assert inj.fail_stop_point(0, 0, 10) is None

    def test_events_counted_once(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.STRAGGLER, stage=0, proc=0, slowdown=3.0),
        ))
        inj = FaultInjector(plan)
        inj.slowdown(0, 0)
        inj.slowdown(0, 0)
        assert inj.injected[FaultKind.STRAGGLER] == 1
        assert inj.counts() == {"straggler": 1}

    def test_dead_proc_does_not_straggle(self):
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.STRAGGLER, stage=0, proc=2, slowdown=3.0),
        ))
        inj = FaultInjector(plan)
        inj.mark_dead(2)
        assert inj.slowdown(0, 2) == 1.0
        assert inj.alive([0, 1, 2, 3]) == [0, 1, 3]

    def test_corrupt_perturbs_first_written_value(self):
        shared = SharedArray("A", np.zeros(8))
        view = make_private_view(shared, sparse=False)
        view.store(3, 5.0)
        state = _FakeState({"A": view})
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=0,
                       magnitude=2.5),
        ))
        inj = FaultInjector(plan)
        assert inj.corrupt(0, 0, state) is not None
        assert view.load(3)[0] == 7.5
        assert inj.counts() == {"corrupt-write": 1}

    def test_corrupt_is_vacuous_without_writes(self):
        shared = SharedArray("A", np.zeros(8))
        state = _FakeState({"A": make_private_view(shared, sparse=False)})
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=0),
        ))
        inj = FaultInjector(plan)
        assert inj.corrupt(0, 0, state) is None
        assert inj.total_injected == 0
