"""Tests for the persistent TRACK simulation."""

import pytest

from repro.config import RuntimeConfig
from repro.workloads.track_sim import TrackSimConfig, TrackSimulation


class TestBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrackSimConfig(max_tracks=10, initial_tracks=10)
        with pytest.raises(ValueError):
            TrackSimConfig(confirm_prob=1.5)

    def test_tracks_grow_over_steps(self):
        sim = TrackSimulation(TrackSimConfig(max_tracks=1024, initial_tracks=16))
        start = sim.n_tracks
        sim.step(4)
        sim.step(4)
        assert sim.n_tracks > start

    def test_three_loops_per_step(self):
        sim = TrackSimulation(TrackSimConfig(max_tracks=1024))
        runs = sim.step(4)
        assert len(runs) == 3
        names = [r.loop_name for r in runs]
        assert any("extend" in n for n in names)
        assert any("nlfilt" in n for n in names)
        assert any("fptrak" in n for n in names)

    def test_capacity_respected(self):
        sim = TrackSimulation(
            TrackSimConfig(max_tracks=80, initial_tracks=16,
                           detections_per_step=64)
        )
        for _ in range(6):
            sim.step(2)
        assert sim.n_tracks < 80


class TestCrossStepSoundness:
    """The compounding-state oracle: a p=8 simulation must match a p=1 twin
    bit for bit after every step."""

    @pytest.mark.parametrize("config", [
        RuntimeConfig.nrd(),
        RuntimeConfig.adaptive(),
    ], ids=lambda c: c.label())
    def test_matches_single_proc_twin(self, config):
        cfg = TrackSimConfig(max_tracks=1024, initial_tracks=24,
                             detections_per_step=48, smooth_prob=0.08)
        parallel = TrackSimulation(cfg)
        twin = TrackSimulation(cfg)
        for _ in range(4):
            parallel.step(8, config)
            twin.step(1, config)
            assert parallel.n_tracks == twin.n_tracks
            assert parallel.memory.equals(twin.snapshot())

    def test_restarts_occur_and_do_not_corrupt(self):
        cfg = TrackSimConfig(max_tracks=2048, initial_tracks=256,
                             detections_per_step=64, smooth_prob=0.2,
                             smooth_distance=12)
        parallel = TrackSimulation(cfg)
        twin = TrackSimulation(cfg)
        program = parallel.run(3, 8)
        twin.run(3, 1)
        assert program.n_restarts > 0  # the smoothing deps really fired
        assert parallel.memory.equals(twin.snapshot())


class TestProgramAggregation:
    def test_program_result_covers_all_loops(self):
        sim = TrackSimulation(TrackSimConfig(max_tracks=1024))
        program = sim.run(3, 4)
        assert program.n_instantiations == 9  # 3 loops x 3 steps
        assert 0.0 < program.parallelism_ratio <= 1.0
        assert program.speedup > 1.0

    def test_deterministic(self):
        a = TrackSimulation(TrackSimConfig(max_tracks=512)).run(2, 4)
        b = TrackSimulation(TrackSimConfig(max_tracks=512)).run(2, 4)
        assert a.total_time == b.total_time
        assert a.n_restarts == b.n_restarts
