"""Unit tests for the Machine facade."""

import numpy as np
import pytest

from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage, SharedArray
from repro.machine.timeline import Category


class TestConstruction:
    def test_defaults(self):
        m = Machine(4)
        assert m.n_procs == 4
        assert isinstance(m.costs, CostModel)
        assert m.memory.names() == []
        assert m.topology is None

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_custom_memory(self):
        mem = MemoryImage([SharedArray("A", np.zeros(3))])
        m = Machine(2, memory=mem)
        assert "A" in m.memory

    def test_add_array(self):
        m = Machine(2)
        m.add_array(SharedArray("X", np.zeros(2)))
        assert "X" in m.memory


class TestCharging:
    def test_charge_requires_stage(self):
        m = Machine(2)
        with pytest.raises(RuntimeError):
            m.charge(0, Category.WORK, 1.0)

    def test_charge_to_proc(self):
        m = Machine(2)
        m.begin_stage()
        m.charge(1, Category.WORK, 3.0)
        assert m.timeline.current.proc_time(1) == 3.0

    def test_zero_charge_is_noop(self):
        m = Machine(2)
        m.begin_stage()
        m.charge(0, Category.WORK, 0.0)
        assert m.timeline.current.span() == 0.0

    def test_barrier_charges_sync(self):
        costs = CostModel(sync=7.0)
        m = Machine(2, costs=costs)
        m.begin_stage()
        m.barrier()
        assert m.timeline.current.category_total(Category.SYNC) == 7.0
        assert m.timeline.current.span() == 7.0  # globally serialized

    def test_charge_global_serializes(self):
        m = Machine(2)
        m.begin_stage()
        m.charge(0, Category.WORK, 5.0)
        m.charge(1, Category.WORK, 5.0)
        m.charge_global(Category.ANALYSIS, 2.0)
        assert m.timeline.current.span() == 7.0  # max(5,5) + 2


class TestFreshTimeline:
    def test_swaps_and_returns_old(self):
        m = Machine(2)
        m.begin_stage()
        m.charge(0, Category.WORK, 1.0)
        old = m.fresh_timeline()
        assert old.total_time() == 1.0
        assert m.timeline.total_time() == 0.0
        assert m.timeline.n_stages() == 0
