"""Tests for the memory-footprint estimates."""

import numpy as np
import pytest

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.model.footprint import (
    DENSE_SHADOW_BYTES_PER_ELEM,
    INSPECTOR_BYTES_PER_REF,
    estimate_footprints,
)
from repro.workloads.synthetic import fully_parallel_loop


class TestEstimates:
    def test_dense_shadow_scales_with_array_and_procs(self):
        report = estimate_footprints(fully_parallel_loop(128), 4)
        assert report.procwise_bytes == pytest.approx(
            4 * 128 * DENSE_SHADOW_BYTES_PER_ELEM
        )

    def test_inspector_scales_with_trace(self):
        report = estimate_footprints(fully_parallel_loop(128), 4)
        # Each iteration: 1 read + 1 write.
        assert report.trace_length == 256
        assert report.inspector_bytes == pytest.approx(256 * INSPECTOR_BYTES_PER_REF)

    def test_sparse_array_counts_touched_only(self):
        def body(ctx, i):
            ctx.store("A", i * 1000, 1.0)

        loop = SpeculativeLoop(
            "sparse", 16, body,
            arrays=[ArraySpec("A", np.zeros(1 << 20), tested=True, sparse=True)],
        )
        report = estimate_footprints(loop, 4)
        assert report.distinct_touched == 16
        # Nowhere near 1M-element dense planes.
        assert report.procwise_bytes < 16 * 64

    def test_untested_arrays_not_shadowed(self):
        def body(ctx, i):
            ctx.load("RO", i)
            ctx.store("A", i, 1.0)

        loop = SpeculativeLoop(
            "ro", 32, body,
            arrays=[
                ArraySpec("A", np.zeros(32), tested=True),
                ArraySpec("RO", np.ones(32), tested=False),
            ],
        )
        report = estimate_footprints(loop, 2)
        assert report.procwise_bytes == pytest.approx(
            2 * 32 * DENSE_SHADOW_BYTES_PER_ELEM
        )
        # The inspector still records the untested reads.
        assert report.trace_length == 64

    def test_rereads_inflate_trace_not_shadows(self):
        def body(ctx, i):
            for _ in range(8):
                ctx.load("A", 0)
            ctx.store("A", i, 1.0)

        loop = SpeculativeLoop(
            "reread", 32, body, arrays=[ArraySpec("A", np.zeros(32))]
        )
        report = estimate_footprints(loop, 2)
        assert report.trace_length == 32 * 9
        # Dense shadow size is fixed regardless of the re-read count.
        assert report.procwise_bytes == pytest.approx(
            2 * 32 * DENSE_SHADOW_BYTES_PER_ELEM
        )

    def test_rows_shape(self):
        report = estimate_footprints(fully_parallel_loop(16), 2)
        rows = report.rows()
        assert len(rows) == 3
        assert rows[0][0] == "processor-wise LRPD"
