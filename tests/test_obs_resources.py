"""The host resource profiler (:mod:`repro.obs.resources`).

Sampler lifecycle, sample shape per backend, the ``/proc`` reader and
its ``getrusage`` fallback for hosts without procfs, enable resolution
(config beats status-path beats environment), and the Perfetto
counter-track merge staying strictly outside the deterministic stream.
"""

import json
import os

import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.obs.resources import (
    ENV_ENABLE,
    HAVE_PROC,
    ResourceSampler,
    read_process,
    read_self_rusage,
    resolve_resources_enabled,
)
from repro.workloads.synthetic import chain_loop, geometric_chain_targets


def _loop(n=64):
    return chain_loop(n, geometric_chain_targets(n, 0.5))


class TestEnableResolution:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert not resolve_resources_enabled(RuntimeConfig())

    def test_explicit_config_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        assert not resolve_resources_enabled(RuntimeConfig(resources=False))
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert resolve_resources_enabled(RuntimeConfig(resources=True))

    def test_status_path_implies_sampling(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert resolve_resources_enabled(RuntimeConfig(status_path="s.jsonl"))

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("on", True), ("TRUE", True), ("yes", True),
        ("0", False), ("off", False), ("", False),
    ])
    def test_environment_default(self, monkeypatch, value, expected):
        monkeypatch.setenv(ENV_ENABLE, value)
        assert resolve_resources_enabled(RuntimeConfig()) is expected


class TestProcReaders:
    @pytest.mark.skipif(not HAVE_PROC, reason="host has no /proc")
    def test_read_own_process(self):
        stat = read_process(os.getpid())
        assert stat["pid"] == os.getpid()
        assert stat["rss_bytes"] > 1 << 20  # a python process is > 1 MB
        assert stat["cpu_s"] >= 0.0

    @pytest.mark.skipif(not HAVE_PROC, reason="host has no /proc")
    def test_read_vanished_process_returns_none(self):
        # Max pid is bounded well below 2**30 on practical hosts.
        assert read_process(2**30) is None

    def test_rusage_fallback_works_everywhere(self):
        """The no-/proc path: ``getrusage`` numbers for the engine
        process.  Runs on every platform, so the macOS fallback is
        exercised by CI even though CI itself has procfs."""
        stat = read_self_rusage()
        assert stat["pid"] == os.getpid()
        assert stat["rss_bytes"] > 1 << 20
        assert stat["cpu_s"] > 0.0

    def test_sampler_survives_a_procless_host(self, monkeypatch):
        """Force the fallback: with HAVE_PROC patched off, samples must
        still carry RSS/CPU, tagged ``source: rusage``."""
        import repro.obs.resources as resources

        monkeypatch.setattr(resources, "HAVE_PROC", False)
        sampler = ResourceSampler(eng=None, interval=0.01)
        sample = sampler.sample_now()
        assert sample["source"] == "rusage"
        assert sample["rss_bytes"] > 0
        assert "error" not in sample


class TestSampler:
    def test_samples_collected_and_consumers_fed(self):
        seen = []
        sampler = ResourceSampler(eng=None, interval=0.005)
        sampler.add_consumer(seen.append)
        sampler.start()
        import time
        time.sleep(0.05)
        sampler.stop()
        assert len(sampler.samples) >= 2  # periodic + the final stop sample
        assert seen == sampler.samples
        for sample in sampler.samples:
            assert {"t", "ts", "rss_bytes", "cpu_s"} <= set(sample)

    def test_stop_takes_a_final_sample(self):
        sampler = ResourceSampler(eng=None, interval=60.0)
        sampler.start()
        sampler.stop()
        assert len(sampler.samples) == 1

    def test_failing_consumer_is_swallowed(self):
        sampler = ResourceSampler(eng=None, interval=0.01)
        sampler.add_consumer(lambda sample: 1 / 0)
        sample = sampler.sample_now()
        assert "rss_bytes" in sample

    def test_stop_without_start_is_safe(self):
        ResourceSampler(eng=None).stop()


def _sampled_run(backend, consumer, n=96):
    """One engine run with the sampler on, feeding ``consumer`` every
    sample.  The stop-time final sample fires before ``backend.close()``,
    so at least one sample always sees the live pool."""
    from repro.core.engine import StageEngine, strategy_for_config

    config = RuntimeConfig.adaptive(
        backend=backend, backend_workers=4,
        resources=True, resource_interval=0.002,
    )
    loop = _loop(n)
    eng = StageEngine(loop, 4, strategy_for_config(loop, config), config)
    eng.sampler.add_consumer(consumer)
    eng.run()


class TestBackendResourceInfo:
    """Per-backend ``resource_info()`` content, observed through a live
    sampled engine run (poking a closed backend directly is brittle)."""

    @pytest.mark.skipif(not HAVE_PROC, reason="worker stats need /proc")
    @pytest.mark.parametrize("backend", ["fork", "shm"])
    def test_process_pools_report_worker_pids(self, backend):
        status = []
        _sampled_run(backend, status.append)
        with_workers = [s for s in status if s.get("workers")]
        assert with_workers, "no sample saw the worker pool"
        worker = with_workers[-1]["workers"][0]
        assert worker["pid"] != os.getpid()
        assert worker["rss_bytes"] > 0

    def test_shm_reports_arena_bytes(self):
        status = []
        _sampled_run("shm", status.append)
        assert max(s.get("shm_bytes", 0) for s in status) > 0

    def test_threads_reports_thread_count_and_queues(self):
        status = []
        _sampled_run("threads", status.append)
        threaded = [s for s in status if s.get("worker_threads")]
        assert threaded, "no sample saw live worker threads"
        assert isinstance(threaded[-1]["queue_depths"], list)
        assert all(s["gil"] in ("gil", "free-threaded") for s in status)

    def test_serial_backend_base_info(self):
        from repro.core.backend import SerialBackend

        info = SerialBackend(eng=None).resource_info()
        assert info == {
            "worker_pids": [], "shm_bytes": 0, "inflight": 0,
            "queue_depths": [],
        }


class TestDeterminismWithSamplerOn:
    def test_trace_is_byte_identical_with_sampler_on(self, tmp_path):
        """The operational plane must never leak into the deterministic
        stream: the JSONL trace of a sampled run equals the unsampled
        one byte for byte."""
        off = tmp_path / "off.jsonl"
        on = tmp_path / "on.jsonl"
        parallelize(_loop(), 4, RuntimeConfig.adaptive(trace_path=str(off)))
        parallelize(_loop(), 4, RuntimeConfig.adaptive(
            trace_path=str(on), resources=True, resource_interval=0.001,
        ))
        assert on.read_bytes() == off.read_bytes()

    def test_perfetto_counters_live_on_host_timeline_only(self, tmp_path):
        from repro.obs.spans import HOST_PID, VIRT_PID

        out = tmp_path / "trace.perfetto.json"
        parallelize(_loop(), 4, RuntimeConfig.adaptive(
            perfetto_path=str(out), resources=True, resource_interval=0.001,
        ))
        trace = json.loads(out.read_text())
        resource_counters = [
            e for e in trace["traceEvents"]
            if e["ph"] == "C" and "rss" in e["name"]
        ]
        assert resource_counters
        assert all(e["pid"] == HOST_PID for e in resource_counters)
        assert not any(
            e["pid"] == VIRT_PID and "rss" in e["name"]
            for e in trace["traceEvents"]
        )

    def test_perfetto_without_sampler_has_no_resource_tracks(self, tmp_path):
        out = tmp_path / "trace.perfetto.json"
        parallelize(_loop(), 4, RuntimeConfig.adaptive(
            perfetto_path=str(out), spans=True,
        ))
        trace = json.loads(out.read_text())
        assert not any(
            "rss" in e["name"] for e in trace["traceEvents"] if e["ph"] == "C"
        )
