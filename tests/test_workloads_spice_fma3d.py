"""Tests for the SPICE and FMA3D workload kernels."""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.runner import parallelize
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.workloads.fma3d import FMA3D_DECKS, Fma3dDeck, make_quad_loop
from repro.workloads.spice import (
    SPICE_DECKS,
    SpiceDeck,
    make_bjt_loop,
    make_dcdcmp15_loop,
    make_dcdcmp70_loop,
)
from tests.conftest import assert_matches_sequential

SMALL_SPICE = dataclasses.replace(
    SPICE_DECKS["adder.128"], lu_rows=430, devices=256, workspace=1 << 14
)


class TestDcdcmp15:
    def test_deck_validation(self):
        with pytest.raises(ValueError):
            SpiceDeck("bad", lu_rows=0)
        with pytest.raises(ValueError):
            SpiceDeck("bad", lu_rows=10, target_parallelism=0.5)
        with pytest.raises(ValueError):
            SpiceDeck("bad", lu_rows=10, exit_fraction=0.0)

    def test_critical_path_matches_target(self):
        loop = make_dcdcmp15_loop(SMALL_SPICE)
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
        sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
        target_cp = SMALL_SPICE.lu_rows / SMALL_SPICE.target_parallelism
        assert sched.critical_path == pytest.approx(target_cp, rel=0.15)

    def test_all_preds_precede_row(self):
        loop = make_dcdcmp15_loop(SMALL_SPICE)
        trace = loop.inspector(loop.materialize())
        for _reads, writes in trace:
            assert len(writes) == 1

    def test_wavefront_beats_plain_rlrpd(self):
        loop = make_dcdcmp15_loop(SMALL_SPICE)
        plain = parallelize(make_dcdcmp15_loop(SMALL_SPICE), 8, RuntimeConfig.adaptive())
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
        sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
        wf = execute_wavefront(loop, sched, 8)
        assert wf.speedup > plain.speedup
        assert_matches_sequential(wf, loop)

    def test_uses_sparse_shadows(self):
        # The VALUE workspace is huge; the spec must request sparse views.
        loop = make_dcdcmp15_loop(SMALL_SPICE)
        assert loop.array_specs["VALUE"].sparse is True


class TestDcdcmp70AndBjt:
    def test_loop70_single_stage_with_exit(self):
        loop = make_dcdcmp70_loop(SMALL_SPICE)
        res = parallelize(loop, 8)
        assert res.n_stages == 1
        assert res.exit_iteration == int(
            SMALL_SPICE.lu_rows * SMALL_SPICE.exit_fraction
        )
        assert_matches_sequential(res, loop)

    def test_loop70_exit_matches_sequential_exit(self):
        from repro.baselines.sequential import run_sequential

        loop = make_dcdcmp70_loop(SMALL_SPICE)
        seq = run_sequential(make_dcdcmp70_loop(SMALL_SPICE))
        spec = parallelize(loop, 4)
        assert spec.exit_iteration == seq.exit_iteration

    def test_bjt_reduction_single_stage(self):
        loop = make_bjt_loop(SMALL_SPICE)
        res = parallelize(loop, 8)
        assert res.n_stages == 1
        assert_matches_sequential(res, loop, tolerant=True)

    def test_bjt_values_accumulate(self):
        from repro.baselines.sequential import sequential_reference

        ref = sequential_reference(make_bjt_loop(SMALL_SPICE))
        assert ref["Y"].sum() > 0


class TestFma3dQuad:
    def test_deck_validation(self):
        with pytest.raises(ValueError):
            Fma3dDeck("bad", n_elements=0)

    def test_fully_parallel_one_stage(self):
        loop = make_quad_loop(FMA3D_DECKS["train"])
        res = parallelize(loop, 8)
        assert res.n_stages == 1
        assert res.parallelism_ratio == 1.0
        assert_matches_sequential(res, loop)

    def test_speedup_scales(self):
        s2 = parallelize(make_quad_loop("train"), 2).speedup
        s8 = parallelize(make_quad_loop("train"), 8).speedup
        assert s8 > 3 * s2 / 2

    def test_permutation_makes_writes_disjoint(self):
        loop = make_quad_loop("train")
        res = parallelize(loop, 4)
        assert res.stages[0].n_arcs == 0

    def test_instances_vary(self):
        from repro.baselines.sequential import sequential_reference

        a = sequential_reference(make_quad_loop("train", instance=0))
        b = sequential_reference(make_quad_loop("train", instance=1))
        assert not (a["STRESS"] == b["STRESS"]).all()
