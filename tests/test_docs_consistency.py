"""Documentation consistency guards.

Cheap checks that keep the prose honest as the code moves: the README and
docs must mention the public API they describe, DESIGN.md's experiment
index must match the registry, and every bench file must map to a
registered experiment.
"""

import pathlib
import re

import repro
from repro.bench import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDesignIndex:
    def test_every_experiment_has_a_bench_or_note(self):
        design = (ROOT / "DESIGN.md").read_text()
        referenced: set[str] = set()
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            referenced.update(
                re.findall(r'run_figure\(benchmark, "([^"]+)"\)', path.read_text())
            )
        for exp_id in EXPERIMENTS:
            assert exp_id in referenced or exp_id in design, (
                f"experiment {exp_id} has neither a bench file nor a DESIGN note"
            )

    def test_bench_files_reference_real_experiments(self):
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            text = path.read_text()
            ids = re.findall(r'run_figure\(benchmark, "([^"]+)"\)', text)
            assert ids, f"{path.name} runs no experiment"
            for exp_id in ids:
                assert exp_id in EXPERIMENTS, (
                    f"{path.name} references unknown experiment {exp_id!r}"
                )


class TestApiDocs:
    def test_api_doc_mentions_core_symbols(self):
        api = (ROOT / "docs" / "api.md").read_text()
        for symbol in (
            "SpeculativeLoop", "ArraySpec", "RuntimeConfig", "parallelize",
            "run_program", "extract_ddg", "wavefront_schedule", "certify",
            "CostModel", "Topology", "FeedbackBalancer", "StrategyPredictor",
        ):
            assert symbol in api, f"docs/api.md does not mention {symbol}"

    def test_public_api_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_readme_mentions_docs(self):
        readme = (ROOT / "README.md").read_text()
        for doc in ("architecture", "runtime-semantics", "cost-model"):
            assert doc in readme


class TestExperimentsFile:
    def test_experiments_md_covers_registry(self):
        experiments_md = (ROOT / "EXPERIMENTS.md").read_text()
        missing = [
            exp_id for exp_id in EXPERIMENTS
            if f"## {exp_id}:" not in experiments_md
        ]
        # Regeneration may lag a new experiment by one commit; cap the gap.
        assert len(missing) <= 2, (
            f"EXPERIMENTS.md stale, missing {missing}; "
            "regenerate with `python -m repro.bench`"
        )
