"""Tests for the persistent SPICE simulation (schedule reuse)."""

import dataclasses


from repro.workloads.spice import SPICE_DECKS
from repro.workloads.spice_sim import SpiceSimulation, run_spice_program

SMALL = dataclasses.replace(
    SPICE_DECKS["adder.128"], lu_rows=430, devices=128, workspace=1 << 13
)


class TestScheduleReuse:
    def test_extraction_only_on_first_iteration(self):
        sim = SpiceSimulation(SMALL)
        first = sim.newton_iteration(4)
        assert sim.schedule is not None
        cp_after_first = sim.schedule.critical_path
        second = sim.newton_iteration(4)
        assert sim.schedule.critical_path == cp_after_first  # unchanged
        # The reused-schedule iteration is much cheaper than the extraction.
        assert second.lu.total_time < 0.5 * first.lu.total_time

    def test_later_iterations_speed_up(self):
        program = run_spice_program(SMALL, 8, iterations=4)
        speedups = program.per_iteration_speedups()
        assert speedups[1] > speedups[0]
        assert min(speedups[1:]) > 1.5

    def test_schedule_valid_for_every_iteration(self):
        """The reuse premise: values change, topology does not, so one
        schedule stays dependence-correct across iterations -- verified by
        matching a single-processor twin's final workspace."""
        par = SpiceSimulation(SMALL)
        twin = SpiceSimulation(SMALL)
        for _ in range(3):
            par.newton_iteration(8)
            twin.newton_iteration(1)
        assert par.memory.allclose(twin.memory.snapshot())

    def test_program_aggregate(self):
        program = run_spice_program(SMALL, 8, iterations=3)
        assert len(program.iterations) == 3
        assert program.speedup > 1.0
        assert program.schedule.critical_path < SMALL.lu_rows

    def test_state_persists_across_iterations(self):
        sim = SpiceSimulation(SMALL)
        sim.newton_iteration(4)
        snap1 = sim.memory.snapshot()["VALUE"].copy()
        sim.newton_iteration(4)
        snap2 = sim.memory.snapshot()["VALUE"]
        assert (snap1 != snap2).any()  # iteration 2 built on iteration 1

    def test_deterministic(self):
        a = run_spice_program(SMALL, 4, iterations=2)
        b = run_spice_program(SMALL, 4, iterations=2)
        assert a.total_time == b.total_time
