"""Regression: premature loop exits interacting with mid-block fail-stop.

An exit signalled by a processor that later turns out to be faulted (or
that sits beyond a faulted block) cannot be trusted: the iterations that
*decide* the exit may re-execute differently after rollback.  The exit must
only be validated once every iteration up to it has committed, and the
final memory must equal the sequential prefix semantics exactly.
"""

import pytest

from repro.baselines.sequential import sequential_reference
from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.faults import FaultEvent, FaultKind, FaultPlan

from tests.test_core_exit import exit_loop_at


def fail_stop(stage, proc, *, after=0.5, permanent=False):
    return FaultEvent(
        FaultKind.FAIL_STOP, stage=stage, proc=proc,
        permanent=permanent, after_fraction=after,
    )


class TestExitWithFailStop:
    def test_exit_block_itself_faults(self):
        # p=4, n=32: proc 2 owns [16, 24) and signals the exit at 20 -- but
        # dies at 20 before reporting.  The exit must re-emerge on
        # re-execution and still validate.
        plan = FaultPlan(events=(fail_stop(0, 2, after=0.5),))
        loop = exit_loop_at(32, exit_at=20)
        result = parallelize(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert result.exit_iteration == 20
        ref = sequential_reference(exit_loop_at(32, exit_at=20))
        assert result.memory.equals(ref)
        assert result.retries == 1

    def test_fault_before_exit_invalidates_it(self):
        # Proc 1 ([8, 16)) faults; proc 2's exit at 20 lies beyond the
        # failure point, so it must NOT be validated this stage -- iteration
        # 20 re-executes after the hole is filled.
        plan = FaultPlan(events=(fail_stop(0, 1, after=0.0),))
        loop = exit_loop_at(32, exit_at=20)
        result = parallelize(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert result.exit_iteration == 20
        ref = sequential_reference(exit_loop_at(32, exit_at=20))
        assert result.memory.equals(ref)
        assert result.stages[0].faulted_procs == [1]
        # The committed prefix never includes iterations past the exit.
        assert result.memory["A"].data[21] == 0.0

    def test_fault_after_exit_is_harmless(self):
        # Proc 3 ([24, 32)) faults, but those iterations are discarded by
        # the validated exit at 20 anyway.
        plan = FaultPlan(events=(fail_stop(0, 3, after=0.0),))
        loop = exit_loop_at(32, exit_at=20)
        result = parallelize(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert result.exit_iteration == 20
        ref = sequential_reference(exit_loop_at(32, exit_at=20))
        assert result.memory.equals(ref)
        # No extra stage: the exit validated in the presence of the fault.
        assert result.n_stages == 1

    def test_exit_with_dependences_and_permanent_death(self):
        plan = FaultPlan(events=(fail_stop(0, 1, permanent=True),))
        loop = exit_loop_at(32, exit_at=20, dep_targets=(18,))
        result = parallelize(
            loop, 4, RuntimeConfig.nrd(fault_plan=plan, self_check=False)
        )
        assert result.exit_iteration == 20
        ref = sequential_reference(
            exit_loop_at(32, exit_at=20, dep_targets=(18,))
        )
        assert result.memory.equals(ref)
        assert result.dead_procs == [1]

    @pytest.mark.parametrize("exit_at", [0, 7, 15, 31])
    def test_exit_positions_under_storm(self, exit_at):
        events = tuple(
            fail_stop(stage, proc, after=0.25)
            for stage in range(3)
            for proc in (1, 3)
        )
        loop = exit_loop_at(32, exit_at=exit_at)
        result = parallelize(
            loop, 4,
            RuntimeConfig.nrd(
                fault_plan=FaultPlan(events=events), max_fault_retries=8
            ),
        )
        assert result.exit_iteration == exit_at
        ref = sequential_reference(exit_loop_at(32, exit_at=exit_at))
        assert result.memory.equals(ref)
