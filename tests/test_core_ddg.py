"""Tests for sliding-window DDG extraction."""

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.errors import ConfigurationError
from repro.loopir.context import SequentialContext
from repro.shadow.edges import EdgeKind
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    random_dependence_loop,
)
from tests.conftest import assert_matches_sequential


def ground_truth_edges(loop):
    """Flow/anti/output pairs from a traced sequential execution."""
    memory = loop.materialize()
    ctx = SequentialContext(
        memory, reductions=loop.reductions,
        inductions=loop.initial_inductions(), trace=True,
    )
    for i in range(loop.n_iterations):
        ctx.iteration = i
        loop.body(ctx, i)
    last_write: dict[tuple, int] = {}
    last_read: dict[tuple, int] = {}
    flow, anti, output = set(), set(), set()
    for rec in ctx.records:
        key = (rec.array, rec.index)
        if rec.kind == "r":
            w = last_write.get(key)
            if w is not None and w < rec.iteration:
                flow.add((w, rec.iteration))
            last_read[key] = rec.iteration
        else:
            r = last_read.get(key)
            if r is not None and r < rec.iteration:
                anti.add((r, rec.iteration))
            w = last_write.get(key)
            if w is not None and w < rec.iteration:
                output.add((w, rec.iteration))
            last_write[key] = rec.iteration
    return flow, anti, output


class TestExtraction:
    def test_fully_parallel_loop_flow_edges(self):
        # Each iteration reads then writes its own element: no
        # cross-iteration edges at all.
        loop = fully_parallel_loop(32)
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        assert result.flow_pairs() == set()

    def test_chain_edges_found_exactly(self):
        loop = chain_loop(32, targets=[5, 17, 29])
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        assert result.flow_pairs() == {(4, 5), (16, 17), (28, 29)}

    def test_extraction_state_is_correct(self):
        loop = random_dependence_loop(128, density=0.2, max_distance=8, seed=11)
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=16))
        assert_matches_sequential(result.extraction, loop)

    @pytest.mark.parametrize("window", [4, 8, 32, 128])
    def test_flow_edges_match_ground_truth_any_window(self, window):
        """The extracted flow edges must equal the sequential trace's
        adjacent flow pairs regardless of strip size -- failed blocks are
        re-executed and their edges rediscovered against committed data."""
        loop = random_dependence_loop(96, density=0.25, max_distance=6, seed=3)
        truth_flow, _, _ = ground_truth_edges(
            random_dependence_loop(96, density=0.25, max_distance=6, seed=3)
        )
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=window))
        assert result.flow_pairs() == truth_flow

    def test_anti_and_output_edges_recorded(self):
        # Iteration i writes A[i] and A[i+1]: adjacent-iteration output
        # deps on every odd element plus flow/anti around them.
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        def body(ctx, i):
            ctx.store("A", i, 1.0)
            ctx.store("A", i + 1, 2.0)

        loop = SpeculativeLoop(
            "overlap", 16, body, arrays=[ArraySpec("A", np.zeros(17))]
        )
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        outputs = result.edges.iteration_pairs([EdgeKind.OUTPUT])
        assert (0, 1) in outputs

    def test_graph_nodes_cover_iterations(self):
        loop = chain_loop(20, targets=[10])
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        assert result.graph().number_of_nodes() == 20

    def test_edges_deduplicated_across_windows(self):
        # An element re-read every iteration would log the same edge in
        # every window; the inverted edge table deduplicates.
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        def body(ctx, i):
            if i == 0:
                ctx.store("A", 0, 1.0)
            else:
                ctx.load("A", 0)

        loop = SpeculativeLoop(
            "hub", 24, body, arrays=[ArraySpec("A", np.zeros(4))]
        )
        result = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        flows = result.edges.edges(EdgeKind.FLOW)
        assert len(flows) == len(set(flows))
        assert {(e.src, e.dst) for e in flows} == {(0, i) for i in range(1, 24)}


class TestAntiDependenceCompleteness:
    def test_all_readers_before_a_write_get_anti_edges(self):
        """Regression for a hypothesis-found soundness bug: with reads of
        element 1 at iterations 2 and 3 and a write at 4, the edge table
        must hold BOTH anti edges -- keeping only the latest reader let the
        wavefront scheduler hoist the write above iteration 2's read."""
        import numpy as np

        from repro.core.wavefront import execute_wavefront, wavefront_schedule
        from repro.loopir.loop import ArraySpec, SpeculativeLoop
        from tests.conftest import assert_matches_sequential

        table = [
            [("r", 0)],
            [("w", 0)],
            [("r", 1), ("w", 0)],
            [("r", 1)],
            [("w", 1)],
        ]

        def body(ctx, i):
            acc = float(i)
            for kind, idx in table[i]:
                if kind == "r":
                    acc += ctx.load("A", idx)
                else:
                    ctx.store("A", idx, acc + idx)

        def make():
            return SpeculativeLoop(
                "regress", 5, body, arrays=[ArraySpec("A", np.arange(2.0))]
            )

        loop = make()
        result = extract_ddg(loop, 2, RuntimeConfig.sw(window_size=8))
        antis = result.edges.iteration_pairs([EdgeKind.ANTI])
        assert (2, 4) in antis and (3, 4) in antis
        sched = wavefront_schedule(result.graph(), 5)
        wf = execute_wavefront(make(), sched, 2)
        assert_matches_sequential(wf, make())


class TestValidation:
    def test_rejects_blocked_config(self):
        with pytest.raises(ConfigurationError):
            extract_ddg(fully_parallel_loop(8), 2, RuntimeConfig.nrd())

    def test_rejects_induction_loops(self):
        import numpy as np

        from repro.loopir.induction import InductionSpec
        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        loop = SpeculativeLoop(
            "ind", 4, lambda ctx, i: ctx.bump("k"),
            arrays=[ArraySpec("A", np.zeros(4))],
            inductions=[InductionSpec("k")],
        )
        with pytest.raises(ConfigurationError):
            extract_ddg(loop, 2, RuntimeConfig.sw(4))
