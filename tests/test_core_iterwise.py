"""Tests for the iteration-wise R-LRPD variant."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.iterwise import run_blocked_iterwise
from repro.core.rlrpd import run_blocked
from repro.errors import ConfigurationError
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.workloads.synthetic import (
    fully_parallel_loop,
    random_dependence_loop,
)
from tests.conftest import assert_matches_sequential, make_simple_loop


class TestGranularity:
    def test_commit_point_is_the_exact_sink_iteration(self):
        # Arc 20 -> 38 crosses from processor 1 into the middle of
        # processor 2's block: the processor-wise test rolls back to the
        # block start (32); the iteration-wise test commits up to 38.
        def make():
            def body(ctx, i):
                if i == 38:
                    ctx.load("A", 20)
                ctx.store("A", i, float(i))

            return SpeculativeLoop(
                "midblock", 64, body, arrays=[ArraySpec("A", np.zeros(64))]
            )

        res = run_blocked_iterwise(make(), 4, RuntimeConfig.nrd())
        assert res.stages[0].failed
        assert res.stages[0].committed_iterations == 38
        procwise = run_blocked(make(), 4, RuntimeConfig.nrd())
        assert procwise.stages[0].committed_iterations == 32

    def test_fewer_or_equal_reexecuted_iterations(self):
        loop_a = random_dependence_loop(128, 0.1, 6, seed=21)
        loop_b = random_dependence_loop(128, 0.1, 6, seed=21)
        fine = run_blocked_iterwise(loop_a, 8, RuntimeConfig.nrd())
        coarse = run_blocked(loop_b, 8, RuntimeConfig.nrd())
        assert fine.wasted_work <= coarse.wasted_work + 1e-9

    def test_higher_marking_overhead(self):
        """The price of iteration granularity: more marking/analysis time
        (the trace-proportional structures the paper avoids)."""
        from repro.machine.timeline import Category

        loop_a = fully_parallel_loop(256)
        loop_b = fully_parallel_loop(256)
        fine = run_blocked_iterwise(loop_a, 8, RuntimeConfig.nrd())
        coarse = run_blocked(loop_b, 8, RuntimeConfig.nrd())
        assert fine.timeline.charged_category(Category.MARK) > (
            coarse.timeline.charged_category(Category.MARK)
        )

    def test_partial_block_values_committed_in_order(self):
        # Two writes to the same element inside the committed prefix: the
        # later one must win.
        def body(ctx, i):
            ctx.store("A", 0, float(i))
            if i == 13:
                ctx.load("A", 5)  # exposed read; element 5 written by iter 5
            ctx.store("A", 5 if i == 5 else 1 + i, float(i))

        loop = SpeculativeLoop(
            "order", 16, body, arrays=[ArraySpec("A", np.zeros(18))]
        )
        res = run_blocked_iterwise(loop, 4, RuntimeConfig.nrd())
        assert_matches_sequential(res, loop)


class TestSoundness:
    @pytest.mark.parametrize("cfg", [RuntimeConfig.nrd(), RuntimeConfig.rd(),
                                     RuntimeConfig.adaptive()])
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_matches_sequential(self, cfg, p):
        loop = make_simple_loop(96)
        res = run_blocked_iterwise(loop, p, cfg)
        assert_matches_sequential(res, loop)

    def test_fully_parallel_single_stage(self):
        loop = fully_parallel_loop(64)
        res = run_blocked_iterwise(loop, 8)
        assert res.n_stages == 1
        assert res.parallelism_ratio == 1.0

    def test_dense_dependences(self):
        loop = random_dependence_loop(100, 0.4, 3, seed=8)
        res = run_blocked_iterwise(loop, 8, RuntimeConfig.rd())
        assert_matches_sequential(res, loop)

    def test_commit_monotone(self):
        loop = make_simple_loop(120)
        res = run_blocked_iterwise(loop, 8, RuntimeConfig.rd())
        remaining = [s.remaining_after for s in res.stages]
        assert all(a > b for a, b in zip(remaining, remaining[1:]))

    def test_iteration_accounting_exact(self):
        loop = make_simple_loop(120)
        res = run_blocked_iterwise(loop, 8, RuntimeConfig.nrd())
        assert sum(s.committed_iterations for s in res.stages) == 120
        assert set(res.iteration_times) == set(range(120))


class TestValidation:
    def test_rejects_untested_arrays(self):
        def body(ctx, i):
            ctx.store("B", i, 1.0)

        loop = SpeculativeLoop(
            "u", 4, body, arrays=[ArraySpec("B", np.zeros(4), tested=False)]
        )
        with pytest.raises(ConfigurationError):
            run_blocked_iterwise(loop, 2)

    def test_rejects_reductions(self):
        loop = SpeculativeLoop(
            "r", 4, lambda ctx, i: ctx.update("H", 0, 1.0),
            arrays=[ArraySpec("H", np.zeros(2))],
            reductions={"H": ReductionOp.SUM},
        )
        with pytest.raises(ConfigurationError):
            run_blocked_iterwise(loop, 2)

    def test_rejects_sliding_window_config(self):
        with pytest.raises(ConfigurationError):
            run_blocked_iterwise(fully_parallel_loop(8), 2, RuntimeConfig.sw(4))

    def test_strategy_label(self):
        res = run_blocked_iterwise(fully_parallel_loop(8), 2)
        assert "iterwise" in res.strategy


class TestFaultsAndSelfCheck:
    """Engine-inherited capabilities the pre-engine driver lacked."""

    def test_survives_random_faults_and_matches_sequential(self):
        from repro.faults import random_plan

        loop = make_simple_loop(96)
        res = run_blocked_iterwise(
            loop, 4, RuntimeConfig.nrd(fault_plan=random_plan(11, n_procs=4))
        )
        assert_matches_sequential(res, loop)

    def test_fail_stop_shrinks_pool_and_recovers(self):
        from repro.faults import FaultEvent, FaultKind, FaultPlan

        plan = FaultPlan(events=(
            FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=0,
                       after_fraction=0.25, permanent=True),
        ))
        loop = make_simple_loop(96)
        res = run_blocked_iterwise(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert_matches_sequential(res, loop)
        assert 0 in res.dead_procs
        # The lowest-ranked block died: nothing commits, the stage retries.
        assert res.retries >= 1

    def test_corrupt_write_forces_reexecution(self):
        from repro.faults import FaultEvent, FaultKind, FaultPlan

        plan = FaultPlan(events=(
            FaultEvent(FaultKind.CORRUPT_WRITE, stage=0, proc=2),
        ))
        loop = make_simple_loop(96)
        res = run_blocked_iterwise(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert_matches_sequential(res, loop)
        assert res.faults_survived >= 1

    def test_fault_clamps_partial_prefix_commit(self):
        from repro.faults import FaultEvent, FaultKind, FaultPlan

        # A mid-block sink normally lets iterwise commit a partial prefix
        # from the value logs; a fault on that block's processor makes the
        # logs untrusted, so the commit point clamps to the block start.
        plan = FaultPlan(events=(
            FaultEvent(FaultKind.FAIL_STOP, stage=0, proc=2,
                       after_fraction=0.9),
        ))
        loop = make_simple_loop(96)
        res = run_blocked_iterwise(loop, 4, RuntimeConfig.nrd(fault_plan=plan))
        assert_matches_sequential(res, loop)

    def test_self_check_oracle_passes(self):
        loop = make_simple_loop(96)
        res = run_blocked_iterwise(
            loop, 4, RuntimeConfig.adaptive(self_check=True)
        )
        assert_matches_sequential(res, loop)
