"""Tests for the synthetic workload generators."""

import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.workloads.synthetic import (
    chain_loop,
    copyin_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    geometric_rd_targets,
    linear_chain_targets,
    privatizable_loop,
    random_dependence_loop,
    reduction_loop,
)
from tests.conftest import assert_matches_sequential


class TestChainLoop:
    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            chain_loop(8, targets=[0])
        with pytest.raises(ValueError):
            chain_loop(8, targets=[8])

    def test_sequential_values(self):
        from repro.baselines.sequential import sequential_reference

        ref = sequential_reference(chain_loop(4, targets=[2]))
        # A[i] = i except A[2] = 2 + A[1] = 3.
        assert list(ref["A"]) == [0.0, 1.0, 3.0, 3.0]

    def test_inspector_matches_body(self):
        loop = chain_loop(16, targets=[5, 9])
        trace = loop.inspector(loop.materialize())
        assert len(trace) == 16
        assert trace[5][0] == {("A", 4)}
        assert trace[6][0] == set()

    def test_dependences_only_at_targets(self):
        loop = chain_loop(64, targets=[32])
        res = run_blocked(loop, 2, RuntimeConfig.nrd())
        assert res.n_stages == 2
        res2 = run_blocked(chain_loop(64, targets=[]), 2, RuntimeConfig.nrd())
        assert res2.n_stages == 1


class TestTargetGenerators:
    def test_geometric_targets_half(self):
        assert geometric_chain_targets(1024, 0.5)[:3] == [512, 768, 896]

    def test_geometric_targets_strictly_increasing(self):
        t = geometric_chain_targets(1000, 0.7)
        assert all(a < b for a, b in zip(t, t[1:]))

    def test_geometric_targets_bounded(self):
        t = geometric_chain_targets(100, 0.5, max_targets=3)
        assert len(t) <= 3

    def test_rd_targets_commit_expected_fraction(self):
        """The RD-aligned generator's defining property: an always-
        redistribute run commits ~(1-alpha) of the remainder per stage."""
        n, p, alpha = 1200, 8, 0.3
        loop = chain_loop(n, geometric_rd_targets(n, alpha, p))
        res = run_blocked(loop, p, RuntimeConfig.rd())
        remaining = [s.remaining_after for s in res.stages[:-1] if s.failed]
        series = [n] + remaining
        ratios = [b / a for a, b in zip(series, series[1:])]
        assert all(abs(r - alpha) < 0.15 for r in ratios)

    def test_linear_targets_sequentialize_nrd(self):
        n, p = 256, 8
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        assert res.n_stages == p

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            geometric_chain_targets(100, 1.0)
        with pytest.raises(ValueError):
            geometric_rd_targets(100, 0.0, 4)


class TestOtherGenerators:
    def test_fully_parallel_has_inspector(self):
        loop = fully_parallel_loop(8)
        assert len(loop.inspector(loop.materialize())) == 8

    def test_privatizable_correct_under_speculation(self):
        loop = privatizable_loop(64, n_temp=4)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_copyin_loop_anti_only(self):
        loop = copyin_loop(64)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1  # copy-in absorbs the anti dependences
        assert_matches_sequential(res, loop)

    def test_reduction_loop_deterministic(self):
        a = reduction_loop(64, seed=5)
        b = reduction_loop(64, seed=5)
        from repro.baselines.sequential import sequential_reference

        assert sequential_reference(a)["H"].tolist() == (
            sequential_reference(b)["H"].tolist()
        )

    def test_random_loop_density_zero_is_parallel(self):
        loop = random_dependence_loop(64, density=0.0, max_distance=4)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1

    def test_random_loop_validation(self):
        with pytest.raises(ValueError):
            random_dependence_loop(10, density=1.5, max_distance=2)
        with pytest.raises(ValueError):
            random_dependence_loop(10, density=0.5, max_distance=0)

    def test_random_loop_inspector_consistent(self):
        loop = random_dependence_loop(32, density=0.5, max_distance=4, seed=1)
        trace = loop.inspector(loop.materialize())
        # Every iteration writes its own element.
        assert all(("A", i) in w for i, (_, w) in enumerate(trace))
