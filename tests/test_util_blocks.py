"""Unit tests for iteration-block arithmetic."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.util.blocks import (
    Block,
    blocks_cover,
    partition_even,
    partition_weighted,
    scale_boundaries,
    validate_blocks,
)


class TestBlock:
    def test_length_and_contains(self):
        b = Block(0, 10, 20)
        assert len(b) == 10
        assert 10 in b and 19 in b
        assert 9 not in b and 20 not in b

    def test_empty_block(self):
        b = Block(3, 5, 5)
        assert len(b) == 0
        assert list(b.iterations()) == []

    def test_inverted_block_rejected(self):
        with pytest.raises(ScheduleError):
            Block(0, 10, 9)

    def test_negative_proc_rejected(self):
        with pytest.raises(ScheduleError):
            Block(-1, 0, 1)

    def test_iterations_range(self):
        assert list(Block(0, 2, 5).iterations()) == [2, 3, 4]


class TestPartitionEven:
    def test_exact_division(self):
        blocks = partition_even(0, 16, [0, 1, 2, 3])
        assert [len(b) for b in blocks] == [4, 4, 4, 4]
        assert blocks[0].start == 0 and blocks[-1].stop == 16

    def test_remainder_goes_to_first_procs(self):
        blocks = partition_even(0, 10, [0, 1, 2, 3])
        assert [len(b) for b in blocks] == [3, 3, 2, 2]

    def test_fewer_iterations_than_procs(self):
        blocks = partition_even(0, 2, [0, 1, 2, 3])
        assert [len(b) for b in blocks] == [1, 1, 0, 0]

    def test_nonzero_start(self):
        blocks = partition_even(100, 108, [0, 1])
        assert blocks[0].start == 100 and blocks[1].stop == 108

    def test_empty_range(self):
        blocks = partition_even(5, 5, [0, 1])
        assert all(len(b) == 0 for b in blocks)

    def test_sparse_proc_ids_preserved(self):
        blocks = partition_even(0, 9, [2, 5, 7])
        assert [b.proc for b in blocks] == [2, 5, 7]

    def test_unsorted_procs_rejected(self):
        with pytest.raises(ScheduleError):
            partition_even(0, 10, [1, 0])

    def test_no_procs_rejected(self):
        with pytest.raises(ScheduleError):
            partition_even(0, 10, [])

    def test_blocks_tile_range(self):
        blocks = partition_even(3, 77, list(range(5)))
        validate_blocks(blocks, 3, 77)  # should not raise


class TestPartitionWeighted:
    def test_uniform_weights_match_even(self):
        weights = np.ones(16)
        blocks = partition_weighted(0, 16, [0, 1, 2, 3], weights)
        assert [len(b) for b in blocks] == [4, 4, 4, 4]

    def test_skewed_weights_shift_boundaries(self):
        # All the cost in the last quarter: it should get its own processors.
        weights = np.zeros(100)
        weights[75:] = 1.0
        blocks = partition_weighted(0, 100, [0, 1, 2, 3], weights)
        per_block = [weights[b.start : b.stop].sum() for b in blocks]
        assert max(per_block) <= 13  # ~25/4 + granularity slack

    def test_weighted_partition_balances_ramp(self):
        n, p = 1000, 4
        weights = np.linspace(0.1, 2.0, n)
        blocks = partition_weighted(0, n, list(range(p)), weights)
        sums = [weights[b.start : b.stop].sum() for b in blocks]
        ideal = weights.sum() / p
        assert max(sums) < 1.1 * ideal

    def test_zero_total_falls_back_to_even(self):
        blocks = partition_weighted(0, 8, [0, 1], np.zeros(8))
        assert [len(b) for b in blocks] == [4, 4]

    def test_wrong_length_rejected(self):
        with pytest.raises(ScheduleError):
            partition_weighted(0, 8, [0, 1], np.ones(7))

    def test_negative_weights_rejected(self):
        w = np.ones(8)
        w[3] = -1
        with pytest.raises(ScheduleError):
            partition_weighted(0, 8, [0, 1], w)

    def test_covers_range(self):
        rng = np.random.default_rng(0)
        weights = rng.random(57)
        blocks = partition_weighted(10, 67, [0, 1, 2], weights)
        validate_blocks(blocks, 10, 67)


class TestValidation:
    def test_gap_detected(self):
        blocks = [Block(0, 0, 4), Block(1, 5, 8)]
        with pytest.raises(ScheduleError):
            validate_blocks(blocks, 0, 8)

    def test_overlap_detected(self):
        blocks = [Block(0, 0, 5), Block(1, 4, 8)]
        with pytest.raises(ScheduleError):
            validate_blocks(blocks, 0, 8)

    def test_wrong_proc_order_detected(self):
        blocks = [Block(1, 0, 4), Block(0, 4, 8)]
        with pytest.raises(ScheduleError):
            validate_blocks(blocks, 0, 8)

    def test_incomplete_coverage_detected(self):
        blocks = [Block(0, 0, 4)]
        with pytest.raises(ScheduleError):
            validate_blocks(blocks, 0, 8)

    def test_empty_blocks_skipped(self):
        blocks = [Block(0, 0, 4), Block(1, 4, 4), Block(2, 4, 8)]
        validate_blocks(blocks, 0, 8)

    def test_blocks_cover(self):
        blocks = [Block(0, 3, 5), Block(1, 5, 9)]
        assert blocks_cover(blocks) == (3, 9)

    def test_blocks_cover_empty(self):
        assert blocks_cover([Block(0, 4, 4)]) == (0, 0)


class TestScaleBoundaries:
    def test_identity_scale(self):
        assert scale_boundaries([0, 5, 10], 10, 10) == [0, 5, 10]

    def test_double(self):
        assert scale_boundaries([0, 5, 10], 10, 20) == [0, 10, 20]

    def test_halve(self):
        assert scale_boundaries([0, 5, 10], 10, 5) == [0, 2, 5]

    def test_monotone_after_truncation(self):
        scaled = scale_boundaries([0, 3, 4, 9], 9, 4)
        assert all(a <= b for a, b in zip(scaled, scaled[1:]))

    def test_clamped_to_new_n(self):
        assert max(scale_boundaries([0, 10], 10, 3)) <= 3

    def test_invalid_old_n(self):
        with pytest.raises(ScheduleError):
            scale_boundaries([0], 0, 5)
