"""Tests for the run-trace renderers."""

from repro.bench.trace import render_breakdown, render_program, render_stage_trace
from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.core.runner import run_program
from repro.workloads.synthetic import chain_loop, fully_parallel_loop


class TestStageTrace:
    def test_contains_stage_rows(self):
        res = run_blocked(chain_loop(64, targets=[32]), 4, RuntimeConfig.nrd())
        out = render_stage_trace(res)
        lines = out.splitlines()
        assert "fail" in out and "ok" in out
        # title + header + rule + one row per stage
        assert len(lines) == 3 + res.n_stages

    def test_title_has_metrics(self):
        res = run_blocked(fully_parallel_loop(32), 4, RuntimeConfig.nrd())
        out = render_stage_trace(res)
        assert "speedup" in out
        assert "0 restarts" in out

    def test_schedule_column_shows_blocks(self):
        res = run_blocked(fully_parallel_loop(8), 2, RuntimeConfig.nrd())
        out = render_stage_trace(res)
        assert "p0[0,4)" in out


class TestBreakdown:
    def test_totals_row(self):
        res = run_blocked(chain_loop(64, targets=[32]), 4, RuntimeConfig.nrd())
        out = render_breakdown(res)
        assert out.splitlines()[-1].startswith("total")

    def test_only_used_categories(self):
        res = run_blocked(fully_parallel_loop(32), 4, RuntimeConfig.nrd())
        out = render_breakdown(res)
        assert "work" in out
        assert "redistribution" not in out  # nothing redistributed


class TestProgram:
    def test_one_row_per_instantiation(self):
        prog = run_program(
            [fully_parallel_loop(32) for _ in range(3)], 4, RuntimeConfig.nrd()
        )
        out = render_program(prog)
        assert len(out.splitlines()) == 3 + 3
        assert "PR=1.000" in out
