"""Unit tests for the packed bitset."""

import numpy as np
import pytest

from repro.util.bitset import BitSet


class TestBasics:
    def test_new_bitset_is_empty(self):
        bs = BitSet(100)
        assert len(bs) == 0
        assert not bs

    def test_set_and_test(self):
        bs = BitSet(100)
        bs.set(0)
        bs.set(63)
        bs.set(64)
        bs.set(99)
        assert bs.test(0) and bs.test(63) and bs.test(64) and bs.test(99)
        assert not bs.test(1) and not bs.test(65)

    def test_set_is_idempotent(self):
        bs = BitSet(10)
        bs.set(5)
        bs.set(5)
        assert len(bs) == 1

    def test_clear(self):
        bs = BitSet(10)
        bs.set(5)
        bs.clear(5)
        assert not bs.test(5)
        assert len(bs) == 0

    def test_contains_protocol(self):
        bs = BitSet(10)
        bs.set(3)
        assert 3 in bs
        assert 4 not in bs

    def test_iteration_yields_sorted_indices(self):
        bs = BitSet(200)
        for i in (150, 3, 64, 190):
            bs.set(i)
        assert list(bs) == [3, 64, 150, 190]

    def test_size_zero(self):
        bs = BitSet(0)
        assert len(bs) == 0
        assert list(bs) == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitSet(-1)

    def test_out_of_range_rejected(self):
        bs = BitSet(10)
        with pytest.raises(IndexError):
            bs.set(10)
        with pytest.raises(IndexError):
            bs.test(-1)

    def test_word_boundary_exactly_64(self):
        bs = BitSet(64)
        bs.set(63)
        assert bs.test(63)
        with pytest.raises(IndexError):
            bs.set(64)


class TestBulkOps:
    def test_set_many(self):
        bs = BitSet(1000)
        idx = np.array([1, 5, 999, 64, 65])
        bs.set_many(idx)
        assert sorted(bs.to_indices()) == [1, 5, 64, 65, 999]

    def test_set_many_empty(self):
        bs = BitSet(10)
        bs.set_many(np.array([], dtype=np.int64))
        assert len(bs) == 0

    def test_set_many_duplicates(self):
        bs = BitSet(10)
        bs.set_many(np.array([3, 3, 3]))
        assert len(bs) == 1

    def test_set_many_out_of_range(self):
        bs = BitSet(10)
        with pytest.raises(IndexError):
            bs.set_many(np.array([5, 10]))

    def test_reset(self):
        bs = BitSet(100)
        bs.set_many(np.arange(50))
        bs.reset()
        assert len(bs) == 0


class TestAlgebra:
    def make(self, indices, size=128):
        bs = BitSet(size)
        for i in indices:
            bs.set(i)
        return bs

    def test_or(self):
        a, b = self.make([1, 2]), self.make([2, 3])
        assert sorted((a | b).to_indices()) == [1, 2, 3]

    def test_and(self):
        a, b = self.make([1, 2, 64]), self.make([2, 64, 99])
        assert sorted((a & b).to_indices()) == [2, 64]

    def test_xor(self):
        a, b = self.make([1, 2]), self.make([2, 3])
        assert sorted((a ^ b).to_indices()) == [1, 3]

    def test_sub(self):
        a, b = self.make([1, 2, 3]), self.make([2])
        assert sorted((a - b).to_indices()) == [1, 3]

    def test_ior(self):
        a, b = self.make([1]), self.make([2])
        a |= b
        assert sorted(a.to_indices()) == [1, 2]

    def test_intersects(self):
        a, b, c = self.make([1, 70]), self.make([70]), self.make([2])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitSet(10) | BitSet(20)

    def test_equality(self):
        assert self.make([1, 2]) == self.make([1, 2])
        assert self.make([1]) != self.make([2])
        assert BitSet(10) != BitSet(11)

    def test_copy_is_independent(self):
        a = self.make([5])
        b = a.copy()
        b.set(6)
        assert not a.test(6)
        assert b.test(5)

    def test_binary_ops_do_not_mutate(self):
        a, b = self.make([1]), self.make([2])
        _ = a | b
        assert list(a) == [1] and list(b) == [2]
