"""Tests for RuntimeConfig and the result types."""

import pytest

from repro.config import (
    RedistributionPolicy,
    RuntimeConfig,
    Strategy,
    TestCondition,
)
from repro.core.results import ProgramResult
from repro.core.rlrpd import run_blocked
from repro.core.runner import run_program
from repro.errors import ConfigurationError
from repro.workloads.synthetic import chain_loop, fully_parallel_loop


class TestRuntimeConfig:
    def test_nrd_constructor(self):
        cfg = RuntimeConfig.nrd()
        assert cfg.strategy is Strategy.BLOCKED
        assert cfg.redistribution is RedistributionPolicy.NEVER
        assert cfg.label() == "NRD"

    def test_rd_constructor(self):
        assert RuntimeConfig.rd().label() == "RD"

    def test_adaptive_constructor(self):
        assert RuntimeConfig.adaptive().label() == "RD-adaptive"

    def test_sw_constructor(self):
        cfg = RuntimeConfig.sw(32)
        assert cfg.strategy is Strategy.SLIDING_WINDOW
        assert cfg.window_size == 32
        assert cfg.label() == "SW(w=32)"

    def test_sw_auto_label(self):
        assert RuntimeConfig.sw().label() == "SW(w=auto)"

    def test_sw_defaults_to_never_redistribution(self):
        cfg = RuntimeConfig(strategy=Strategy.SLIDING_WINDOW, window_size=8)
        assert cfg.redistribution is RedistributionPolicy.NEVER

    def test_sw_explicit_never_is_accepted(self):
        cfg = RuntimeConfig(
            strategy=Strategy.SLIDING_WINDOW,
            redistribution=RedistributionPolicy.NEVER,
            window_size=8,
        )
        assert cfg.redistribution is RedistributionPolicy.NEVER

    @pytest.mark.parametrize(
        "policy", [RedistributionPolicy.ALWAYS, RedistributionPolicy.ADAPTIVE]
    )
    def test_sw_rejects_explicit_redistribution(self, policy):
        with pytest.raises(ConfigurationError, match="sliding-window"):
            RuntimeConfig(
                strategy=Strategy.SLIDING_WINDOW,
                redistribution=policy,
                window_size=8,
            )

    def test_blocked_defaults_to_adaptive_redistribution(self):
        assert RuntimeConfig().redistribution is RedistributionPolicy.ADAPTIVE

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig.sw(0)

    def test_invalid_max_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(max_stages=0)

    def test_with_options(self):
        cfg = RuntimeConfig.adaptive().with_options(feedback_balancing=True)
        assert cfg.feedback_balancing
        assert cfg.redistribution is RedistributionPolicy.ADAPTIVE

    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.condition is TestCondition.COPY_IN
        assert cfg.on_demand_checkpoint


class TestProgramResult:
    def test_pr_formula(self):
        """PR = instantiations / (restarts + instantiations), Section 5.2."""
        prog = run_program(
            [chain_loop(64, targets=[32]) for _ in range(3)],
            4,
            RuntimeConfig.nrd(),
        )
        assert prog.n_instantiations == 3
        assert prog.n_restarts == 3  # one failed stage per instantiation
        assert prog.parallelism_ratio == pytest.approx(3 / 6)

    def test_fully_parallel_pr_one(self):
        prog = run_program(
            [fully_parallel_loop(32) for _ in range(2)], 4, RuntimeConfig.nrd()
        )
        assert prog.parallelism_ratio == 1.0

    def test_aggregate_times(self):
        runs = [fully_parallel_loop(32) for _ in range(2)]
        prog = run_program(runs, 4, RuntimeConfig.nrd())
        assert prog.total_time == pytest.approx(
            sum(r.total_time for r in prog.runs)
        )
        assert prog.sequential_work == pytest.approx(64.0)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            run_program([], 4)

    def test_empty_programresult_degenerate(self):
        prog = ProgramResult("x", "NRD", 4)
        assert prog.parallelism_ratio == 1.0
        assert prog.speedup == 1.0

    def test_summary(self):
        prog = run_program([fully_parallel_loop(16)], 2, RuntimeConfig.nrd())
        s = prog.summary()
        assert s["instantiations"] == 1
        assert s["PR"] == 1.0


class TestRunResultMetrics:
    def test_pr_single_run(self):
        res = run_blocked(chain_loop(64, targets=[32]), 4, RuntimeConfig.nrd())
        assert res.parallelism_ratio == pytest.approx(0.5)

    def test_stage_spans_sum_to_total(self):
        res = run_blocked(chain_loop(64, targets=[32]), 4, RuntimeConfig.nrd())
        assert sum(res.stage_spans()) == pytest.approx(res.total_time)

    def test_overhead_plus_work_consistency(self):
        res = run_blocked(fully_parallel_loop(64), 4, RuntimeConfig.nrd())
        from repro.machine.timeline import Category

        work_span = res.timeline.total_category(Category.WORK)
        assert res.overhead_time == pytest.approx(res.total_time - work_span)
