"""The execution-backend layer: registry, fork guards, bulk hot paths.

Bit-exact serial/fork parity over the full strategy matrix lives in
``test_engine_parity.py``; this file covers the backend machinery itself
-- selection, defaults, engine-bypassing-runner guards -- and the
vectorized view/shadow/context operations the backends and the commit
phase rely on.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.config import RuntimeConfig
from repro.core.analysis import _mixed_sets
from repro.core.backend import (
    backend_names,
    get_default_backend,
    make_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.core.ddg import extract_ddg
from repro.core.executor import execute_block, make_processor_state
from repro.core.lrpd import run_doall_lrpd
from repro.core.runner import parallelize
from repro.errors import ConfigurationError
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.machine import Machine
from repro.machine.memory import (
    DensePrivateView,
    SharedArray,
    SparsePrivateView,
)
from repro.shadow import make_shadow
from repro.util.blocks import Block
from repro.workloads.synthetic import fully_parallel_loop


# -- registry and defaults --------------------------------------------------------


class TestBackendSelection:
    def test_known_backends(self):
        assert backend_names() == ["fork", "serial", "shm", "threads"]

    def test_serial_is_the_default(self):
        assert get_default_backend() == "serial"
        assert resolve_backend_name(RuntimeConfig.nrd()) == "serial"

    def test_config_overrides_default(self):
        assert resolve_backend_name(RuntimeConfig.nrd(backend="fork")) == "fork"

    def test_use_backend_scopes_the_default(self):
        with use_backend("fork"):
            assert resolve_backend_name(RuntimeConfig.nrd()) == "fork"
            # An explicit config setting still wins.
            assert (
                resolve_backend_name(RuntimeConfig.nrd(backend="serial"))
                == "serial"
            )
        assert get_default_backend() == "serial"

    def test_unknown_default_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            set_default_backend("gpu")

    def test_unknown_config_backend_fails_at_engine_construction(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            parallelize(
                fully_parallel_loop(64), 4, RuntimeConfig.nrd(backend="gpu")
            )

    def test_backend_workers_validated(self):
        with pytest.raises(ConfigurationError, match="backend_workers"):
            RuntimeConfig.nrd(backend_workers=0)

    def test_make_backend_resolves_config(self):
        class _Eng:
            config = RuntimeConfig.nrd(backend="serial")

        assert make_backend(_Eng()).name == "serial"


class TestForkRuns:
    def test_fork_run_matches_serial(self):
        serial = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="serial")
        )
        fork = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="fork")
        )
        assert fork.memory.equals(serial.memory.snapshot())
        assert repr(fork.total_time) == repr(serial.total_time)
        assert fork.n_stages == serial.n_stages

    def test_backend_workers_bound_respected(self):
        result = parallelize(
            fully_parallel_loop(64), 4,
            RuntimeConfig.adaptive(backend="fork", backend_workers=1),
        )
        expected = np.arange(64, dtype=np.float64) * 2.0 + 1.0
        assert np.array_equal(result.memory["A"].data, expected)


# -- the shared-memory backend ----------------------------------------------------


class TestShmRuns:
    def test_shm_run_matches_serial_dense(self):
        serial = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="serial")
        )
        shm = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="shm")
        )
        assert shm.memory.equals(serial.memory.snapshot())
        assert repr(shm.total_time) == repr(serial.total_time)
        assert shm.n_stages == serial.n_stages

    def test_shm_run_matches_serial_multi_stage(self):
        # A dependence-bearing loop drives restores, redistribution and the
        # residue (sparse/untested) paths across many stages.
        from repro.workloads.synthetic import (
            chain_loop,
            geometric_chain_targets,
        )

        loop = lambda: chain_loop(128, geometric_chain_targets(128, 0.5))  # noqa: E731
        serial = parallelize(loop(), 4, RuntimeConfig.adaptive(backend="serial"))
        shm = parallelize(loop(), 4, RuntimeConfig.adaptive(backend="shm"))
        assert shm.memory.equals(serial.memory.snapshot())
        assert repr(shm.total_time) == repr(serial.total_time)
        assert shm.n_stages == serial.n_stages

    def test_shm_backend_workers_bound_respected(self):
        result = parallelize(
            fully_parallel_loop(64), 4,
            RuntimeConfig.adaptive(backend="shm", backend_workers=2),
        )
        expected = np.arange(64, dtype=np.float64) * 2.0 + 1.0
        assert np.array_equal(result.memory["A"].data, expected)

    def test_shm_residue_fallback_matches_serial(self, monkeypatch):
        # Force every array down the pickled-residue path (as if no dtype
        # were shm-able): parity must not depend on the zero-copy plane.
        import repro.core.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_shmable", lambda data: False)
        serial = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="serial")
        )
        shm = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="shm")
        )
        assert shm.memory.equals(serial.memory.snapshot())
        assert repr(shm.total_time) == repr(serial.total_time)


# -- the in-process threads backend ------------------------------------------------


class TestThreadsRuns:
    def test_threads_run_matches_serial(self):
        serial = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="serial")
        )
        threads = parallelize(
            fully_parallel_loop(128), 4, RuntimeConfig.adaptive(backend="threads")
        )
        assert threads.memory.equals(serial.memory.snapshot())
        assert repr(threads.total_time) == repr(serial.total_time)
        assert threads.n_stages == serial.n_stages

    def test_threads_run_matches_serial_multi_stage(self):
        # Dependence-bearing loop: restores, redistribution and the
        # untested-array protocol across many stages.
        from repro.workloads.synthetic import (
            chain_loop,
            geometric_chain_targets,
        )

        loop = lambda: chain_loop(128, geometric_chain_targets(128, 0.5))  # noqa: E731
        serial = parallelize(loop(), 4, RuntimeConfig.adaptive(backend="serial"))
        threads = parallelize(loop(), 4, RuntimeConfig.adaptive(backend="threads"))
        assert threads.memory.equals(serial.memory.snapshot())
        assert repr(threads.total_time) == repr(serial.total_time)
        assert threads.n_stages == serial.n_stages

    def test_threads_backend_workers_bound_respected(self):
        result = parallelize(
            fully_parallel_loop(64), 4,
            RuntimeConfig.adaptive(backend="threads", backend_workers=1),
        )
        expected = np.arange(64, dtype=np.float64) * 2.0 + 1.0
        assert np.array_equal(result.memory["A"].data, expected)

    def test_threads_surfaces_backend_and_gil_mode(self):
        import sys

        result = parallelize(
            fully_parallel_loop(64), 4, RuntimeConfig.adaptive(backend="threads")
        )
        assert result.backend == "threads"
        probe = getattr(sys, "_is_gil_enabled", None)
        expected_mode = (
            "free-threaded" if probe is not None and not probe() else "gil"
        )
        assert result.thread_mode == expected_mode
        summary = result.summary()
        assert summary["backend"] == "threads"
        assert summary["thread_mode"] == expected_mode
        # Serial runs keep their summaries unchanged (no backend keys).
        serial = parallelize(
            fully_parallel_loop(64), 4, RuntimeConfig.adaptive(backend="serial")
        )
        assert "backend" not in serial.summary()
        assert "thread_mode" not in serial.summary()

    def test_threads_rejects_os_chaos(self):
        from repro.faults.os_chaos import OsChaosPlan

        with pytest.raises(ConfigurationError, match="threads"):
            parallelize(
                fully_parallel_loop(64), 4,
                RuntimeConfig.adaptive(
                    backend="threads",
                    os_chaos=OsChaosPlan.kill_workers(0, [1]),
                ),
            )

    def test_threads_pool_reused_across_stages(self):
        # The pool is persistent: a multi-stage run must not spawn a
        # fresh set of worker threads per stage.
        import repro.core.threads as threads_mod

        started = []
        orig = threads_mod.ThreadsBackend._start_worker

        def counting(self, worker):
            started.append(worker.slot)
            return orig(self, worker)

        from repro.workloads.synthetic import (
            chain_loop,
            geometric_chain_targets,
        )

        threads_mod.ThreadsBackend._start_worker = counting
        try:
            result = parallelize(
                chain_loop(128, geometric_chain_targets(128, 0.5)), 4,
                RuntimeConfig.adaptive(backend="threads", backend_workers=2),
            )
        finally:
            threads_mod.ThreadsBackend._start_worker = orig
        assert result.n_stages > 1
        assert len(started) == 2


class TestShmSegmentLifecycle:
    # The test intentionally holds a numpy view across release(): unlink
    # must win even when the mapping cannot close yet.  CPython's
    # SharedMemory.__del__ then complains about the exported pointer at GC
    # time; that is the scenario under test, not a leak.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnraisableExceptionWarning"
    )
    def test_release_is_idempotent_and_names_vanish(self):
        from multiprocessing import shared_memory

        from repro.core.shm import ShmArena

        arena = ShmArena()
        view = arena.alloc((16,), np.float64)
        view[:] = 3.0
        seg = arena.new_segment(256)
        names = arena.segment_names()
        assert len(names) == 2
        arena.drop_segment(seg)  # early unlink (scratch resize path)
        arena.release()
        arena.release()  # idempotent
        assert arena.released
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_worker_crash_degrades_and_leaves_no_leaked_segments(self, monkeypatch):
        # A body that SIGKILLs every worker it reaches is a poison block:
        # the supervisor degrades shm -> fork -> serial, the run still
        # completes with the serial answer, and nothing is left behind in
        # /dev/shm -- every arena segment is unlinked even though workers
        # never replied.
        import os
        import signal
        from multiprocessing import shared_memory

        import repro.core.shm as shm_mod
        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        created: list[str] = []
        orig_new = shm_mod.ShmArena._new_shm

        def spying_new(self, nbytes):
            seg = orig_new(self, nbytes)
            created.append(seg.name)
            return seg

        monkeypatch.setattr(shm_mod.ShmArena, "_new_shm", spying_new)

        parent_pid = os.getpid()

        def body(ctx, i):
            if os.getpid() != parent_pid:  # only in a forked worker
                os.kill(os.getpid(), signal.SIGKILL)
            ctx.load("A", i)
            ctx.store("A", i, float(i))
            ctx.work(1.0)

        def make_loop():
            return SpeculativeLoop(
                name="crash-mid-stage",
                n_iterations=32,
                body=body,
                arrays=[ArraySpec("A", np.zeros(32, dtype=np.float64))],
            )

        result = parallelize(make_loop(), 4, RuntimeConfig.nrd(backend="shm"))
        chain = [
            (d["from"], d["to"])
            for d in result.supervision["supervise.degradations"]
        ]
        assert chain == [("shm", "fork"), ("fork", "serial")]
        serial = parallelize(make_loop(), 4, RuntimeConfig.nrd(backend="serial"))
        assert result.memory.equals(serial.memory.snapshot())
        assert repr(result.total_time) == repr(serial.total_time)
        assert created, "the shm backend allocated no segments?"
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# -- engine-bypassing runners refuse non-serial backends --------------------------


class TestSerialOnlyGuards:
    def test_doall_lrpd_rejects_fork(self):
        with pytest.raises(ConfigurationError, match="serial execution backend"):
            run_doall_lrpd(
                fully_parallel_loop(64), 4, RuntimeConfig.nrd(backend="fork")
            )

    def test_ddg_extraction_rejects_fork(self):
        with pytest.raises(ConfigurationError, match="serial execution backend"):
            extract_ddg(
                fully_parallel_loop(64), 4, RuntimeConfig.sw(backend="fork")
            )

    def test_guard_honors_scoped_default(self):
        with use_backend("fork"):
            with pytest.raises(ConfigurationError, match="serial execution backend"):
                run_doall_lrpd(fully_parallel_loop(64), 4, RuntimeConfig.nrd())

    def test_serial_still_accepted(self):
        result = run_doall_lrpd(
            fully_parallel_loop(64), 4, RuntimeConfig.nrd(backend="serial")
        )
        assert result.n_stages == 1


# -- vectorized private-view operations -------------------------------------------


class TestBulkViews:
    @pytest.mark.parametrize("cls", [DensePrivateView, SparsePrivateView])
    def test_written_arrays_matches_written_items(self, cls):
        view = cls(SharedArray("A", np.arange(16, dtype=np.float64)))
        for index, value in [(3, 1.5), (11, -2.0), (3, 4.25), (7, 0.5)]:
            view.store(index, value)
        indices, values = view.written_arrays()
        assert list(indices) == sorted(dict(view.written_items()))
        assert dict(zip(indices.tolist(), values.tolist())) == dict(
            view.written_items()
        )

    @pytest.mark.parametrize("cls", [DensePrivateView, SparsePrivateView])
    def test_export_absorb_written_round_trip(self, cls):
        shared = SharedArray("A", np.arange(16, dtype=np.float64))
        src, dst = cls(shared), cls(shared)
        for index, value in [(0, 9.0), (5, -1.25), (15, 3.5)]:
            src.store(index, value)
        dst.absorb_written(src.export_written())
        assert dict(dst.written_items()) == dict(src.written_items())
        # Absorbed writes behave like local ones: loads see them.
        assert dst.load(5)[0] == -1.25

    @pytest.mark.parametrize("cls", [DensePrivateView, SparsePrivateView])
    def test_store_many_last_value_wins(self, cls):
        view = cls(SharedArray("A", np.zeros(8, dtype=np.float64)))
        view.store_many(
            np.array([2, 5, 2], dtype=np.int64), np.array([1.0, 2.0, 3.0])
        )
        assert dict(view.written_items()) == {2: 3.0, 5: 2.0}

    @pytest.mark.parametrize("cls", [DensePrivateView, SparsePrivateView])
    def test_load_many_counts_distinct_copy_ins(self, cls):
        view = cls(SharedArray("A", np.arange(8, dtype=np.float64)))
        values, copied = view.load_many(np.array([1, 3, 1, 3], dtype=np.int64))
        assert list(values) == [1.0, 3.0, 1.0, 3.0]
        assert copied == 2
        _, copied_again = view.load_many(np.array([1, 3], dtype=np.int64))
        assert copied_again == 0


class TestBulkShadows:
    @pytest.mark.parametrize("sparse", [False, True])
    def test_bulk_marks_match_scalar(self, sparse):
        bulk = make_shadow(32, sparse=sparse)
        scalar = make_shadow(32, sparse=sparse)
        reads = np.array([4, 9, 4], dtype=np.int64)
        writes = np.array([9, 17], dtype=np.int64)
        updates = np.array([21], dtype=np.int64)
        bulk.mark_write_many(writes)
        bulk.mark_read_many(reads)
        bulk.mark_update_many(updates)
        for i in writes.tolist():
            scalar.mark_write(i)
        for i in reads.tolist():
            scalar.mark_read(i)
        for i in updates.tolist():
            scalar.mark_update(i)
        assert bulk.write_set() == scalar.write_set()
        assert bulk.exposed_read_set() == scalar.exposed_read_set()
        assert bulk.update_set() == scalar.update_set()
        assert bulk.has_updates() and scalar.has_updates()

    @pytest.mark.parametrize("sparse", [False, True])
    def test_bulk_read_is_one_snapshot(self, sparse):
        # A bulk read sees prior writes but none of its own batch: index 4
        # was written before, so it is covered; 9 was not, so it is exposed
        # even though the same batch "reads it twice".
        shadow = make_shadow(32, sparse=sparse)
        shadow.mark_write_many(np.array([4], dtype=np.int64))
        shadow.mark_read_many(np.array([4, 9, 9], dtype=np.int64))
        assert shadow.exposed_read_set() == {9}

    @pytest.mark.parametrize("sparse", [False, True])
    def test_export_absorb_marks_round_trip(self, sparse):
        src = make_shadow(32, sparse=sparse)
        src.mark_write(3)
        src.mark_read(7)
        src.mark_update(11)
        dst = make_shadow(32, sparse=sparse)
        dst.mark_read(1)
        dst.absorb_marks(src.export_marks())
        assert dst.write_set() == {3}
        assert dst.exposed_read_set() == {1, 7}
        assert dst.update_set() == {11}


class TestMixedSetsEarlyOut:
    def test_no_updates_short_circuits(self):
        shadow = make_shadow(16, sparse=False)
        shadow.mark_write(2)
        shadow.mark_read(5)
        assert _mixed_sets([(0, {"A": shadow})]) == {}

    def test_mixed_elements_found(self):
        a = make_shadow(16, sparse=False)
        a.mark_update(3)
        a.mark_update(8)
        b = make_shadow(16, sparse=True)
        b.mark_write(3)
        assert _mixed_sets([(0, {"A": a}), (1, {"A": b})]) == {"A": {3}}

    def test_pure_reductions_not_mixed(self):
        a = make_shadow(16, sparse=False)
        a.mark_update(3)
        b = make_shadow(16, sparse=False)
        b.mark_update(3)
        assert _mixed_sets([(0, {"A": a}), (1, {"A": b})]) == {}


# -- bulk SpeculativeContext access ------------------------------------------------


def _bulk_pair(n: int) -> tuple[SpeculativeLoop, SpeculativeLoop]:
    """The same gather/scale loop written element-wise and vectorized."""

    def scalar_body(ctx, i):
        total = ctx.load("A", i) + ctx.load("A", (i + 1) % n)
        ctx.store("B", i, total)
        ctx.store("B", (i + n // 2) % n, total * 0.5)
        ctx.work(1.0)

    def bulk_body(ctx, i):
        values = ctx.load_many("A", np.array([i, (i + 1) % n], dtype=np.int64))
        total = float(values[0] + values[1])
        ctx.store_many(
            "B",
            np.array([i, (i + n // 2) % n], dtype=np.int64),
            np.array([total, total * 0.5]),
        )
        ctx.work(1.0)

    def make(body, name):
        return SpeculativeLoop(
            name=name,
            n_iterations=n,
            body=body,
            arrays=[
                ArraySpec("A", np.arange(n, dtype=np.float64)),
                ArraySpec("B", np.zeros(n, dtype=np.float64)),
            ],
        )

    return make(scalar_body, "bulk-scalar"), make(bulk_body, "bulk-vector")


class TestContextBulkOps:
    def test_bulk_body_matches_scalar_body(self):
        scalar_loop, bulk_loop = _bulk_pair(64)
        scalar = parallelize(scalar_loop, 4, RuntimeConfig.nrd())
        bulk = parallelize(bulk_loop, 4, RuntimeConfig.nrd())
        assert bulk.memory.equals(scalar.memory.snapshot())
        assert bulk.n_stages == scalar.n_stages
        assert bulk.total_time == pytest.approx(scalar.total_time)

    def test_bulk_charges_match_scalar(self):
        scalar_loop, bulk_loop = _bulk_pair(16)

        def run(loop):
            machine = Machine(1, memory=loop.materialize())
            machine.begin_stage()
            state = make_processor_state(machine, loop, 0)
            execute_block(machine, loop, state, Block(0, 0, 16), None)
            return machine.timeline.total_time()

        assert run(bulk_loop) == pytest.approx(run(scalar_loop))

    def test_bulk_access_rejects_reduction_arrays(self):
        from repro.core.executor import SpeculativeContext
        from repro.workloads.synthetic import reduction_loop

        loop = reduction_loop(16)
        machine = Machine(1, memory=loop.materialize())
        state = make_processor_state(machine, loop, 0)
        ctx = SpeculativeContext(machine, loop, state, None)
        ctx.begin_iteration(0)
        indices = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="reduction"):
            ctx.load_many("H", indices)
        with pytest.raises(ValueError, match="reduction"):
            ctx.store_many("H", indices, np.array([1.0, 2.0]))


# -- CLI ---------------------------------------------------------------------------


class TestCliBackend:
    def test_run_with_fork_backend(self, capsys):
        assert cli_main(["run", "doall", "-p", "4", "--backend", "fork"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out.lower() or out

    def test_run_with_shm_backend(self, capsys):
        assert cli_main(["run", "doall", "-p", "4", "--backend", "shm"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out.lower() or out

    def test_run_with_threads_backend(self, capsys):
        assert cli_main(["run", "doall", "-p", "4", "--backend", "threads"]) == 0
        out = capsys.readouterr().out
        # The stage-trace title names the backend and its GIL mode.
        assert "backend threads" in out

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "doall", "-p", "4", "--backend", "gpu"])
