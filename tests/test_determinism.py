"""Determinism: every run of the simulator is bit-for-bit repeatable.

The whole reproduction rests on this -- the virtual machine must contain
no hidden global state, no wall-clock, no unseeded randomness.
"""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.runner import parallelize, run_program
from repro.errors import SpeculationError
from repro.workloads.spice import SPICE_DECKS, make_dcdcmp15_loop
from repro.workloads.synthetic import random_dependence_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop


def snapshot(result):
    return {
        "stages": [
            (s.index, s.committed_iterations, s.remaining_after, s.failed,
             round(s.span, 12))
            for s in result.stages
        ],
        "total": round(result.total_time, 12),
        "work": round(result.sequential_work, 12),
        "memory": {k: v.tobytes() for k, v in result.memory.snapshot().items()},
    }


class TestRunDeterminism:
    @pytest.mark.parametrize("cfg", [
        RuntimeConfig.nrd(),
        RuntimeConfig.adaptive(feedback_balancing=False),
        RuntimeConfig.sw(window_size=24),
    ], ids=lambda c: c.label())
    def test_identical_runs(self, cfg):
        def make():
            return random_dependence_loop(200, 0.15, 6, seed=77)

        a = snapshot(parallelize(make(), 8, cfg))
        b = snapshot(parallelize(make(), 8, cfg))
        assert a == b

    def test_workload_generators_are_pure(self):
        deck = dataclasses.replace(NLFILT_DECKS["medium-deps"], n=400)
        a = snapshot(parallelize(make_nlfilt_loop(deck, instance=2), 8))
        b = snapshot(parallelize(make_nlfilt_loop(deck, instance=2), 8))
        assert a == b

    def test_ddg_extraction_deterministic(self):
        deck = dataclasses.replace(SPICE_DECKS["adder.128"], lu_rows=430)
        e1 = extract_ddg(make_dcdcmp15_loop(deck), 8, RuntimeConfig.sw(64))
        e2 = extract_ddg(make_dcdcmp15_loop(deck), 8, RuntimeConfig.sw(64))
        assert sorted(
            (e.src, e.dst, e.kind.value, e.array, e.index) for e in e1.edges
        ) == sorted(
            (e.src, e.dst, e.kind.value, e.array, e.index) for e in e2.edges
        )

    def test_program_runs_deterministic(self):
        deck = dataclasses.replace(NLFILT_DECKS["sparse-deps"], n=400)

        def instantiations():
            return (make_nlfilt_loop(deck, instance=k) for k in range(3))

        cfg = RuntimeConfig.adaptive(feedback_balancing=True)
        p1 = run_program(instantiations(), 8, cfg)
        p2 = run_program(instantiations(), 8, cfg)
        assert p1.parallelism_ratio == p2.parallelism_ratio
        assert p1.total_time == pytest.approx(p2.total_time, rel=0, abs=0)


class TestSafetyValves:
    def test_max_stages_raises(self):
        loop = random_dependence_loop(64, 0.4, 4, seed=5)
        with pytest.raises(SpeculationError, match="max_stages"):
            parallelize(loop, 8, RuntimeConfig.nrd(max_stages=1))

    def test_max_stages_generous_enough_normally(self):
        loop = random_dependence_loop(64, 0.4, 4, seed=5)
        result = parallelize(loop, 8, RuntimeConfig.nrd())
        assert result.n_stages <= 8
