"""Unit tests for the shared stage helpers."""

import numpy as np
import pytest

from repro.core.analysis import analyze_stage
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    charge_redistribution,
    charge_redistribution_topo,
)
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage, SharedArray
from repro.machine.timeline import Category
from repro.machine.topology import Topology
from repro.shadow import DenseShadow
from repro.util.blocks import Block


def machine_with_stage(p=4, topology=None, **costs):
    m = Machine(
        p,
        costs=CostModel(**costs) if costs else None,
        memory=MemoryImage([SharedArray("B", np.arange(8.0))]),
        topology=topology,
    )
    m.begin_stage()
    return m


class TestCheckpointCharge:
    def test_full_checkpoint_parallelized(self):
        m = machine_with_stage(p=4, checkpoint_per_elem=1.0)
        ckpt = CheckpointManager(m.memory, ["B"], on_demand=False)
        charged = charge_checkpoint_begin(m, ckpt)
        assert charged == 8
        assert m.timeline.current.category_total(Category.CHECKPOINT) == (
            pytest.approx(8 / 4)
        )

    def test_on_demand_charges_nothing_up_front(self):
        m = machine_with_stage()
        ckpt = CheckpointManager(m.memory, ["B"], on_demand=True)
        assert charge_checkpoint_begin(m, ckpt) == 0
        assert m.timeline.current.span() == 0.0

    def test_none_manager(self):
        m = machine_with_stage()
        assert charge_checkpoint_begin(m, None) == 0


class TestAnalysisCharge:
    def test_per_group_charges(self):
        m = machine_with_stage(p=2, analysis_per_ref=1.0)
        sh0, sh1 = DenseShadow(8), DenseShadow(8)
        sh0.mark_write(0)
        sh0.mark_write(1)
        sh1.mark_read(2)
        analysis = analyze_stage([(0, {"A": sh0}), (1, {"A": sh1})])
        charge_analysis(m, analysis, [0, 1])
        # 2 groups -> log2(2) = 1; proc 0 has 2 refs, proc 1 has 1.
        assert m.timeline.current.proc_time(0) == pytest.approx(2.0)
        assert m.timeline.current.proc_time(1) == pytest.approx(1.0)


class TestRedistributionCharges:
    def test_flat_per_iteration(self):
        m = machine_with_stage(p=2)
        migrated = charge_redistribution(m, [(0, 3), (1, 5)], ell=2.0)
        assert migrated == 8
        assert m.timeline.current.proc_time(1) == 10.0

    def test_topo_skips_resident_iterations(self):
        topo = Topology.ring(4, remote_factor=1.0)
        m = machine_with_stage(p=4, topology=topo, ell=1.0)
        owner = np.array([0, 0, 1, 1])
        blocks = [Block(0, 0, 2), Block(2, 2, 4)]  # proc 0 keeps, proc 2 takes
        migrated, distance = charge_redistribution_topo(m, blocks, owner)
        assert migrated == 2  # only iterations 2,3 moved (1 -> 2)
        assert distance == 2.0
        assert m.timeline.current.proc_time(0) == 0.0
        assert m.timeline.current.proc_time(2) == pytest.approx(2 * (1 + 1))

    def test_topo_first_touch_free(self):
        m = machine_with_stage(p=2, topology=Topology.ring(2))
        owner = np.array([-1, -1])
        migrated, distance = charge_redistribution_topo(
            m, [Block(0, 0, 2)], owner
        )
        assert migrated == 0
        assert distance == 0.0

    def test_topo_none_machine_flat_cost(self):
        m = machine_with_stage(p=2, ell=1.0)  # no topology attached
        owner = np.array([1, 1])
        migrated, distance = charge_redistribution_topo(
            m, [Block(0, 0, 2)], owner
        )
        assert migrated == 2
        assert distance == 0.0
        assert m.timeline.current.proc_time(0) == pytest.approx(2.0)
