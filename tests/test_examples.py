"""Smoke tests: every example script runs to completion and prints output.

The examples are part of the public surface (README points at them); a
refactor that breaks an import or an API call must fail the suite, not the
first user.
"""

import importlib.util
import io
import pathlib
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    module = load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output.strip()) > 0, f"{path.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 5


def test_quickstart_verifies_against_sequential():
    module = load_module(EXAMPLES_DIR / "quickstart.py")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    assert "verified" in buffer.getvalue()
