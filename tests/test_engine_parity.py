"""Cross-driver parity: the engine must reproduce the seed drivers bit-exactly.

``tests/data/engine_golden.json`` was captured from the pre-engine
per-driver implementations on fixed seeds.  Every case here re-runs the
same (workload, config, fault plan) through the :class:`StageEngine`
strategies and demands identical observables: final-memory hash, stage
counts, committed-iteration sequences and virtual-time totals down to the
float's repr.

Each case runs under every execution backend (:mod:`repro.core.backend`):
the golden values were captured from in-process serial execution, so a
passing ``fork`` run proves the worker-pool dispatch, delta shipping and
in-order merge are bit-identical to serial -- results, events and virtual
time alike.
"""

import json

import pytest

from repro.core.backend import backend_names, use_backend
from repro.obs.metrics import use_instrumentation
from tests.engine_parity_cases import CASES, GOLDEN_PATH, run_case

GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_matrix_is_complete():
    assert sorted(GOLDEN) == sorted(CASES)


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("name", sorted(CASES))
def test_bit_identical_to_seed(name, backend):
    with use_backend(backend):
        got = run_case(name)
    want = GOLDEN[name]
    for key in want:
        assert got[key] == want[key], (
            f"{name} [{backend}]: {key} diverged from seed behavior"
        )
    assert got == want


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("name", sorted(CASES))
def test_bit_identical_fully_instrumented(name, backend):
    """Metrics + span collection must not perturb any observable: the
    whole golden matrix re-runs with full instrumentation on (scoped via
    the process-wide default, so no driver needs to know) and must still
    match the seed bit-for-bit under both backends."""
    with use_backend(backend), use_instrumentation(metrics=True, spans=True):
        got = run_case(name)
    want = GOLDEN[name]
    for key in want:
        assert got[key] == want[key], (
            f"{name} [{backend}, instrumented]: {key} diverged from seed behavior"
        )
    assert got == want
