"""Tests for the classic doall LRPD baseline."""

import pytest

from repro.config import RuntimeConfig, TestCondition
from repro.core.lrpd import run_doall_lrpd
from repro.errors import ConfigurationError
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import SpeculativeLoop
from repro.workloads.synthetic import (
    chain_loop,
    copyin_loop,
    fully_parallel_loop,
    privatizable_loop,
    reduction_loop,
)
from tests.conftest import assert_matches_sequential


class TestPassingLoops:
    def test_fully_parallel_commits(self):
        loop = fully_parallel_loop(256)
        res = run_doall_lrpd(loop, 8)
        assert res.n_stages == 1
        assert res.n_restarts == 0
        assert res.speedup > 5.0
        assert_matches_sequential(res, loop)

    def test_privatizable_passes(self):
        loop = privatizable_loop(64)
        res = run_doall_lrpd(loop, 8)
        assert res.n_restarts == 0
        assert_matches_sequential(res, loop)

    def test_reduction_passes(self):
        loop = reduction_loop(64, n_bins=4, seed=0)
        res = run_doall_lrpd(loop, 4)
        assert res.n_restarts == 0
        assert_matches_sequential(res, loop)


class TestFailingLoops:
    def test_single_dependence_forces_serial_rerun(self):
        """The R-LRPD motivation: one cross-processor flow dependence makes
        the doall test re-execute everything sequentially."""
        loop = chain_loop(64, targets=[32])
        res = run_doall_lrpd(loop, 8)
        assert res.n_stages == 2
        assert res.n_restarts == 1
        assert res.speedup < 1.0  # speculation + serial = slowdown
        assert_matches_sequential(res, loop)

    def test_failed_run_restores_untested_state(self):
        import numpy as np

        from repro.loopir.loop import ArraySpec

        def body(ctx, i):
            x = ctx.load("A", max(0, i - 1))
            ctx.store("A", i, x + 1.0)
            ctx.store("B", i, float(i))

        loop = SpeculativeLoop(
            "mix", 16, body,
            arrays=[
                ArraySpec("A", np.zeros(16), tested=True),
                ArraySpec("B", np.zeros(16), tested=False),
            ],
        )
        res = run_doall_lrpd(loop, 4)
        assert res.n_restarts == 1
        assert_matches_sequential(res, loop)

    def test_pr_half_on_failure(self):
        loop = chain_loop(64, targets=[32])
        res = run_doall_lrpd(loop, 8)
        assert res.parallelism_ratio == pytest.approx(0.5)


class TestConditions:
    def test_copyin_qualifies_more_loops(self):
        loop = copyin_loop(64)
        relaxed = run_doall_lrpd(
            loop, 8, RuntimeConfig.nrd(condition=TestCondition.COPY_IN)
        )
        strict = run_doall_lrpd(
            copyin_loop(64), 8,
            RuntimeConfig.nrd(condition=TestCondition.PRIVATIZATION),
        )
        assert relaxed.n_restarts == 0
        assert strict.n_restarts == 1
        # Both still produce correct state.
        assert_matches_sequential(relaxed, loop)
        assert_matches_sequential(strict, copyin_loop(64))


class TestValidation:
    def test_rejects_induction_loops(self):
        loop = SpeculativeLoop(
            "ind", 4, lambda ctx, i: ctx.bump("k"), arrays=[],
            inductions=[InductionSpec("k")],
        )
        with pytest.raises(ConfigurationError):
            run_doall_lrpd(loop, 2)

    def test_strategy_label(self):
        res = run_doall_lrpd(fully_parallel_loop(8), 2)
        assert "LRPD-doall" in res.strategy
