"""Worker-pool supervision: real SIGKILL/SIGSTOP chaos against fork/shm.

The logical fault injector simulates processor deaths inside healthy OS
processes; these tests break the processes for real.  The acceptance bar
throughout is *bit-identical recovery*: a run whose workers are killed or
stopped mid-stage must produce exactly the serial backend's results,
events and virtual time, with the disturbance visible only in
``RunResult.supervision`` / ``StageResult.redispatched_procs`` and the
operational supervisor log.
"""

import json
import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.backend import _shutdown_pool
from repro.core.runner import parallelize
from repro.errors import BackendError
from repro.faults.os_chaos import OsChaosPlan
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.obs.events import validate_events
from repro.obs.report import load_trace
from repro.workloads.synthetic import chain_loop, geometric_chain_targets
from tests.engine_parity_cases import summarize

P = 4
CHAOS_BACKENDS = ["fork", "shm"]

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker pools need the fork start method",
)


def _chain():
    return chain_loop(96, geometric_chain_targets(96, 0.5))


def _slow_doall(n: int = 32) -> SpeculativeLoop:
    """A doall whose host time per iteration is long enough that a chaos
    kill delivered right after dispatch lands mid-execution.  The sleep
    affects only wall-clock time; virtual time comes from ``ctx.work``."""

    def body(ctx, i):
        time.sleep(0.005)
        ctx.work(1.0)
        ctx.store("A", i, float(i) * 2.0)

    return SpeculativeLoop(
        "slow_doall", n, body, arrays=[ArraySpec("A", np.zeros(n))]
    )


def _config(backend, **overrides):
    return RuntimeConfig.adaptive(
        backend=backend, backend_workers=P, **overrides
    )


# -- bit-identical recovery from SIGKILL ------------------------------------------


class TestKillRecovery:
    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_killed_worker_is_respawned_bit_identically(self, backend):
        serial = summarize(parallelize(_chain(), P, RuntimeConfig.adaptive()))
        result = parallelize(
            _chain(), P,
            _config(backend, os_chaos=OsChaosPlan.kill_workers(0, [1])),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.respawns"] >= 1
        assert result.supervision["supervise.redispatched_blocks"] >= 1
        assert result.supervision["supervise.degradations"] == []

    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_killing_all_but_one_worker_stays_bit_identical(self, backend):
        # k = workers - 1 simultaneous kills: the pool survives on one
        # worker while three replacements fork, and nothing observable
        # changes.
        serial = summarize(parallelize(_chain(), P, RuntimeConfig.adaptive()))
        result = parallelize(
            _chain(), P,
            _config(
                backend, max_worker_respawns=8,
                os_chaos=OsChaosPlan.kill_workers(0, [0, 1, 2]),
            ),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.respawns"] >= 3
        assert result.supervision["supervise.degradations"] == []

    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_disturbed_event_trace_is_byte_identical(self, backend, tmp_path):
        # Supervision stays out of the deterministic streams: the JSONL
        # trace of a kill-disturbed run equals the undisturbed serial
        # trace byte for byte.
        serial_trace = tmp_path / "serial.jsonl"
        chaos_trace = tmp_path / "chaos.jsonl"
        parallelize(
            _chain(), P, RuntimeConfig.adaptive(trace_path=str(serial_trace))
        )
        result = parallelize(
            _chain(), P,
            _config(
                backend, trace_path=str(chaos_trace),
                os_chaos=OsChaosPlan.kill_workers(0, [2]),
            ),
        )
        assert result.supervision["supervise.respawns"] >= 1
        assert chaos_trace.read_bytes() == serial_trace.read_bytes()

    def test_mid_execution_kill_redispatches_and_leaks_nothing(
        self, monkeypatch
    ):
        # A shm worker killed while its block is executing: the lost
        # blocks re-dispatch (recorded on the StageResult), the result is
        # bit-identical to serial, and /dev/shm ends the run empty.
        import repro.core.shm as shm_mod
        from multiprocessing import shared_memory

        created: list[str] = []
        orig_new = shm_mod.ShmArena._new_shm

        def spying_new(self, nbytes):
            seg = orig_new(self, nbytes)
            created.append(seg.name)
            return seg

        monkeypatch.setattr(shm_mod.ShmArena, "_new_shm", spying_new)

        # certify="off" keeps the baseline on the same speculative pipeline
        # as the chaos run (os_chaos disables certification dispatch).
        serial = summarize(
            parallelize(_slow_doall(), P, RuntimeConfig.nrd(certify="off"))
        )
        result = parallelize(
            _slow_doall(), P,
            RuntimeConfig.nrd(
                backend="shm", backend_workers=P,
                os_chaos=OsChaosPlan.kill_workers(0, [1]),
            ),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.redispatched_blocks"] >= 1
        assert result.stages[0].redispatched_procs  # non-empty
        assert created, "the shm backend allocated no segments?"
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shm_untested_dirt_is_rolled_back(self, tmp_path):
        # Shm workers write untested elements straight into shared
        # memory.  A worker that dies between its untested write and its
        # reply leaves dirt behind; the supervisor's dispatch-snapshot
        # restore must erase it, or the replayed read-modify-write
        # doubles up.
        marker = str(tmp_path / "killed-once")
        parent_pid = os.getpid()
        n = 32

        def body(ctx, i):
            ctx.work(1.0)
            ctx.store("A", i, float(i))
            b = ctx.load("B", i)
            ctx.store("B", i, b + i + 1.0)  # RMW: dirt would double it
            if os.getpid() != parent_pid:
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    return  # replacement worker: run the block normally
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)

        def make_loop():
            return SpeculativeLoop(
                "untested_selfkill", n, body,
                arrays=[
                    ArraySpec("A", np.zeros(n)),
                    ArraySpec("B", np.zeros(n), tested=False),
                ],
            )

        serial = summarize(parallelize(make_loop(), P, RuntimeConfig.nrd()))
        result = parallelize(
            make_loop(), P,
            RuntimeConfig.nrd(backend="shm", backend_workers=P),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.respawns"] >= 1


# -- hang detection (SIGSTOP stragglers) ------------------------------------------


class TestHangDetection:
    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_stopped_worker_trips_deadline_and_is_reaped(
        self, backend, tmp_path, monkeypatch
    ):
        # A SIGSTOPped worker never replies and never dies on its own:
        # only the supervisor's deadline can save the run.  The stopped
        # process must end up SIGKILLed (not a zombie), its blocks
        # re-dispatched, the results bit-identical.
        log_path = tmp_path / "supervise.jsonl"
        monkeypatch.setenv("REPRO_SUPERVISE_LOG", str(log_path))
        serial = summarize(parallelize(_chain(), P, RuntimeConfig.adaptive()))
        result = parallelize(
            _chain(), P,
            _config(
                backend, worker_timeout=0.5,
                os_chaos=OsChaosPlan.stop_workers(0, [1]),
            ),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.overdue"] >= 1
        assert result.supervision["supervise.kills"] >= 1
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        events = [r["event"] for r in records]
        assert "chaos-stop" in events
        assert "worker-overdue" in events
        assert "worker-respawned" in events
        assert "blocks-redispatched" in events
        stopped_pid = next(
            r["pid"] for r in records if r["event"] == "chaos-stop"
        )
        with pytest.raises(ProcessLookupError):
            os.kill(stopped_pid, 0)  # reaped, not stopped-forever


# -- graceful degradation ---------------------------------------------------------


class TestDegradation:
    def test_respawn_budget_exhaustion_degrades_not_errors(self, tmp_path):
        # With a zero respawn budget, the first kill is unrecoverable for
        # the shm pool -- but the run must complete via fork instead of
        # raising, the trace must validate, and the typed BackendDegraded
        # event must round-trip through JSONL.
        trace = tmp_path / "trace.jsonl"
        serial = summarize(parallelize(_chain(), P, RuntimeConfig.adaptive()))
        result = parallelize(
            _chain(), P,
            _config(
                "shm", max_worker_respawns=0, trace_path=str(trace),
                os_chaos=OsChaosPlan.kill_workers(0, [1]),
            ),
        )
        assert summarize(result) == serial
        chain = [
            (d["from"], d["to"])
            for d in result.supervision["supervise.degradations"]
        ]
        assert chain == [("shm", "fork")]
        events = load_trace(str(trace))
        validate_events(events)
        degraded = [e for e in events if e.kind == "backend_degraded"]
        assert len(degraded) == 1
        assert degraded[0].from_backend == "shm"
        assert degraded[0].to_backend == "fork"
        assert "respawn budget exhausted" in degraded[0].reason


# -- threads backend: cooperative cancellation ------------------------------------


class TestThreadsCancellation:
    """The threads backend cannot SIGKILL its workers; hang recovery is a
    cooperative cancellation flag honoured at iteration boundaries, with
    the same supervision counters, operational log and degradation path
    as the process pools."""

    def _stall_loop(self, stalls: dict, n: int = 16, delay: float = 0.6):
        # Block on proc 1 covers iterations [4, 8) under NRD at P=4; make
        # iteration 5 stall long enough to trip a small worker_timeout.
        # ``stalls["left"]`` controls how many executions stall, so a
        # transient hang (1) recovers on redispatch while a poison block
        # (inf) keeps stalling until quarantined.  Sleeps change host
        # time only; virtual time comes from ``ctx.work``.
        def body(ctx, i):
            if i == 5 and stalls["left"] > 0:
                stalls["left"] -= 1
                time.sleep(delay)
            ctx.work(1.0)
            ctx.store("A", i, float(i) * 2.0)

        return SpeculativeLoop(
            "stall_doall", n, body, arrays=[ArraySpec("A", np.zeros(n))]
        )

    def test_threads_hang_is_cancelled_and_redispatched(
        self, tmp_path, monkeypatch
    ):
        log_path = tmp_path / "supervise.jsonl"
        monkeypatch.setenv("REPRO_SUPERVISE_LOG", str(log_path))
        serial = summarize(
            parallelize(
                self._stall_loop({"left": 0}), P,
                RuntimeConfig.nrd(certify="off"),
            )
        )
        result = parallelize(
            self._stall_loop({"left": 1}), P,
            RuntimeConfig.nrd(
                backend="threads", backend_workers=P, worker_timeout=0.15,
                certify="off",
            ),
        )
        assert summarize(result) == serial
        assert result.supervision["supervise.overdue"] >= 1
        assert result.supervision["supervise.redispatched_blocks"] >= 1
        assert result.supervision["supervise.degradations"] == []
        assert result.stages[0].redispatched_procs  # non-empty
        events = [
            json.loads(line)["event"]
            for line in log_path.read_text().splitlines()
        ]
        assert "worker-overdue" in events
        assert "blocks-redispatched" in events

    def test_threads_poison_block_degrades_to_serial(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        serial = summarize(
            parallelize(
                self._stall_loop({"left": 0}), P,
                RuntimeConfig.nrd(certify="off"),
            )
        )
        result = parallelize(
            self._stall_loop({"left": 10**9}), P,
            RuntimeConfig.nrd(
                backend="threads", backend_workers=P, worker_timeout=0.15,
                max_worker_respawns=8, trace_path=str(trace), certify="off",
            ),
        )
        assert summarize(result) == serial
        chain = [
            (d["from"], d["to"])
            for d in result.supervision["supervise.degradations"]
        ]
        assert chain == [("threads", "serial")]
        assert result.supervision["supervise.quarantined_blocks"] >= 1
        events = load_trace(str(trace))
        validate_events(events)
        degraded = [e for e in events if e.kind == "backend_degraded"]
        assert len(degraded) == 1
        assert degraded[0].from_backend == "threads"
        assert degraded[0].to_backend == "serial"
        assert "poison block" in degraded[0].reason

    def test_threads_recovery_budget_exhaustion_degrades(self, tmp_path):
        log_path = tmp_path / "supervise.jsonl"
        serial = summarize(
            parallelize(
                self._stall_loop({"left": 0}), P,
                RuntimeConfig.nrd(certify="off"),
            )
        )
        import pytest as _pytest

        with _pytest.MonkeyPatch.context() as mp_ctx:
            mp_ctx.setenv("REPRO_SUPERVISE_LOG", str(log_path))
            result = parallelize(
                self._stall_loop({"left": 10**9}), P,
                RuntimeConfig.nrd(
                    backend="threads", backend_workers=P,
                    worker_timeout=0.15, max_worker_respawns=0,
                    certify="off",
                ),
            )
        assert summarize(result) == serial
        chain = [
            (d["from"], d["to"])
            for d in result.supervision["supervise.degradations"]
        ]
        assert chain == [("threads", "serial")]
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        events = [r["event"] for r in records]
        assert "worker-overdue" in events
        assert "pool-degraded" in events
        degraded = next(r for r in records if r["event"] == "pool-degraded")
        assert "recovery budget exhausted" in degraded["reason"]

    def test_threads_disturbed_trace_is_byte_identical(self, tmp_path):
        # Cancellation recovery stays out of the deterministic streams,
        # exactly like the process supervisor's kills.
        serial_trace = tmp_path / "serial.jsonl"
        chaos_trace = tmp_path / "chaos.jsonl"
        parallelize(
            self._stall_loop({"left": 0}), P,
            RuntimeConfig.nrd(trace_path=str(serial_trace), certify="off"),
        )
        result = parallelize(
            self._stall_loop({"left": 1}), P,
            RuntimeConfig.nrd(
                backend="threads", backend_workers=P, worker_timeout=0.15,
                trace_path=str(chaos_trace), certify="off",
            ),
        )
        assert result.supervision["supervise.overdue"] >= 1
        assert chaos_trace.read_bytes() == serial_trace.read_bytes()


# -- pool shutdown escalation -----------------------------------------------------


def _stop_self(conn):  # pragma: no cover - child process
    os.kill(os.getpid(), signal.SIGSTOP)


class TestShutdownEscalation:
    def test_shutdown_pool_sigkills_a_stopped_worker(self):
        # A SIGSTOPped worker ignores both the farewell message and
        # SIGTERM; _shutdown_pool must escalate to SIGKILL so close()
        # never leaves a zombie holding /dev/shm mappings.
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(target=_stop_self, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:  # wait until it is actually stopped
            with open(f"/proc/{process.pid}/stat") as fh:
                state = fh.read().rsplit(")", 1)[1].split()[0]
            if state == "T":
                break
            time.sleep(0.01)
        assert state == "T", "child never reached the stopped state"
        _shutdown_pool([(process, parent_conn)], lambda conn: conn.send(None))
        assert process.exitcode == -signal.SIGKILL


# -- worker-raised exceptions carry full context ----------------------------------


class TestWorkerExceptionContext:
    def test_backend_error_names_worker_pid_and_blocks(self):
        # A deterministic bug in the loop body is not a survivable fault:
        # it surfaces as BackendError identifying exactly which worker
        # (slot and pid) was executing which blocks of which stage.
        parent_pid = os.getpid()

        def body(ctx, i):
            ctx.store("A", i, float(i))
            if os.getpid() != parent_pid:
                raise ValueError("intentional worker bug")

        loop = SpeculativeLoop(
            "worker_bug", 32, body,
            arrays=[ArraySpec("A", np.zeros(32))],
        )
        with pytest.raises(
            BackendError,
            match=r"fork backend worker \d+ \(pid \d+\) executing "
                  r"stage 0 blocks \[\d+\] \(procs \[\d+\]\) raised",
        ):
            parallelize(
                loop, P, RuntimeConfig.nrd(backend="fork", backend_workers=P)
            )
