"""Unit tests for speculative block execution and virtual-time charging."""

import numpy as np
import pytest

from repro.core.executor import (
    execute_block,
    make_processor_state,
)
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.checkpoint import CheckpointManager
from repro.machine.machine import Machine
from repro.machine.timeline import Category
from repro.util.blocks import Block


def make_loop(body, n=8, tested=("A",), untested=(), reductions=None):
    arrays = [ArraySpec(name, np.arange(16.0), tested=True) for name in tested]
    arrays += [ArraySpec(name, np.arange(16.0), tested=False) for name in untested]
    return SpeculativeLoop(
        "t", n, body, arrays=arrays, reductions=reductions or {}
    )


def setup(loop, n_procs=2):
    machine = Machine(n_procs, memory=loop.materialize())
    machine.begin_stage()
    states = {p: make_processor_state(machine, loop, p) for p in range(n_procs)}
    return machine, states


class TestSpeculativeContext:
    def test_tested_store_stays_private(self):
        loop = make_loop(lambda ctx, i: ctx.store("A", i, -1.0))
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        assert machine.memory["A"].data[0] == 0.0  # shared untouched
        assert dict(states[0].views["A"].written_items())[0] == -1.0

    def test_untested_store_writes_through(self):
        loop = make_loop(
            lambda ctx, i: ctx.store("B", i, -1.0), tested=(), untested=("B",)
        )
        machine, states = setup(loop)
        ckpt = CheckpointManager(machine.memory, ["B"], on_demand=True)
        ckpt.begin_stage()
        execute_block(machine, loop, states[0], Block(0, 0, 4), ckpt)
        assert machine.memory["B"].data[0] == -1.0

    def test_untested_write_checkpoints_first_touch(self):
        loop = make_loop(
            lambda ctx, i: ctx.store("B", 0, float(i)),
            tested=(), untested=("B",),
        )
        machine, states = setup(loop)
        ckpt = CheckpointManager(machine.memory, ["B"], on_demand=True)
        ckpt.begin_stage()
        execute_block(machine, loop, states[0], Block(0, 0, 4), ckpt)
        assert ckpt.elements_checkpointed == 1  # one element, many writes

    def test_marking_charged_per_reference(self):
        loop = make_loop(lambda ctx, i: ctx.store("A", i, 0.0))
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        assert machine.timeline.current.category_total(Category.MARK) == (
            pytest.approx(4 * machine.costs.mark)
        )

    def test_copyin_charged_once_per_element(self):
        def body(ctx, i):
            ctx.load("A", 0)
            ctx.load("A", 0)

        loop = make_loop(body)
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        # Only the very first load of element 0 copies in.
        assert machine.timeline.current.category_total(Category.COPY_IN) == (
            pytest.approx(machine.costs.copy_in)
        )

    def test_base_work_charged(self):
        loop = make_loop(lambda ctx, i: None)
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        assert machine.timeline.current.category_total(Category.WORK) == (
            pytest.approx(4 * machine.costs.omega)
        )

    def test_extra_work_charged(self):
        loop = make_loop(lambda ctx, i: ctx.work(2.0))
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 1), None)
        assert machine.timeline.current.category_total(Category.WORK) == (
            pytest.approx(3.0 * machine.costs.omega)
        )

    def test_iter_times_recorded(self):
        loop = make_loop(lambda ctx, i: None)
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 2, 5), None)
        assert set(states[0].iter_times) == {2, 3, 4}
        assert states[0].iter_work[2] == pytest.approx(machine.costs.omega)

    def test_reduction_update_accumulates_partial(self):
        loop = make_loop(
            lambda ctx, i: ctx.update("A", 3, 1.0),
            reductions={"A": ReductionOp.SUM},
        )
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        assert states[0].partials["A"][3] == 4.0
        assert machine.memory["A"].data[3] == 3.0  # shared untouched

    def test_load_of_reduction_array_rejected(self):
        loop = make_loop(
            lambda ctx, i: ctx.load("A", 0),
            reductions={"A": ReductionOp.SUM},
        )
        machine, states = setup(loop)
        with pytest.raises(ValueError):
            execute_block(machine, loop, states[0], Block(0, 0, 1), None)

    def test_update_without_operator_rejected(self):
        loop = make_loop(lambda ctx, i: ctx.update("A", 0, 1.0))
        machine, states = setup(loop)
        with pytest.raises(ValueError):
            execute_block(machine, loop, states[0], Block(0, 0, 1), None)

    def test_bump_uninitialized_rejected(self):
        loop = make_loop(lambda ctx, i: ctx.bump("k"))
        machine, states = setup(loop)
        with pytest.raises(KeyError):
            execute_block(machine, loop, states[0], Block(0, 0, 1), None)

    def test_bump_with_offsets(self):
        seen = []
        loop = make_loop(lambda ctx, i: seen.append(ctx.bump("k")))
        machine, states = setup(loop)
        ctx = execute_block(
            machine, loop, states[0], Block(0, 0, 3), None, inductions={"k": 10}
        )
        assert seen == [10, 11, 12]
        assert ctx.induction_values() == {"k": 13}

    def test_shadow_marks_reads_and_writes(self):
        def body(ctx, i):
            ctx.load("A", i)
            ctx.store("A", i + 8, 0.0)

        loop = make_loop(body)
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        sh = states[0].shadows["A"]
        assert sh.exposed_read_set() == {0, 1, 2, 3}
        assert sh.write_set() == {8, 9, 10, 11}


class TestProcessorState:
    def test_distinct_refs_and_written(self):
        def body(ctx, i):
            ctx.load("A", i)
            ctx.store("A", i, 1.0)

        loop = make_loop(body)
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        assert states[0].distinct_refs() == 4
        assert states[0].n_written() == 4

    def test_reset_keeps_iter_times(self):
        loop = make_loop(lambda ctx, i: ctx.store("A", i, 1.0))
        machine, states = setup(loop)
        execute_block(machine, loop, states[0], Block(0, 0, 4), None)
        states[0].reset()
        assert states[0].n_written() == 0
        assert states[0].shadows["A"].is_clear()
        assert len(states[0].iter_times) == 4  # measurements persist
