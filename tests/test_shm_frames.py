"""The typed array-frame codec and the shm backend's pickle-free data plane.

Round-trip tests cover every section kind of :mod:`repro.core.frames`
(named index/value arrays, sparse and dense shadow planes, reduction
partials, the self-check access log, inductions, fault strings, mark
lists) plus the deliberate pickle fallback for unframeable values and the
presence semantics of empty containers.

The steady-state guard then runs the sparse SPICE workload under the shm
backend with ``pickle`` replaced by a tripwire in both frame-touching
modules *before the workers fork*, proving the data plane moves sparse
residue as struct-packed frames with zero pickle -- while still matching
the serial backend bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core import frames
from repro.core import shm as shm_mod
from repro.core.backend import use_backend
from repro.core.runner import parallelize
from repro.shadow.dense import DenseShadow
from repro.shadow.marklist import MarkList
from repro.shadow.sparse import SparseShadow
from repro.util.bitset import BitSet
from repro.workloads.spice import make_dcdcmp15_loop


def _roundtrip(residue: dict) -> dict:
    blob = frames.pack_residue(residue)
    # Decode from a nonzero offset inside a larger buffer, the way the
    # shm reply parser consumes frames embedded in a pipe message.
    payload = b"\xaa\xbb" + blob + b"\xcc"
    return frames.unpack_residue(payload, 2, len(blob))


def test_empty_residue_is_empty_frame():
    assert frames.pack_residue({}) == b""
    assert frames.unpack_residue(b"", 0, 0) == {}


def test_named_arrays_roundtrip():
    residue = {
        "views": {
            "A": (np.array([3, 9, 11], dtype=np.int64), np.array([0.5, -1.25, 3.0])),
            "B": (np.array([], dtype=np.int64), np.array([], dtype=np.float32)),
        },
        "untested": {
            "C": (np.array([0], dtype=np.int64), np.array([7], dtype=np.int32)),
        },
    }
    out = _roundtrip(residue)
    assert sorted(out) == ["untested", "views"]
    for key in residue:
        assert sorted(out[key]) == sorted(residue[key])
        for name, (idx, vals) in residue[key].items():
            got_idx, got_vals = out[key][name]
            assert np.array_equal(got_idx, idx) and got_idx.dtype == idx.dtype
            assert np.array_equal(got_vals, vals) and got_vals.dtype == vals.dtype


def test_sparse_shadow_marks_roundtrip():
    shadow = SparseShadow(64)
    shadow.mark_write_many(np.array([4, 9], dtype=np.int64))
    shadow.mark_read_many(np.array([4, 17], dtype=np.int64))
    shadow.mark_update_many(np.array([30], dtype=np.int64))
    out = _roundtrip({"shadows": {"V": shadow.export_marks()}})
    rebuilt = SparseShadow(64)
    rebuilt.absorb_marks(out["shadows"]["V"])
    assert rebuilt.write_set() == shadow.write_set()
    assert rebuilt.exposed_read_set() == shadow.exposed_read_set()
    assert rebuilt.any_read_set() == shadow.any_read_set()
    assert rebuilt.update_set() == shadow.update_set()


def test_dense_shadow_marks_roundtrip():
    shadow = DenseShadow(130)
    shadow.mark_write_many(np.array([0, 63, 64, 129], dtype=np.int64))
    shadow.mark_read_many(np.array([63, 65], dtype=np.int64))
    out = _roundtrip({"shadows": {"D": shadow.export_marks()}})
    planes = out["shadows"]["D"]
    assert all(isinstance(p, BitSet) and p.size == 130 for p in planes)
    rebuilt = DenseShadow(130)
    rebuilt.absorb_marks(planes)
    assert rebuilt.write_set() == shadow.write_set()
    assert rebuilt.exposed_read_set() == shadow.exposed_read_set()
    assert rebuilt.any_read_set() == shadow.any_read_set()


def test_partials_preserve_value_dtype():
    residue = {
        "partials": {
            "sum64": {3: 1.5, 11: -2.25},
            "sum32": {0: np.float32(0.1), 5: np.float32(7.5)},
            "count": {2: 4, 9: 12},
        }
    }
    out = _roundtrip(residue)
    for name, partial in residue["partials"].items():
        got = out["partials"][name]
        assert sorted(got) == sorted(partial)
        for index, value in partial.items():
            assert got[index] == value
            assert np.asarray(got[index]).dtype == np.asarray(value).dtype


def test_pair_lists_rebuild_sorted():
    pairs = sorted([("A", 7), ("A", 1), ("B", 3), ("A", 7)])
    out = _roundtrip({"untested_reads": pairs, "untested_writes": []})
    assert out["untested_reads"] == pairs
    assert out["untested_writes"] == []


def test_empty_dicts_keep_presence():
    out = _roundtrip({"inductions": {}, "views": {}, "partials": {}})
    assert out == {"inductions": {}, "views": {}, "partials": {}}


def test_inductions_and_fault_roundtrip():
    out = _roundtrip({"inductions": {"k": 42, "m": -3}, "fault": "boom: stage 2"})
    assert out == {"inductions": {"k": 42, "m": -3}, "fault": "boom: stage 2"}


def test_marklists_roundtrip():
    ml = MarkList("A", proc=2, log_values=True)
    level = ml.open_level(5)
    level.writes.update([3, 9])
    level.exposed_reads.add(4)
    level.values.update({3: 1.5, 9: -2.0})
    level = ml.open_level(6)
    level.updates.add(11)
    out = _roundtrip({"marklists": {"A:2": ml}})
    got = out["marklists"]["A:2"]
    assert (got.array, got.proc, got.log_values) == ("A", 2, True)
    want_levels = ml.levels
    got_levels = got.levels
    assert len(got_levels) == len(want_levels)
    for want, got_level in zip(want_levels, got_levels):
        assert got_level.iteration == want.iteration
        assert got_level.writes == want.writes
        assert got_level.exposed_reads == want.exposed_reads
        assert got_level.updates == want.updates
        assert got_level.values == want.values


def test_unframeable_values_fall_back_to_pickle():
    residue = {
        "views": {"A": (np.array([1], dtype=np.int64), np.array([0.5]))},
        "partials": {"weird": {0: 1 << 200}},     # int64 overflow
        "metrics": {"counters": {"x": 1}},          # unknown key
    }
    out = _roundtrip(residue)
    assert np.array_equal(out["views"]["A"][0], residue["views"]["A"][0])
    assert out["partials"] == residue["partials"]
    assert out["metrics"] == residue["metrics"]


def test_truncated_frame_is_rejected():
    blob = frames.pack_residue({"inductions": {"k": 1}})
    with pytest.raises(ValueError, match="residue frame"):
        frames.unpack_residue(blob + b"\x00\x00", 0, len(blob) + 2)


# ---------------------------------------------------------------------------
# Steady state: zero pickle on the shm data plane
# ---------------------------------------------------------------------------


class _PickleTripwire:
    """Stand-in for the ``pickle`` module that fails loudly on any use.

    Installed on :mod:`repro.core.frames` and :mod:`repro.core.shm`
    before the worker pool forks, so worker processes inherit it too: a
    worker-side pickle call surfaces as a worker fault, a parent-side one
    raises straight into the test.
    """

    def __getattr__(self, name):
        raise AssertionError(
            f"pickle.{name} used on the shm data plane during a "
            "steady-state sparse run"
        )


def _summary(result):
    return (
        {name: data.tobytes() for name, data in sorted(result.memory.snapshot().items())},
        repr(result.total_time),
        result.n_stages,
    )


def test_shm_sparse_steady_state_moves_no_pickle(monkeypatch):
    make_loop = lambda: make_dcdcmp15_loop("perfect-up")  # noqa: E731
    config = RuntimeConfig.adaptive(backend="serial")
    want = _summary(parallelize(make_loop(), 4, config))

    monkeypatch.setattr(frames, "pickle", _PickleTripwire())
    monkeypatch.setattr(shm_mod, "pickle", _PickleTripwire())
    with use_backend("shm"):
        got = parallelize(make_loop(), 4, RuntimeConfig.adaptive(backend="shm"))
    assert _summary(got) == want
