"""Tests for critical-path list scheduling from the DDG."""

import networkx as nx
import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.listsched import (
    bottom_levels,
    execute_list_schedule,
    list_schedule,
)
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.errors import ScheduleError
from repro.machine.costs import CostModel
from repro.workloads.synthetic import chain_loop, fully_parallel_loop, random_dependence_loop
from tests.conftest import assert_matches_sequential


def graph_of(n, edges):
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return g


class TestBottomLevels:
    def test_no_edges_equal_own_work(self):
        levels = bottom_levels(graph_of(4, []), 4, [1.0, 2.0, 3.0, 4.0])
        assert levels == [1.0, 2.0, 3.0, 4.0]

    def test_chain_accumulates(self):
        levels = bottom_levels(graph_of(3, [(0, 1), (1, 2)]), 3, [1.0] * 3)
        assert levels == [3.0, 2.0, 1.0]

    def test_diamond_takes_heavier_branch(self):
        # 0 -> {1, 2} -> 3, where 2 is heavy.
        g = graph_of(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        levels = bottom_levels(g, 4, [1.0, 1.0, 5.0, 1.0])
        assert levels[0] == 1.0 + 5.0 + 1.0

    def test_non_forward_edge_rejected(self):
        g = nx.DiGraph()
        g.add_edge(2, 1)
        with pytest.raises(ScheduleError):
            bottom_levels(g, 3, [1.0] * 3)


class TestListSchedule:
    def test_order_is_topological(self):
        loop = chain_loop(32, targets=[5, 20])
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        graph = ddg.graph()
        sched = list_schedule(graph, loop, 4)
        position = {i: k for k, i in enumerate(sched.order)}
        for src, dst in graph.edges:
            assert position[src] < position[dst]

    def test_all_iterations_dispatched(self):
        loop = fully_parallel_loop(30)
        sched = list_schedule(graph_of(30, []), loop, 4)
        assert sorted(sched.order) == list(range(30))

    def test_makespan_at_least_critical_path(self):
        loop = chain_loop(16, targets=list(range(1, 16)))
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=8))
        sched = list_schedule(ddg.graph(), loop, 4)
        assert sched.makespan >= sched.critical_path_work

    def test_makespan_at_least_work_over_p(self):
        loop = fully_parallel_loop(64)
        costs = CostModel()
        sched = list_schedule(graph_of(64, []), loop, 4, costs)
        assert sched.makespan >= 64 * costs.omega / 4

    def test_empty_loop(self):
        loop = fully_parallel_loop(1)
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        empty = SpeculativeLoop(
            "e", 0, loop.body, arrays=[ArraySpec("A", np.zeros(2))]
        )
        sched = list_schedule(graph_of(0, []), empty, 2)
        assert sched.makespan == 0.0


class TestExecution:
    def test_matches_sequential(self):
        loop = random_dependence_loop(96, 0.2, 5, seed=13)
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=16))
        sched = list_schedule(ddg.graph(), loop, 4)
        res = execute_list_schedule(loop, sched)
        assert_matches_sequential(res, loop)

    def test_mismatched_schedule_rejected(self):
        loop = fully_parallel_loop(8)
        sched = list_schedule(graph_of(4, []), fully_parallel_loop(4), 2)
        with pytest.raises(ScheduleError):
            execute_list_schedule(loop, sched)

    def test_beats_wavefront_on_ragged_levels(self):
        """A graph with strongly uneven level widths: wavefront pays a full
        barrier per narrow level, list scheduling flows through."""
        import numpy as np

        from repro.loopir.loop import ArraySpec, SpeculativeLoop

        # A long chain plus a sea of independent iterations: wavefront gets
        # cp levels each nearly empty apart from the chain node.
        n, chain_len = 128, 32

        def body(ctx, i):
            if 0 < i < chain_len:
                ctx.load("A", i - 1)
            ctx.store("A", i, float(i))

        def make():
            return SpeculativeLoop(
                "ragged", n, body, arrays=[ArraySpec("A", np.zeros(n))]
            )

        loop = make()
        ddg = extract_ddg(loop, 4, RuntimeConfig.sw(window_size=16))
        graph = ddg.graph()
        wf = execute_wavefront(make(), wavefront_schedule(graph, n), 4)
        ls = execute_list_schedule(make(), list_schedule(graph, make(), 4))
        assert ls.total_time < wf.total_time
        assert ls.memory.equals(wf.memory.snapshot())
