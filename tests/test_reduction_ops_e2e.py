"""End-to-end coverage of every reduction operator through the runtime."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from tests.conftest import assert_matches_sequential


def reduction_workload(op: ReductionOp, n=96, bins=6, seed=9):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, bins, size=n)
    # Integer-valued contributions keep SUM/PROD exact; MIN/MAX are always
    # exact (selection, not arithmetic).
    values = rng.integers(1, 4, size=n).astype(np.float64)
    if op is ReductionOp.PROD:
        # Keep magnitudes bounded: mostly ones, a few twos.
        values = np.where(rng.random(n) < 0.1, 2.0, 1.0)

    init = {
        ReductionOp.SUM: np.zeros(bins),
        ReductionOp.PROD: np.ones(bins),
        ReductionOp.MIN: np.full(bins, 100.0),
        ReductionOp.MAX: np.full(bins, -100.0),
    }[op]

    def body(ctx, i):
        ctx.update("R", int(targets[i]), float(values[i]))

    return SpeculativeLoop(
        f"red-{op.value}", n, body,
        arrays=[ArraySpec("R", init)],
        reductions={"R": op},
    )


@pytest.mark.parametrize("op", list(ReductionOp))
@pytest.mark.parametrize("cfg", [
    RuntimeConfig.nrd(),
    RuntimeConfig.rd(),
    RuntimeConfig.sw(window_size=16),
], ids=lambda c: c.label())
def test_every_operator_every_strategy(op, cfg):
    loop = reduction_workload(op)
    res = parallelize(loop, 8, cfg)
    assert res.n_restarts == 0  # pure reductions never fail speculation
    assert_matches_sequential(res, loop)


@pytest.mark.parametrize("op", [ReductionOp.MIN, ReductionOp.MAX])
def test_selection_ops_identity_respected(op):
    """Bins never updated keep their initial values, not the identity."""
    loop = reduction_workload(op, n=4, bins=8)
    res = parallelize(loop, 2)
    data = res.memory["R"].data
    untouched = 100.0 if op is ReductionOp.MIN else -100.0
    assert untouched in data  # at least one bin was never hit


def test_mixed_ops_two_arrays():
    """Two reduction arrays with different operators in one loop."""

    def body(ctx, i):
        ctx.update("S", i % 3, 1.0)
        ctx.update("M", i % 3, float(i))

    loop = SpeculativeLoop(
        "two-reds", 60, body,
        arrays=[
            ArraySpec("S", np.zeros(3)),
            ArraySpec("M", np.full(3, -1.0)),
        ],
        reductions={"S": ReductionOp.SUM, "M": ReductionOp.MAX},
    )
    res = parallelize(loop, 4)
    assert_matches_sequential(res, loop)
    assert list(res.memory["S"].data) == [20.0, 20.0, 20.0]
    assert list(res.memory["M"].data) == [57.0, 58.0, 59.0]
