"""Tests for the pre-initialization copy-in option (Section 2)."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.core.window import run_sliding_window
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.timeline import Category
from repro.workloads.synthetic import reduction_loop
from tests.conftest import assert_matches_sequential, make_simple_loop


def dense_reread_loop(n=64, m=32):
    """Every iteration reads many distinct shared elements: the access
    pattern where pre-initialization's bulk copy beats per-miss copy-in."""

    def body(ctx, i):
        acc = 0.0
        for k in range(8):
            acc += ctx.load("A", (i + k * 7) % m)
        ctx.store("A", i % m, acc * 0.01)

    return SpeculativeLoop(
        "dense-reread", n, body, arrays=[ArraySpec("A", np.ones(m))]
    )


def sparse_touch_loop(n=64, m=4096):
    """Each iteration touches one element of a big array: on-demand wins."""

    def body(ctx, i):
        x = ctx.load("A", (i * 61) % m)
        ctx.store("A", (i * 61) % m, x + 1.0)

    return SpeculativeLoop(
        "sparse-touch", n, body,
        arrays=[ArraySpec("A", np.zeros(m), tested=True, sparse=False)],
    )


class TestCorrectness:
    @pytest.mark.parametrize("cfg", [
        RuntimeConfig.nrd(pre_initialize=True),
        RuntimeConfig.rd(pre_initialize=True),
        RuntimeConfig.sw(window_size=16, pre_initialize=True),
    ], ids=lambda c: c.label())
    def test_matches_sequential(self, cfg):
        loop = make_simple_loop(96)
        if cfg.strategy.value == "sliding_window":
            res = run_sliding_window(loop, 8, cfg)
        else:
            res = run_blocked(loop, 8, cfg)
        assert_matches_sequential(res, loop)

    def test_same_state_as_on_demand(self):
        a = run_blocked(make_simple_loop(64), 4, RuntimeConfig.nrd())
        b = run_blocked(
            make_simple_loop(64), 4, RuntimeConfig.nrd(pre_initialize=True)
        )
        assert a.memory.equals(b.memory.snapshot())

    def test_reductions_not_preloaded(self):
        loop = reduction_loop(64, n_bins=4, seed=0)
        res = run_blocked(loop, 4, RuntimeConfig.nrd(pre_initialize=True))
        assert_matches_sequential(res, loop)  # identity-start partials intact


class TestCostTradeoff:
    def test_preinit_wins_on_dense_rereads(self):
        costs = CostModel()
        demand = run_blocked(dense_reread_loop(), 4, RuntimeConfig.nrd(), costs=costs)
        pre = run_blocked(
            dense_reread_loop(), 4,
            RuntimeConfig.nrd(pre_initialize=True), costs=costs,
        )
        assert pre.timeline.charged_category(Category.COPY_IN) < (
            demand.timeline.charged_category(Category.COPY_IN)
        )
        assert pre.total_time < demand.total_time

    def test_on_demand_wins_on_sparse_touch(self):
        costs = CostModel()
        demand = run_blocked(sparse_touch_loop(), 4, RuntimeConfig.nrd(), costs=costs)
        pre = run_blocked(
            sparse_touch_loop(), 4,
            RuntimeConfig.nrd(pre_initialize=True), costs=costs,
        )
        assert demand.timeline.charged_category(Category.COPY_IN) < (
            pre.timeline.charged_category(Category.COPY_IN)
        )

    def test_sparse_views_stay_on_demand(self):
        # A sparse-represented array ignores pre_initialize entirely.
        def body(ctx, i):
            ctx.store("A", i, 1.0)

        loop = SpeculativeLoop(
            "sparse-rep", 16, body,
            arrays=[ArraySpec("A", np.zeros(1 << 20), tested=True, sparse=True)],
        )
        costs = CostModel()
        res = run_blocked(loop, 4, RuntimeConfig.nrd(pre_initialize=True), costs=costs)
        # No million-element bulk copies happened.
        assert res.timeline.charged_category(Category.COPY_IN) < 1.0

    def test_preload_charged_per_stage(self):
        costs = CostModel(bulk_copy_per_elem=1.0)
        res = run_blocked(
            dense_reread_loop(n=64, m=32), 4,
            RuntimeConfig.nrd(pre_initialize=True), costs=costs,
        )
        # 4 procs x 32 elements in stage 0 at least.
        assert res.timeline.charged_category(Category.COPY_IN) >= 128.0
