"""Tests for the blocked Recursive LRPD driver (NRD / RD / adaptive)."""

import numpy as np
import pytest

from repro.config import RuntimeConfig, TestCondition
from repro.core.rlrpd import run_blocked
from repro.errors import ConfigurationError
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.costs import CostModel
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    linear_chain_targets,
    privatizable_loop,
    reduction_loop,
)
from tests.conftest import assert_matches_sequential, make_simple_loop


class TestFullyParallel:
    def test_single_stage(self):
        loop = fully_parallel_loop(64)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert res.n_restarts == 0
        assert res.parallelism_ratio == 1.0
        assert_matches_sequential(res, loop)

    def test_speedup_near_linear(self):
        loop = fully_parallel_loop(800)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.speedup > 6.0

    def test_single_processor(self):
        loop = fully_parallel_loop(16)
        res = run_blocked(loop, 1, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)


class TestPartiallyParallel:
    def test_one_boundary_dep_two_stages(self):
        # One dependence crossing the middle boundary: commit half, redo half.
        loop = chain_loop(64, targets=[32])
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert res.n_stages == 2
        assert res.stages[0].committed_iterations == 32
        assert_matches_sequential(res, loop)

    def test_nrd_sequentialized_loop_p_stages(self):
        """A dependence at every block boundary: NRD needs exactly p stages
        (the paper's beta = (p-1)/p case)."""
        p, n = 4, 64
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        assert res.n_stages == p
        assert res.parallelism_ratio == pytest.approx(1.0 / p)
        assert_matches_sequential(res, loop)

    def test_rd_halving(self):
        loop = chain_loop(64, targets=[32, 48, 56])
        res = run_blocked(loop, 8, RuntimeConfig.rd())
        remaining = [s.remaining_after for s in res.stages]
        assert remaining == [32, 16, 8, 0]
        assert_matches_sequential(res, loop)

    def test_commit_point_monotone(self):
        loop = make_simple_loop(128)
        res = run_blocked(loop, 8, RuntimeConfig.adaptive())
        remaining = [s.remaining_after for s in res.stages]
        assert all(a > b for a, b in zip(remaining, remaining[1:]))

    def test_first_stage_always_commits_first_block(self):
        loop = make_simple_loop(128)
        res = run_blocked(loop, 8, RuntimeConfig.rd())
        assert all(s.committed_iterations > 0 for s in res.stages)


class TestRedistributionPolicies:
    def make(self):
        return chain_loop(256, targets=[128, 192, 224, 240])

    def test_never_reuses_failed_blocks(self):
        res = run_blocked(self.make(), 8, RuntimeConfig.nrd())
        assert all(s.redistributed_iterations == 0 for s in res.stages)

    def test_always_redistributes_every_failure(self):
        res = run_blocked(self.make(), 8, RuntimeConfig.rd())
        later = res.stages[1:]
        assert all(s.redistributed_iterations > 0 for s in later)

    def test_adaptive_stops_when_threshold_crossed(self):
        costs = CostModel(omega=1.0, ell=0.5, sync=20.0)
        # threshold = p*s/(omega-ell) = 8*20/0.5 = 320 > all remainders
        res = run_blocked(self.make(), 8, RuntimeConfig.adaptive(), costs=costs)
        assert all(s.redistributed_iterations == 0 for s in res.stages[1:])

    def test_adaptive_redistributes_above_threshold(self):
        costs = CostModel(omega=1.0, ell=0.1, sync=0.1)
        res = run_blocked(self.make(), 8, RuntimeConfig.adaptive(), costs=costs)
        assert res.stages[1].redistributed_iterations > 0

    def test_policies_agree_on_final_state(self):
        for cfg in (RuntimeConfig.nrd(), RuntimeConfig.rd(), RuntimeConfig.adaptive()):
            loop = self.make()
            assert_matches_sequential(run_blocked(loop, 8, cfg), loop)


class TestPrivatizationAndReductions:
    def test_privatizable_temp_single_stage(self):
        loop = privatizable_loop(64)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_reduction_single_stage_exact(self):
        loop = reduction_loop(128, n_bins=8, seed=1)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)  # integer increments: exact

    def test_reduction_commits_into_shared(self):
        loop = reduction_loop(100, n_bins=4, seed=2)
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert res.memory["H"].data.sum() == pytest.approx(100.0)


class TestUntestedArrays:
    def make_loop(self, n=32):
        def body(ctx, i):
            x = ctx.load("A", i)
            ctx.store("A", (i * 11 + 5) % n, x + 1.0)
            ctx.store("B", i, float(i) * 3.0)  # statically analyzable

        return SpeculativeLoop(
            "untested", n, body,
            arrays=[
                ArraySpec("A", np.zeros(n), tested=True),
                ArraySpec("B", np.zeros(n), tested=False),
            ],
        )

    @pytest.mark.parametrize("on_demand", [True, False])
    def test_untested_state_correct_after_restarts(self, on_demand):
        loop = self.make_loop()
        cfg = RuntimeConfig.rd(on_demand_checkpoint=on_demand)
        res = run_blocked(loop, 4, cfg)
        assert res.n_restarts > 0  # the loop does have boundary deps
        assert_matches_sequential(res, loop)

    def test_restoration_counted(self):
        loop = self.make_loop()
        res = run_blocked(loop, 4, RuntimeConfig.rd())
        failed_stages = [s for s in res.stages if s.failed]
        assert any(s.restored_elements > 0 for s in failed_stages)


class TestAccounting:
    def test_sequential_work_equals_committed_work(self):
        loop = make_simple_loop(96)
        res = run_blocked(loop, 8, RuntimeConfig.rd())
        assert res.sequential_work == pytest.approx(
            sum(s.committed_work for s in res.stages)
        )

    def test_sequential_work_equals_total_work_multiplier(self):
        loop = fully_parallel_loop(50)
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert res.sequential_work == pytest.approx(50.0)

    def test_wasted_work_nonnegative(self):
        loop = make_simple_loop(96)
        res = run_blocked(loop, 8, RuntimeConfig.rd())
        assert res.wasted_work >= -1e-9

    def test_iteration_times_cover_all_iterations(self):
        loop = make_simple_loop(96)
        res = run_blocked(loop, 8, RuntimeConfig.rd())
        assert set(res.iteration_times) == set(range(96))

    def test_restarts_equal_failed_stages(self):
        loop = make_simple_loop(96)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_restarts == sum(1 for s in res.stages if s.failed)

    def test_summary_fields(self):
        res = run_blocked(fully_parallel_loop(16), 2, RuntimeConfig.nrd())
        summary = res.summary()
        assert summary["p"] == 2
        assert summary["PR"] == 1.0
        assert summary["speedup"] > 0


class TestWeightedScheduling:
    def test_weights_change_blocks(self):
        n = 64
        loop = fully_parallel_loop(n, work=1.0)
        weights = np.ones(n)
        weights[: n // 2] = 10.0  # front half is heavy
        res = run_blocked(loop, 4, RuntimeConfig.nrd(), weights=weights)
        first_block = res.stages[0].blocks[0]
        assert len(first_block) < n // 4  # heavy region split finer

    def test_weighted_run_still_correct(self):
        loop = make_simple_loop(64)
        rng = np.random.default_rng(3)
        res = run_blocked(
            loop, 4, RuntimeConfig.rd(), weights=rng.random(64) + 0.1
        )
        assert_matches_sequential(res, loop)


class TestValidation:
    def test_rejects_sliding_window_config(self):
        with pytest.raises(ConfigurationError):
            run_blocked(fully_parallel_loop(8), 2, RuntimeConfig.sw(4))

    def test_rejects_privatization_condition(self):
        with pytest.raises(ConfigurationError):
            run_blocked(
                fully_parallel_loop(8), 2,
                RuntimeConfig.nrd(condition=TestCondition.PRIVATIZATION),
            )

    def test_rejects_induction_loops(self):
        loop = SpeculativeLoop(
            "ind", 4, lambda ctx, i: ctx.bump("k"), arrays=[],
            inductions=[InductionSpec("k")],
        )
        with pytest.raises(ConfigurationError):
            run_blocked(loop, 2, RuntimeConfig.nrd())

    def test_zero_iterations(self):
        loop = fully_parallel_loop(1)
        # n=0 via a degenerate spec
        empty = SpeculativeLoop(
            "empty", 0, loop.body, arrays=[ArraySpec("A", np.zeros(4))]
        )
        res = run_blocked(empty, 4, RuntimeConfig.nrd())
        assert res.n_stages == 0
        assert res.total_time == 0.0

    def test_more_procs_than_iterations(self):
        loop = fully_parallel_loop(3)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert_matches_sequential(res, loop)
