"""The paper's Figs. 1-2 worked examples, verified step by step."""


from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.core.window import run_sliding_window
from repro.workloads.worked_examples import FIG1_K, FIG1_L, fig1_loop, fig2_loop
from tests.conftest import assert_matches_sequential


class TestFig1:
    """8 iterations, 4 processors, one arc from processor 1 to processor 2;
    the paper's loop finishes 'in a total of two steps of two iterations
    each' under NRD."""

    def test_two_stages(self):
        res = run_blocked(fig1_loop(), 4, RuntimeConfig.nrd())
        assert res.n_stages == 2

    def test_first_stage_commits_first_two_procs(self):
        res = run_blocked(fig1_loop(), 4, RuntimeConfig.nrd())
        first = res.stages[0]
        assert first.failed
        assert first.earliest_sink_pos == 2
        assert first.committed_iterations == 4

    def test_second_stage_commits_rest(self):
        res = run_blocked(fig1_loop(), 4, RuntimeConfig.nrd())
        second = res.stages[1]
        assert not second.failed
        assert second.committed_iterations == 4
        assert second.remaining_after == 0

    def test_nrd_second_stage_runs_on_failed_procs(self):
        res = run_blocked(fig1_loop(), 4, RuntimeConfig.nrd())
        procs = {b.proc for b in res.stages[1].blocks}
        assert procs == {2, 3}

    def test_rd_second_stage_spreads_over_all(self):
        res = run_blocked(fig1_loop(), 4, RuntimeConfig.rd())
        procs = {b.proc for b in res.stages[1].blocks if len(b)}
        assert procs == {0, 1, 2, 3}

    def test_final_state_matches_sequential(self):
        loop = fig1_loop()
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert_matches_sequential(res, loop)

    def test_untested_b_array_correct(self):
        loop = fig1_loop()
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert list(res.memory["B"].data) == [2.0 * i for i in range(8)]

    def test_dependence_is_where_designed(self):
        # Iteration 3 writes A[5]; iteration 4 reads A[5].
        assert FIG1_K[3] == FIG1_L[4] == 5


class TestFig1MarkingState:
    """White-box check of the Fig. 1(c) shadow state after the first doall."""

    def run_first_stage(self):
        from repro.core.analysis import analyze_stage
        from repro.core.executor import execute_block, make_processor_state
        from repro.machine.machine import Machine
        from repro.util.blocks import partition_even

        loop = fig1_loop()
        machine = Machine(4, memory=loop.materialize())
        machine.begin_stage()
        states = {p: make_processor_state(machine, loop, p) for p in range(4)}
        blocks = partition_even(0, 8, [0, 1, 2, 3])
        for block in blocks:
            execute_block(machine, loop, states[block.proc], block, None)
        return states, analyze_stage(
            [(b.proc, states[b.proc].shadows) for b in blocks]
        )

    def test_write_marks_follow_k(self):
        states, _ = self.run_first_stage()
        assert states[1].shadows["A"].write_set() == {FIG1_K[2], FIG1_K[3]}

    def test_read_marks_are_exposed(self):
        states, _ = self.run_first_stage()
        # Processor 2 read A[5] (iteration 4) before ever writing it.
        assert 5 in states[2].shadows["A"].exposed_read_set()

    def test_single_arc_from_proc1_to_proc2(self):
        _, analysis = self.run_first_stage()
        assert len(analysis.arcs) == 1
        [arc] = analysis.arcs
        assert (arc.src_pos, arc.dst_pos, arc.index) == (1, 2, 5)

    def test_untested_b_not_marked(self):
        states, _ = self.run_first_stage()
        assert "B" not in states[0].shadows  # untested arrays have no shadow


class TestFig2:
    """Window of 4, super-iteration 1, one arc into block 3: the first
    window commits the blocks before the sink and advances the commit
    point; the loop needs three windows."""

    def test_three_stages(self):
        res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
        assert res.n_stages == 3

    def test_commit_trace(self):
        res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
        assert [s.committed_iterations for s in res.stages] == [3, 4, 1]

    def test_single_restart(self):
        res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
        assert res.n_restarts == 1

    def test_final_state(self):
        loop = fig2_loop()
        res = run_sliding_window(loop, 4, RuntimeConfig.sw(window_size=4))
        assert_matches_sequential(res, loop)

    def test_failed_iteration_rescheduled_same_proc(self):
        res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
        attempts = [
            b for s in res.stages for b in s.blocks if b.start == 3
        ]
        assert len(attempts) == 2
        assert attempts[0].proc == attempts[1].proc
