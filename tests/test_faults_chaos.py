"""Randomized chaos testing: seeded fault storms across every strategy.

The subsystem's acceptance bar (ISSUE): under every fault class, on all
three strategies, the final shared memory is bit-identical to the
sequential execution, and a fixed seed reproduces the identical run.
"""

import pytest

from repro.baselines.sequential import sequential_reference
from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.errors import FaultError
from repro.faults import random_plan
from repro.workloads import EXTEND_DECKS, NLFILT_DECKS, make_extend_loop, make_nlfilt_loop
from repro.workloads.synthetic import random_dependence_loop

from tests.conftest import make_simple_loop

P = 8

CONFIGS = {
    "NRD": RuntimeConfig.nrd,
    "RD": RuntimeConfig.rd,
    "SW": lambda **kw: RuntimeConfig.sw(2 * P, **kw),
}


def storm(seed):
    """A dense plan exercising every fault class."""
    return random_plan(
        seed, n_procs=P,
        fail_stop_rate=0.08, permanent_rate=0.3, corrupt_rate=0.08,
        straggler_rate=0.15, checkpoint_rate=0.2,
    )


def run_with_faults(make_loop, config_name, seed, **config_kw):
    config = CONFIGS[config_name](
        fault_plan=storm(seed), self_check=True, max_fault_retries=10,
        **config_kw,
    )
    return parallelize(make_loop(), P, config)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", range(5))
class TestChaosMatchesOracle:
    def test_dependence_loop(self, config_name, seed):
        make_loop = lambda: random_dependence_loop(  # noqa: E731
            384, density=0.05, max_distance=8
        )
        result = run_with_faults(make_loop, config_name, seed)
        assert result.memory.equals(sequential_reference(make_loop()))
        assert result.faults_survived == sum(
            result.fault_counts.values()
        )

    def test_untested_state_loop(self, config_name, seed):
        make_loop = lambda: make_nlfilt_loop(NLFILT_DECKS["16-400"])  # noqa: E731
        result = run_with_faults(make_loop, config_name, seed)
        assert result.memory.equals(sequential_reference(make_loop()))


@pytest.mark.parametrize("seed", range(3))
class TestChaosInduction:
    def test_induction_loop(self, seed):
        make_loop = lambda: make_extend_loop(EXTEND_DECKS["heavy-deps"])  # noqa: E731
        config = RuntimeConfig.rd(
            fault_plan=storm(seed), self_check=True, max_fault_retries=10
        )
        result = parallelize(make_loop(), P, config)
        assert result.memory.equals(sequential_reference(make_loop()))


class TestReproducibility:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_fixed_seed_reproduces_the_run(self, config_name):
        results = [
            run_with_faults(make_simple_loop, config_name, seed=4)
            for _ in range(2)
        ]
        a, b = results
        assert a.summary() == b.summary()
        assert a.fault_counts == b.fault_counts
        assert a.retries == b.retries
        assert a.dead_procs == b.dead_procs
        assert a.degraded_stages == b.degraded_stages
        assert [s.span for s in a.stages] == [s.span for s in b.stages]
        assert [s.faulted_procs for s in a.stages] == [
            s.faulted_procs for s in b.stages
        ]

    def test_full_vs_ondemand_checkpoint_same_result(self):
        ref = sequential_reference(make_nlfilt_loop(NLFILT_DECKS["16-400"]))
        for on_demand in (True, False):
            result = run_with_faults(
                lambda: make_nlfilt_loop(NLFILT_DECKS["16-400"]),
                "RD", seed=1, on_demand_checkpoint=on_demand,
            )
            assert result.memory.equals(ref)


class TestUnrecoverableStorm:
    def test_total_storm_raises_fault_error(self):
        # Every (stage, proc) cell fail-stops with zero progress: no stage
        # can ever commit, so the bounded retry gives up deterministically.
        hopeless = random_plan(
            0, n_procs=4, n_stages=64, fail_stop_rate=1.0, permanent_rate=0.0
        )
        config = RuntimeConfig.nrd(fault_plan=hopeless, max_fault_retries=3)
        with pytest.raises(FaultError, match="max_fault_retries"):
            parallelize(make_simple_loop(), 4, config)
