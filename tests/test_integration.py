"""Cross-module integration: every strategy x every workload must reproduce
the sequential state, and the headline paper claims must hold in shape."""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.lrpd import run_doall_lrpd
from repro.core.runner import parallelize, run_program
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.workloads.fma3d import make_quad_loop
from repro.workloads.spice import SPICE_DECKS, make_bjt_loop, make_dcdcmp15_loop
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    random_dependence_loop,
)
from repro.workloads.track_extend import EXTEND_DECKS, make_extend_loop
from repro.workloads.track_fptrak import FPTRAK_DECKS, make_fptrak_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop
from tests.conftest import assert_matches_sequential, make_simple_loop


def _loops():
    yield "simple", lambda: make_simple_loop(120), False
    yield "fully-parallel", lambda: fully_parallel_loop(120), False
    yield "chain", lambda: chain_loop(120, geometric_chain_targets(120, 0.5)), False
    yield "random", lambda: random_dependence_loop(120, 0.15, 6, seed=2), False
    yield (
        "nlfilt",
        lambda: make_nlfilt_loop(
            dataclasses.replace(NLFILT_DECKS["medium-deps"], n=400)
        ),
        False,
    )
    yield (
        "bjt",
        lambda: make_bjt_loop(
            dataclasses.replace(SPICE_DECKS["adder.128"], devices=200, workspace=1 << 12)
        ),
        True,
    )
    yield "fma3d", lambda: make_quad_loop("train"), False


CONFIGS = [
    RuntimeConfig.nrd(),
    RuntimeConfig.rd(),
    RuntimeConfig.adaptive(),
    RuntimeConfig.nrd(on_demand_checkpoint=False),
    RuntimeConfig.rd(pre_initialize=True),
    RuntimeConfig.sw(window_size=16),
    RuntimeConfig.sw(window_size=48, adaptive_window=True),
    RuntimeConfig.sw(window_size=16, pre_initialize=True),
]


@pytest.mark.parametrize("name,factory,tolerant", list(_loops()))
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.label())
@pytest.mark.parametrize("n_procs", [3, 8])
def test_every_strategy_matches_sequential(name, factory, tolerant, config, n_procs):
    """The fundamental soundness matrix."""
    loop = factory()
    result = parallelize(loop, n_procs, config)
    assert_matches_sequential(result, loop, tolerant=tolerant)


@pytest.mark.parametrize("n_procs", [2, 5, 8])
def test_induction_loops_match_sequential(n_procs):
    for deck_map, factory in [
        (EXTEND_DECKS, make_extend_loop),
        (FPTRAK_DECKS, make_fptrak_loop),
    ]:
        for name in deck_map:
            deck = dataclasses.replace(deck_map[name], n=300)
            loop = factory(deck)
            assert_matches_sequential(parallelize(loop, n_procs), loop)


class TestPaperHeadlines:
    """Shape-level claims from the abstract and introduction."""

    def test_rlrpd_bounds_slowdown_where_doall_lrpd_does_not(self):
        """'...limits potential slowdowns to the overhead of the run-time
        dependence test itself' -- vs the doall test's slowdown equal to the
        whole speculative execution."""
        n = 512
        loop_r = chain_loop(n, targets=[n // 2])
        loop_d = chain_loop(n, targets=[n // 2])
        rlrpd = parallelize(loop_r, 8, RuntimeConfig.nrd())
        doall = run_doall_lrpd(loop_d, 8)
        assert rlrpd.speedup > 1.0        # partial parallelism extracted
        assert doall.speedup < 1.0        # speculation + serial re-run
        assert rlrpd.total_time < doall.total_time

    def test_nrd_worst_case_near_sequential_plus_overhead(self):
        """Fully sequentialized loop under NRD: T_par <= T_seq * (1 + eps)
        with eps the testing overhead, never a catastrophic slowdown."""
        from repro.workloads.synthetic import linear_chain_targets

        n, p = 512, 8
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = parallelize(loop, p, RuntimeConfig.nrd())
        assert res.total_time < 1.5 * res.sequential_work

    def test_more_processors_more_restarts(self):
        """PR depends on p because only inter-processor dependences restart
        the test (Section 5.2)."""
        deck = dataclasses.replace(NLFILT_DECKS["medium-deps"], n=800)
        pr = []
        for p in (2, 4, 8):
            prog = run_program(
                (make_nlfilt_loop(deck, instance=k) for k in range(2)),
                p,
                RuntimeConfig.adaptive(),
            )
            pr.append(prog.parallelism_ratio)
        assert pr[0] >= pr[-1]

    def test_wavefront_pipeline_on_lu(self):
        """Section 3 + Fig. 6: extract DDG once, schedule by wavefronts,
        beat the plain recursive schedule."""
        deck = dataclasses.replace(SPICE_DECKS["adder.128"], lu_rows=430)
        loop = make_dcdcmp15_loop(deck)
        plain = parallelize(make_dcdcmp15_loop(deck), 8, RuntimeConfig.adaptive())
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=64))
        sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
        wf = execute_wavefront(loop, sched, 8)
        assert wf.speedup > 2 * max(plain.speedup, 0.1)

    def test_fully_parallel_loop_single_stage_all_strategies(self):
        """FMA3D's story: a statically unanalyzable but parallel loop costs
        one stage regardless of strategy."""
        for cfg in (RuntimeConfig.nrd(), RuntimeConfig.rd()):
            res = parallelize(make_quad_loop("train"), 8, cfg)
            assert res.n_stages == 1

    def test_memory_overhead_is_bounded_by_touched_elements(self):
        """The method 'requires less memory overhead' than inspector-based
        techniques (no reference trace): the sparse shadows scale with
        touched elements, not trace length."""
        deck = dataclasses.replace(
            SPICE_DECKS["adder.128"], devices=200, workspace=1 << 20
        )
        loop = make_bjt_loop(deck)
        res = parallelize(loop, 4)
        # Sparse representation: distinct marked refs << workspace size.
        total_refs = sum(s.committed_elements for s in res.stages)
        assert total_refs < 4096
