"""Unit tests for the virtual-clock timeline."""

import pytest

from repro.machine.timeline import GLOBAL, Category, StageRecord, Timeline


class TestStageRecord:
    def test_span_is_max_over_procs(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 10.0)
        r.charge(1, Category.WORK, 4.0)
        assert r.span() == 10.0

    def test_global_charges_add_to_span(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 10.0)
        r.charge(GLOBAL, Category.SYNC, 3.0)
        assert r.span() == 13.0

    def test_charges_accumulate_per_proc(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 1.0)
        r.charge(0, Category.MARK, 2.0)
        assert r.proc_time(0) == 3.0

    def test_negative_charge_rejected(self):
        r = StageRecord(0)
        with pytest.raises(ValueError):
            r.charge(0, Category.WORK, -1.0)

    def test_category_total_sums_all_procs(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 2.0)
        r.charge(1, Category.WORK, 3.0)
        assert r.category_total(Category.WORK) == 5.0

    def test_category_span_is_parallel(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 2.0)
        r.charge(1, Category.WORK, 3.0)
        assert r.category_span(Category.WORK) == 3.0

    def test_commit_and_restore_overlap(self):
        # Commit on committing procs, restore on failed procs: the stage
        # span reflects the slower of the two groups, not the sum.
        r = StageRecord(0)
        r.charge(0, Category.COMMIT, 5.0)
        r.charge(1, Category.RESTORE, 3.0)
        assert r.span() == 5.0

    def test_breakdown_only_nonzero(self):
        r = StageRecord(0)
        r.charge(0, Category.WORK, 1.0)
        bd = r.breakdown()
        assert Category.WORK in bd
        assert Category.COMMIT not in bd

    def test_empty_stage_span_zero(self):
        assert StageRecord(0).span() == 0.0


class TestTimeline:
    def test_stages_sum(self):
        tl = Timeline()
        r1 = tl.begin_stage()
        r1.charge(0, Category.WORK, 5.0)
        r2 = tl.begin_stage()
        r2.charge(0, Category.WORK, 7.0)
        assert tl.total_time() == 12.0
        assert tl.n_stages() == 2

    def test_cumulative_spans(self):
        tl = Timeline()
        tl.begin_stage().charge(0, Category.WORK, 5.0)
        tl.begin_stage().charge(0, Category.WORK, 7.0)
        assert tl.cumulative_spans() == [5.0, 12.0]

    def test_overhead_excludes_work(self):
        tl = Timeline()
        r = tl.begin_stage()
        r.charge(0, Category.WORK, 10.0)
        r.charge(GLOBAL, Category.SYNC, 4.0)
        assert tl.overhead_time() == pytest.approx(4.0)

    def test_current_requires_stage(self):
        with pytest.raises(RuntimeError):
            Timeline().current

    def test_total_category_across_stages(self):
        tl = Timeline()
        tl.begin_stage().charge(0, Category.MARK, 1.0)
        tl.begin_stage().charge(1, Category.MARK, 2.0)
        assert tl.total_category(Category.MARK) == 3.0

    def test_merge_from(self):
        a, b = Timeline(), Timeline()
        a.begin_stage().charge(0, Category.WORK, 1.0)
        b.begin_stage().charge(0, Category.WORK, 2.0)
        a.merge_from(b)
        assert a.n_stages() == 2
        assert a.total_time() == 3.0

    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.total_time() == 0.0
        assert tl.cumulative_spans() == []
