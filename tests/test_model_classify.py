"""Edge-case and property coverage for the dependence-parameter estimators.

:func:`repro.model.classify.estimate_alpha` / :func:`estimate_beta` are
fed by arbitrary :class:`RunResult` stage series, including the degenerate
shapes the adaptive machinery produces (zero-iteration loops, one-stage
runs, terminal stages committing everything at once).  The estimators must
return ``None`` -- never divide by zero or emit NaN -- on unobservable
inputs, and must round-trip the planted parameter on clean synthetic
geometric/linear decks across the whole parameter range.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RuntimeConfig
from repro.core.rlrpd import run_blocked
from repro.model.classify import (
    classify_loop,
    estimate_alpha,
    estimate_beta,
    remaining_series,
)
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_rd_targets,
    linear_chain_targets,
)


def _fake_run(n: int, remaining: list[int]) -> SimpleNamespace:
    """Minimal RunResult stand-in: ``remaining`` is the per-stage
    remaining-after series; committed counts follow from the deltas."""
    stages = []
    before = n
    for after in remaining:
        stages.append(
            SimpleNamespace(
                remaining_after=after, committed_iterations=before - after
            )
        )
        before = after
    return SimpleNamespace(n_iterations=n, stages=stages)


class TestEstimatorEdgeCases:
    def test_zero_iteration_run(self):
        run = _fake_run(0, [])
        assert estimate_alpha(run) is None
        assert estimate_beta(run) is None
        assert classify_loop(run).kind == "parallel"

    def test_zero_iterations_with_one_empty_stage(self):
        run = _fake_run(0, [0])
        assert estimate_alpha(run) is None
        assert estimate_beta(run) is None

    def test_single_stage_run_alpha_unobservable(self):
        run = _fake_run(64, [0])
        assert estimate_alpha(run) is None
        assert estimate_beta(run) == pytest.approx(0.0)
        assert classify_loop(run).kind == "parallel"

    def test_monotone_degenerate_one_iteration_per_stage(self):
        # A fully sequentialized loop: remaining drops by one each stage.
        n = 8
        run = _fake_run(n, list(range(n - 1, -1, -1)))
        alpha = estimate_alpha(run)
        assert alpha is not None and 0.0 < alpha < 1.0
        beta = estimate_beta(run)
        assert beta == pytest.approx(1.0 - 1.0 / n)
        # Remaining falls by a constant count, not a constant fraction.
        assert classify_loop(run).kind == "linear"

    def test_stalled_series_yields_alpha_one(self):
        # Defensive shape: a stage that commits nothing must not produce
        # alpha > 1 or a crash.
        run = _fake_run(64, [32, 32, 0])
        alpha = estimate_alpha(run)
        assert alpha is not None and alpha <= 1.0

    def test_terminal_zero_excluded_from_alpha(self):
        # remaining 64 -> 32 -> 0: the final ratio 0/32 is unobservable in
        # log space and must be skipped, not crash the geometric mean.
        run = _fake_run(64, [32, 0])
        assert estimate_alpha(run) == pytest.approx(0.5)

    def test_remaining_series_shape(self):
        run = _fake_run(16, [8, 0])
        assert remaining_series(run) == [16, 8, 0]


class TestRoundTrip:
    @settings(max_examples=12, deadline=None)
    @given(alpha=st.sampled_from([0.3, 0.4, 0.5, 0.6, 0.7]))
    def test_geometric_deck_round_trips_alpha(self, alpha):
        n, p = 1024, 8
        loop = chain_loop(n, geometric_rd_targets(n, alpha, p))
        res = run_blocked(loop, p, RuntimeConfig.rd())
        est = estimate_alpha(res)
        assert est == pytest.approx(alpha, abs=0.12)
        assert classify_loop(res).kind == "geometric"

    @settings(max_examples=8, deadline=None)
    @given(p=st.sampled_from([2, 4, 8, 16]))
    def test_linear_deck_round_trips_beta(self, p):
        n = 512
        loop = chain_loop(n, linear_chain_targets(n, p))
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        assert estimate_beta(res) == pytest.approx((p - 1) / p, abs=0.05)
        if p > 2:  # p=2 is a 2-stage series; both models fit it exactly
            assert classify_loop(res).kind == "linear"

    def test_parallel_deck_is_unclassifiable_not_misclassified(self):
        res = run_blocked(fully_parallel_loop(256), 8, RuntimeConfig.nrd())
        verdict = classify_loop(res)
        assert verdict.kind == "parallel"
        assert verdict.alpha is None
