"""Property-based tests (hypothesis): the runtime's invariants under
arbitrary access patterns.

The generator draws a full per-iteration operation table -- any mix of
reads and writes to any elements -- so the speculative runtime is exercised
against flow, anti, output, and read-modify-write patterns it has never
seen in the unit tests.  The oracle is always the same: a sequential
execution of the identical loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.sequential import sequential_reference
from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.lrpd import run_doall_lrpd
from repro.core.runner import parallelize
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.util.bitset import BitSet
from repro.util.blocks import partition_weighted, validate_blocks


# ---------------------------------------------------------------------------
# Random-loop generator
# ---------------------------------------------------------------------------

ops_tables = st.integers(min_value=1, max_value=48).flatmap(
    lambda n: st.integers(min_value=1, max_value=24).flatmap(
        lambda m: st.tuples(
            st.just(n),
            st.just(m),
            st.lists(
                st.lists(
                    st.tuples(
                        st.sampled_from(["r", "w"]),
                        st.integers(min_value=0, max_value=m - 1),
                    ),
                    max_size=4,
                ),
                min_size=n,
                max_size=n,
            ),
        )
    )
)


def loop_from_table(n: int, m: int, table) -> SpeculativeLoop:
    def body(ctx, i):
        acc = float(i)
        for kind, idx in table[i]:
            if kind == "r":
                acc += ctx.load("A", idx)
            else:
                ctx.store("A", idx, acc + idx)

    return SpeculativeLoop(
        "prop", n, body, arrays=[ArraySpec("A", np.arange(float(m)))]
    )


CONFIGS = [
    RuntimeConfig.nrd(),
    RuntimeConfig.rd(),
    RuntimeConfig.adaptive(),
    RuntimeConfig.sw(window_size=6),
    RuntimeConfig.sw(window_size=12, adaptive_window=True),
]


class TestSpeculationSoundness:
    """For every strategy and any access pattern: speculative execution's
    final shared state equals sequential execution's."""

    @settings(max_examples=60, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=1, max_value=9),
           cfg=st.sampled_from(CONFIGS))
    def test_matches_sequential(self, data, p, cfg):
        n, m, table = data
        loop = loop_from_table(n, m, table)
        result = parallelize(loop, p, cfg)
        assert result.memory.equals(sequential_reference(loop))

    @settings(max_examples=40, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=2, max_value=8))
    def test_doall_lrpd_sound_pass_or_fail(self, data, p):
        n, m, table = data
        loop = loop_from_table(n, m, table)
        result = run_doall_lrpd(loop, p)
        assert result.memory.equals(sequential_reference(loop))
        assert result.n_restarts in (0, 1)

    @settings(max_examples=40, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=2, max_value=8))
    def test_nrd_stage_bound(self, data, p):
        """NRD completes in at most p stages (each stage commits at least
        the lowest uncommitted block)."""
        n, m, table = data
        loop = loop_from_table(n, m, table)
        result = parallelize(loop, p, RuntimeConfig.nrd())
        assert result.n_stages <= p

    @settings(max_examples=40, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=2, max_value=8))
    def test_progress_and_accounting(self, data, p):
        n, m, table = data
        loop = loop_from_table(n, m, table)
        result = parallelize(loop, p, RuntimeConfig.rd())
        remaining = [n] + [s.remaining_after for s in result.stages]
        assert all(a > b for a, b in zip(remaining, remaining[1:]))
        assert 0.0 < result.parallelism_ratio <= 1.0
        assert result.speedup > 0.0
        assert result.wasted_work >= -1e-9
        assert sum(s.committed_iterations for s in result.stages) == n


class TestDDGProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=2, max_value=6),
           window=st.integers(min_value=2, max_value=24))
    def test_flow_edges_equal_ground_truth(self, data, p, window):
        """DDG extraction finds exactly the adjacent flow pairs of the
        sequential trace, for any window size."""
        n, m, table = data
        loop = loop_from_table(n, m, table)
        result = extract_ddg(loop, p, RuntimeConfig.sw(window_size=window))

        # Ground truth from the sequential semantics of the table.
        last_write: dict[int, int] = {}
        truth: set[tuple[int, int]] = set()
        for i in range(n):
            seen_write: set[int] = set()
            for kind, idx in table[i]:
                if kind == "r":
                    w = last_write.get(idx)
                    if w is not None and w < i and idx not in seen_write:
                        truth.add((w, i))
                else:
                    seen_write.add(idx)
            for kind, idx in table[i]:
                if kind == "w":
                    last_write[idx] = i
        assert result.flow_pairs() == truth

    @settings(max_examples=30, deadline=None)
    @given(data=ops_tables, p=st.integers(min_value=2, max_value=6))
    def test_wavefront_schedule_valid_and_sound(self, data, p):
        n, m, table = data
        loop = loop_from_table(n, m, table)
        ddg = extract_ddg(loop, p, RuntimeConfig.sw(window_size=8))
        graph = ddg.graph()
        sched = wavefront_schedule(graph, n)
        sched.validate(graph)
        assert 1 <= sched.critical_path <= max(1, n)
        result = execute_wavefront(loop, sched, p)
        assert result.memory.equals(sequential_reference(loop))


class TestInductionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        base=st.integers(min_value=1, max_value=8),
        keep=st.lists(st.booleans(), min_size=40, max_size=40),
        look=st.lists(st.booleans(), min_size=40, max_size=40),
        p=st.integers(min_value=1, max_value=6),
    )
    def test_random_extend_pattern_sound(self, n, base, keep, look, p):
        def body(ctx, i):
            slot = ctx.peek("K")
            value = float(i + 1)
            if look[i] and slot > base:
                value += ctx.load("T", slot - 1)
            ctx.store("T", slot, value)
            if keep[i]:
                ctx.bump("K")

        loop = SpeculativeLoop(
            "prop-extend", n, body,
            arrays=[ArraySpec("T", np.zeros(base + n + 2))],
            inductions=[InductionSpec("K", initial=base)],
        )
        result = parallelize(loop, p)
        assert result.memory.equals(sequential_reference(loop))
        expected_final = base + sum(1 for i in range(n) if keep[i])
        assert result.induction_finals == {"K": expected_final}


class TestExitProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        data=ops_tables,
        p=st.integers(min_value=1, max_value=8),
        exit_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_premature_exit_matches_sequential(self, data, p, exit_seed):
        """Any access pattern plus an exit at an arbitrary iteration: the
        blocked runner commits exactly the sequential prefix."""
        n, m, table = data
        exit_at = exit_seed % n

        def body(ctx, i):
            acc = float(i)
            for kind, idx in table[i]:
                if kind == "r":
                    acc += ctx.load("A", idx)
                else:
                    ctx.store("A", idx, acc + idx)
            if i == exit_at:
                ctx.exit_loop()

        def make():
            return SpeculativeLoop(
                "prop-exit", n, body, arrays=[ArraySpec("A", np.arange(float(m)))]
            )

        result = parallelize(make(), p, RuntimeConfig.nrd())
        assert result.exit_iteration == exit_at
        assert result.memory.equals(sequential_reference(make()))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.integers(min_value=1, max_value=6),
        exit_at=st.integers(min_value=0, max_value=39),
    )
    def test_exit_with_untested_state(self, n, p, exit_at):
        """Untested writes past the exit must be rolled back.

        Untested arrays carry the statically-analyzable contract, so each
        iteration writes its own element (cross-processor sharing of an
        untested element is a declaration error the runtime rejects).
        """
        exit_at = exit_at % n

        def body(ctx, i):
            ctx.store("B", i, float(i) + 1.0)
            if i == exit_at:
                ctx.exit_loop()

        def make():
            return SpeculativeLoop(
                "prop-exit-untested", n, body,
                arrays=[ArraySpec("B", np.zeros(n), tested=False)],
            )

        result = parallelize(make(), p, RuntimeConfig.nrd())
        assert result.memory.equals(sequential_reference(make()))


class TestMixedDeclarationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        data=ops_tables,
        p=st.integers(min_value=1, max_value=8),
        cfg=st.sampled_from([RuntimeConfig.nrd(), RuntimeConfig.rd(),
                             RuntimeConfig.sw(window_size=8)]),
    )
    def test_tested_plus_untested_plus_reduction(self, data, p, cfg):
        """Arbitrary tested-array traffic alongside a contract-respecting
        untested array and an integer reduction: every strategy, one
        oracle."""
        n, m, table = data

        from repro.loopir.reductions import ReductionOp

        def body(ctx, i):
            acc = float(i)
            for kind, idx in table[i]:
                if kind == "r":
                    acc += ctx.load("A", idx)
                else:
                    ctx.store("A", idx, acc + idx)
            ctx.store("LOG", i, acc)          # untested, own element
            ctx.update("COUNT", i % 2, 1.0)   # integer reduction

        def make():
            return SpeculativeLoop(
                "prop-mixed", n, body,
                arrays=[
                    ArraySpec("A", np.arange(float(m))),
                    ArraySpec("LOG", np.zeros(n), tested=False),
                    ArraySpec("COUNT", np.zeros(2)),
                ],
                reductions={"COUNT": ReductionOp.SUM},
            )

        result = parallelize(make(), p, cfg)
        assert result.memory.equals(sequential_reference(make()))


class TestReductionProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        bins=st.integers(min_value=1, max_value=8),
        p=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_integer_reductions_exact(self, n, bins, p, seed):
        """Integer-valued reductions commute exactly: any distribution of
        updates over processors reproduces the sequential result bit for
        bit."""
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, bins, size=n)
        increments = rng.integers(1, 5, size=n).astype(np.float64)

        def body(ctx, i):
            ctx.update("H", int(targets[i]), float(increments[i]))

        from repro.loopir.reductions import ReductionOp

        def make():
            return SpeculativeLoop(
                "prop-red", n, body,
                arrays=[ArraySpec("H", np.zeros(bins))],
                reductions={"H": ReductionOp.SUM},
            )

        result = parallelize(make(), p, RuntimeConfig.rd())
        assert result.n_stages == 1
        assert result.memory.equals(sequential_reference(make()))


class TestAnalysisPathEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        data=ops_tables,
        n_groups=st.integers(min_value=1, max_value=6),
    )
    def test_dense_fast_path_equals_generic(self, data, n_groups):
        """The word-level dense analysis must agree with the set-based
        generic path on earliest sink and the full arc set."""
        from repro.core.analysis import analyze_stage
        from repro.shadow.dense import DenseShadow
        from repro.shadow.sparse import SparseShadow

        n, m, table = data
        dense_groups, sparse_groups = [], []
        for g in range(n_groups):
            dsh, ssh = DenseShadow(m), SparseShadow(m)
            # Deterministically derive this group's marks from the table.
            for i in range(g, n, n_groups):
                for kind, idx in table[i]:
                    if kind == "r":
                        dsh.mark_read(idx)
                        ssh.mark_read(idx)
                    else:
                        dsh.mark_write(idx)
                        ssh.mark_write(idx)
            dense_groups.append((g, {"A": dsh}))
            sparse_groups.append((g, {"A": ssh}))

        fast = analyze_stage(dense_groups)
        generic = analyze_stage(sparse_groups)
        assert fast.earliest_sink_pos == generic.earliest_sink_pos
        key = lambda a: (a.src_pos, a.dst_pos, a.array, a.index)  # noqa: E731
        assert sorted(map(key, fast.arcs)) == sorted(map(key, generic.arcs))
        assert fast.distinct_refs == generic.distinct_refs


class TestDataStructureProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=300),
        ops=st.lists(
            st.tuples(st.sampled_from(["set", "clear"]), st.integers(0, 299)),
            max_size=60,
        ),
    )
    def test_bitset_matches_python_set(self, size, ops):
        bs = BitSet(size)
        model: set[int] = set()
        for op, raw in ops:
            idx = raw % size
            if op == "set":
                bs.set(idx)
                model.add(idx)
            else:
                bs.clear(idx)
                model.discard(idx)
        assert set(map(int, bs.to_indices())) == model
        assert len(bs) == len(model)

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        p=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_weighted_partition_tiles_and_balances(self, n, p, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random(n) + 0.01
        blocks = partition_weighted(0, n, list(range(p)), weights)
        validate_blocks(blocks, 0, n)
        sums = [weights[b.start : b.stop].sum() for b in blocks]
        ideal = weights.sum() / p
        # No block exceeds the ideal share by more than one iteration's
        # weight (the granularity bound of any contiguous partition).
        assert max(sums) <= ideal + weights.max() + 1e-9
