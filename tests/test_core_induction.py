"""Tests for the two-phase speculative-induction runner (EXTEND pattern)."""

import numpy as np
import pytest

from repro.core.induction_runner import run_induction
from repro.errors import ConfigurationError
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from tests.conftest import assert_matches_sequential


def make_extend_like(n=32, base=4, keep_mod=2, lookback_at=()):
    """A miniature EXTEND: conditionally append to a growing array."""
    lookback = frozenset(lookback_at)

    def body(ctx, i):
        slot = ctx.peek("K")
        value = float(i)
        if i in lookback and slot > base:
            value += ctx.load("T", slot - 1)
        ctx.store("T", slot, value)
        if i % keep_mod == 0:  # deterministic loop-variant condition
            ctx.bump("K")

    return SpeculativeLoop(
        "mini_extend", n, body,
        arrays=[ArraySpec("T", np.zeros(base + n + 1), tested=True)],
        inductions=[InductionSpec("K", initial=base)],
    )


class TestCleanRuns:
    def test_two_stages_per_recursion(self):
        loop = make_extend_like()
        res = run_induction(loop, 4)
        assert res.n_stages == 2  # range collection + re-execution
        assert res.n_restarts == 0
        assert_matches_sequential(res, loop)

    def test_final_induction_value(self):
        loop = make_extend_like(n=32, base=4, keep_mod=2)
        res = run_induction(loop, 4)
        assert res.induction_finals == {"K": 4 + 16}

    def test_speedup_roughly_half_of_doall(self):
        loop = make_extend_like(n=4000, keep_mod=3)
        res = run_induction(loop, 8)
        # Two doalls bound the speedup near p/2 (minus overheads).
        assert 2.0 < res.speedup < 4.2

    def test_range_collection_is_side_effect_free(self):
        loop = make_extend_like()
        res = run_induction(loop, 4)
        # Re-run sequentially and compare: phase A must not have leaked
        # wrong-offset writes into shared memory.
        assert_matches_sequential(res, loop)

    def test_single_processor(self):
        loop = make_extend_like()
        res = run_induction(loop, 1)
        assert_matches_sequential(res, loop)


class TestDependences:
    def test_cross_proc_lookback_triggers_recursion(self):
        # Lookbacks on every processor's first appended slot: with 4 procs
        # and blocks of 8, iteration 8 reads the slot appended by proc 0.
        loop = make_extend_like(n=32, lookback_at=[8])
        res = run_induction(loop, 4)
        assert res.n_restarts >= 1
        assert_matches_sequential(res, loop)

    def test_heavy_lookbacks_still_correct(self):
        loop = make_extend_like(n=64, lookback_at=range(1, 64, 5))
        res = run_induction(loop, 8)
        assert_matches_sequential(res, loop)

    def test_intra_proc_lookback_no_restart(self):
        # Iteration 3 looks back at a slot written by iteration 2 on the
        # same processor: private data, no cross-processor dependence.
        loop = make_extend_like(n=32, base=4, keep_mod=1, lookback_at=[3])
        res = run_induction(loop, 4)
        assert res.n_restarts == 0
        assert_matches_sequential(res, loop)


class TestIncrementStability:
    def test_data_dependent_increment_mismatch_detected(self):
        """A counter whose control flow reads counter-indexed data violates
        the technique's contract; phases disagree and the runner must fall
        back to recursion instead of committing wrong state."""
        n, base = 16, 2

        def body(ctx, i):
            slot = ctx.peek("K")
            ctx.store("T", slot, float(i + 1))
            if slot > base and ctx.load("T", slot - 1) > 4.0:
                ctx.bump("K")
            elif i % 2 == 0:
                ctx.bump("K")

        loop = SpeculativeLoop(
            "unstable", n, body,
            arrays=[ArraySpec("T", np.zeros(base + n + 2), tested=True)],
            inductions=[InductionSpec("K", initial=base)],
        )
        res = run_induction(loop, 4)
        assert_matches_sequential(res, loop)


class TestValidation:
    def test_rejects_non_induction_loop(self):
        loop = SpeculativeLoop(
            "plain", 4, lambda ctx, i: None,
            arrays=[ArraySpec("A", np.zeros(4))],
        )
        with pytest.raises(ConfigurationError):
            run_induction(loop, 2)

    def test_range_collection_not_counted_as_restart(self):
        loop = make_extend_like()
        res = run_induction(loop, 4)
        assert res.parallelism_ratio == 1.0

    def test_strategy_label(self):
        res = run_induction(make_extend_like(), 2)
        assert "induction" in res.strategy
