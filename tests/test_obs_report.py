"""Golden-file tests for ``repro report`` and the Perfetto exporter.

``tests/data/report_fixture.jsonl`` is a small recorded trace (chain loop,
p=2, NRD, metrics + spans on); the committed goldens are the exact report
text and Chrome trace-event JSON folded from it.  The fixture is static,
so the fold is deterministic even though the recorded host times were
not.  Regenerate all three files after an intentional format change::

    PYTHONPATH=src:. python tests/test_obs_report.py --regen
"""

import json
import pathlib

import pytest

from repro.obs.report import load_trace, run_report, write_perfetto

DATA = pathlib.Path(__file__).parent / "data"
FIXTURE = DATA / "report_fixture.jsonl"
GOLDEN_REPORT = DATA / "report_fixture_report.txt"
GOLDEN_PERFETTO = DATA / "report_fixture.perfetto.json"
FIXTURE_THREADS = DATA / "report_fixture_threads.jsonl"
GOLDEN_REPORT_THREADS = DATA / "report_fixture_threads_report.txt"
GOLDEN_PERFETTO_THREADS = DATA / "report_fixture_threads.perfetto.json"


def _record_fixture(path=FIXTURE, backend=None):
    from repro.config import RuntimeConfig
    from repro.core.runner import parallelize
    from repro.workloads.synthetic import chain_loop, geometric_chain_targets

    n = 24
    loop = chain_loop(n, geometric_chain_targets(n, 0.5))
    overrides = {"backend": backend} if backend else {}
    parallelize(loop, 2, RuntimeConfig.nrd(
        metrics=True, spans=True, trace_path=str(path), **overrides
    ))


class TestReportGolden:
    def test_report_matches_golden(self):
        events = load_trace(str(FIXTURE))
        assert run_report(events) == GOLDEN_REPORT.read_text().rstrip("\n")

    def test_perfetto_export_matches_golden(self, tmp_path):
        events = load_trace(str(FIXTURE))
        out = tmp_path / "trace.perfetto.json"
        written = write_perfetto(events, str(out))
        golden = json.loads(GOLDEN_PERFETTO.read_text())
        assert json.loads(out.read_text()) == golden
        assert written == len(golden["traceEvents"])

    def test_fixture_round_trips_through_jsonl(self):
        from repro.obs.events import validate_events

        events = load_trace(str(FIXTURE))
        validate_events(events)
        lines = FIXTURE.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == [
            e.to_dict() for e in events
        ]


class TestReportGoldenThreads:
    """The same fold, from a trace recorded under the threads backend.

    Threads run blocks on pool threads with cooperative supervision; the
    recorded deterministic stream must fold to the same report shape,
    and the committed goldens pin it exactly.
    """

    def test_report_matches_golden(self):
        events = load_trace(str(FIXTURE_THREADS))
        expected = GOLDEN_REPORT_THREADS.read_text().rstrip("\n")
        assert run_report(events) == expected

    def test_perfetto_export_matches_golden(self, tmp_path):
        events = load_trace(str(FIXTURE_THREADS))
        out = tmp_path / "trace.perfetto.json"
        written = write_perfetto(events, str(out))
        golden = json.loads(GOLDEN_PERFETTO_THREADS.read_text())
        assert json.loads(out.read_text()) == golden
        assert written == len(golden["traceEvents"])

    def test_virtual_plane_matches_serial_fixture(self):
        """Virtual-clock content is backend-invariant: everything except
        the non-deterministic host timings matches the serial fixture.
        Span virtual durations are summed per-backend (worker-side for
        threads), so they agree to float tolerance, not bitwise."""
        def virtual_view(path):
            events = []
            for e in load_trace(str(path)):
                d = e.to_dict()
                for key in ("host_start", "host_dur", "total_time"):
                    d.pop(key, None)
                for key in ("virt_start", "virt_dur"):
                    if isinstance(d.get(key), float):
                        d[key] = round(d[key], 9)
                events.append(d)
            return events

        assert virtual_view(FIXTURE_THREADS) == virtual_view(FIXTURE)


class TestReportContent:
    @pytest.fixture(scope="class")
    def report(self):
        return run_report(load_trace(str(FIXTURE)))

    def test_has_every_section(self, report):
        for title in ("run", "stages", "virtual phase breakdown",
                      "host phase breakdown", "metrics"):
            assert f"{title}\n" in report

    def test_run_table_fields(self, report):
        for field in ("loop", "strategy", "processors", "success ratio",
                      "PR", "T_seq (virtual)", "T_par (virtual)", "speedup"):
            assert field in report

    def test_virtual_breakdown_names_work_phase(self, report):
        assert "work" in report

    def test_metrics_section_lists_shadow_marks(self, report):
        assert "shadow.marks" in report


class TestReportCli:
    def test_cli_report_prints_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.perfetto.json"
        assert main(["report", str(FIXTURE), "--perfetto", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "success ratio" in printed
        assert f"wrote {len(json.loads(out.read_text())['traceEvents'])}" in printed

    def test_cli_report_rejects_missing_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_cli_report_rejects_empty_trace(self, tmp_path):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SystemExit, match="empty trace"):
            main(["report", str(empty)])


def _regen() -> None:
    _record_fixture()
    events = load_trace(str(FIXTURE))
    GOLDEN_REPORT.write_text(run_report(events) + "\n")
    write_perfetto(events, str(GOLDEN_PERFETTO))
    print(f"regenerated {FIXTURE}, {GOLDEN_REPORT}, {GOLDEN_PERFETTO}")
    _record_fixture(FIXTURE_THREADS, backend="threads")
    events = load_trace(str(FIXTURE_THREADS))
    GOLDEN_REPORT_THREADS.write_text(run_report(events) + "\n")
    write_perfetto(events, str(GOLDEN_PERFETTO_THREADS))
    print(f"regenerated {FIXTURE_THREADS}, {GOLDEN_REPORT_THREADS}, "
          f"{GOLDEN_PERFETTO_THREADS}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        raise SystemExit(pytest.main([__file__, "-q"]))
