"""Unit tests for the shadow structures (dense, sparse, mark lists, tables)."""

import pytest

from repro.shadow import DenseShadow, SparseShadow, make_shadow
from repro.shadow.edges import DependenceEdge, EdgeKind, InvertedEdgeTable
from repro.shadow.lastref import LastReferenceTable
from repro.shadow.marklist import IterationMarks, MarkList


@pytest.mark.parametrize("shadow_cls", [DenseShadow, SparseShadow])
class TestShadowMarking:
    """The paper's marking semantics, identical in both representations."""

    def test_fresh_shadow_clear(self, shadow_cls):
        sh = shadow_cls(16)
        assert sh.is_clear()
        assert sh.distinct_refs() == 0

    def test_read_first_is_exposed(self, shadow_cls):
        sh = shadow_cls(16)
        sh.mark_read(3)
        assert 3 in sh.exposed_read_set()
        assert 3 in sh.any_read_set()

    def test_write_then_read_not_exposed(self, shadow_cls):
        """If the Write occurs first, subsequent Reads do not set the read
        bit (paper, Section 2)."""
        sh = shadow_cls(16)
        sh.mark_write(3)
        sh.mark_read(3)
        assert 3 not in sh.exposed_read_set()
        assert 3 in sh.any_read_set()

    def test_read_then_write_stays_exposed(self, shadow_cls):
        """If the Read occurs before the Write, both bits remain set --
        the element is not privatizable on this processor."""
        sh = shadow_cls(16)
        sh.mark_read(3)
        sh.mark_write(3)
        assert 3 in sh.exposed_read_set()
        assert 3 in sh.write_set()

    def test_repeated_marks_idempotent(self, shadow_cls):
        sh = shadow_cls(16)
        for _ in range(3):
            sh.mark_write(5)
            sh.mark_read(5)
        assert sh.distinct_refs() == 1

    def test_update_separate_plane(self, shadow_cls):
        sh = shadow_cls(16)
        sh.mark_update(7)
        assert 7 in sh.update_set()
        assert 7 not in sh.write_set()
        assert 7 not in sh.any_read_set()

    def test_distinct_refs_unions_planes(self, shadow_cls):
        sh = shadow_cls(16)
        sh.mark_read(1)
        sh.mark_write(2)
        sh.mark_update(3)
        sh.mark_write(1)  # overlaps the read
        assert sh.distinct_refs() == 3

    def test_reset(self, shadow_cls):
        sh = shadow_cls(16)
        sh.mark_read(0)
        sh.mark_write(1)
        sh.mark_update(2)
        sh.reset()
        assert sh.is_clear()

    def test_out_of_range(self, shadow_cls):
        sh = shadow_cls(4)
        with pytest.raises(IndexError):
            sh.mark_read(4)
        with pytest.raises(IndexError):
            sh.mark_write(-1)


class TestMakeShadow:
    def test_small_dense(self):
        assert isinstance(make_shadow(100), DenseShadow)

    def test_large_sparse(self):
        assert isinstance(make_shadow(1 << 20), SparseShadow)

    def test_forced(self):
        assert isinstance(make_shadow(100, sparse=True), SparseShadow)
        assert isinstance(make_shadow(1 << 20, sparse=False), DenseShadow)


class TestMarkList:
    def test_levels_in_iteration_order(self):
        ml = MarkList("A", proc=2)
        ml.open_level(4).mark_write(0)
        ml.open_level(5).mark_read(0)
        assert len(ml) == 2
        assert ml.level(0).iteration == 4
        assert ml.level(1).iteration == 5

    def test_non_increasing_iteration_rejected(self):
        ml = MarkList("A", proc=0)
        ml.open_level(4)
        with pytest.raises(ValueError):
            ml.open_level(4)

    def test_iteration_marks_intra_iteration_cover(self):
        marks = IterationMarks(0)
        marks.mark_write(3)
        marks.mark_read(3)  # covered by the iteration's own write
        assert 3 not in marks.exposed_reads

    def test_iteration_marks_exposed(self):
        marks = IterationMarks(0)
        marks.mark_read(3)
        marks.mark_write(3)
        assert 3 in marks.exposed_reads

    def test_distinct_refs(self):
        ml = MarkList("A", proc=0)
        lvl = ml.open_level(0)
        lvl.mark_read(1)
        lvl.mark_write(2)
        lvl2 = ml.open_level(1)
        lvl2.mark_update(3)
        assert ml.distinct_refs() == 3

    def test_reset(self):
        ml = MarkList("A", proc=0)
        ml.open_level(0)
        ml.reset()
        assert len(ml) == 0


class TestLastReferenceTable:
    def test_records_latest_write(self):
        t = LastReferenceTable()
        t.record_write("A", 3, 10)
        t.record_write("A", 3, 5)  # older, must not regress
        assert t.last_write("A", 3) == 10

    def test_unknown_returns_none(self):
        t = LastReferenceTable()
        assert t.last_write("A", 0) is None
        assert t.readers_since_write("A", 0) == frozenset()

    def test_all_readers_since_write_kept(self):
        """Regression for a hypothesis-found bug: a write must see *every*
        reader since the previous write, not only the latest one, or anti
        dependences are dropped."""
        t = LastReferenceTable()
        t.record_read("A", 1, 2)
        t.record_read("A", 1, 3)
        assert t.readers_since_write("A", 1) == frozenset({2, 3})

    def test_write_clears_reader_set(self):
        t = LastReferenceTable()
        t.record_read("A", 1, 2)
        t.record_write("A", 1, 4)
        assert t.readers_since_write("A", 1) == frozenset()
        t.record_read("A", 1, 5)
        assert t.readers_since_write("A", 1) == frozenset({5})

    def test_reads_do_not_create_write_entries(self):
        t = LastReferenceTable()
        t.record_read("A", 1, 7)
        assert t.last_write("A", 1) is None

    def test_len_counts_written_addresses(self):
        t = LastReferenceTable()
        t.record_write("A", 0, 1)
        t.record_write("B", 0, 1)
        t.record_write("A", 0, 2)
        assert len(t) == 2

    def test_reset(self):
        t = LastReferenceTable()
        t.record_write("A", 0, 1)
        t.record_read("A", 0, 2)
        t.reset()
        assert len(t) == 0
        assert t.readers_since_write("A", 0) == frozenset()


class TestInvertedEdgeTable:
    def test_edges_deduplicate(self):
        table = InvertedEdgeTable()
        e = DependenceEdge(1, 2, EdgeKind.FLOW, "A", 0)
        table.log(e)
        table.log(DependenceEdge(1, 2, EdgeKind.FLOW, "A", 0))
        assert len(table) == 1

    def test_backward_edge_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge(2, 1, EdgeKind.FLOW, "A", 0)

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge(2, 2, EdgeKind.FLOW, "A", 0)

    def test_distance(self):
        assert DependenceEdge(1, 5, EdgeKind.ANTI, "A", 0).distance == 4

    def test_kind_filter(self):
        table = InvertedEdgeTable()
        table.log(DependenceEdge(1, 2, EdgeKind.FLOW, "A", 0))
        table.log(DependenceEdge(1, 3, EdgeKind.ANTI, "A", 0))
        assert len(table.edges(EdgeKind.FLOW)) == 1
        assert table.iteration_pairs([EdgeKind.ANTI]) == {(1, 3)}

    def test_to_graph_collapses_kinds(self):
        table = InvertedEdgeTable()
        table.log(DependenceEdge(1, 2, EdgeKind.FLOW, "A", 0))
        table.log(DependenceEdge(1, 2, EdgeKind.OUTPUT, "A", 1))
        g = table.to_graph(4)
        assert g.number_of_edges() == 1
        assert g[1][2]["kinds"] == {EdgeKind.FLOW, EdgeKind.OUTPUT}
        assert g.number_of_nodes() == 4

    def test_iteration_order_sorted(self):
        table = InvertedEdgeTable()
        table.log(DependenceEdge(5, 6, EdgeKind.FLOW, "A", 0))
        table.log(DependenceEdge(1, 2, EdgeKind.FLOW, "A", 0))
        assert [e.src for e in table] == [1, 5]
