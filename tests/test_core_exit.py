"""Tests for speculative premature-exit loops (the DCDCMP-70 mechanism)."""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.lrpd import run_doall_lrpd
from repro.core.rlrpd import run_blocked
from repro.core.window import run_sliding_window
from repro.errors import ConfigurationError
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from tests.conftest import assert_matches_sequential


def exit_loop_at(n, exit_at, dep_targets=(), name="exiting"):
    """A loop writing A[i] = i that exits after iteration ``exit_at``;
    optional chain dependences (iteration t reads A[t-1])."""
    targets = frozenset(dep_targets)

    def body(ctx, i):
        value = float(i)
        if i in targets:
            value += ctx.load("A", i - 1)
        ctx.store("A", i, value)
        if i == exit_at:
            ctx.exit_loop()

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("A", np.zeros(n))]
    )


class TestSequentialSemantics:
    def test_sequential_stops_after_exit(self):
        from repro.baselines.sequential import run_sequential

        loop = exit_loop_at(32, exit_at=10)
        res = run_sequential(loop)
        assert res.exit_iteration == 10
        assert res.memory["A"].data[10] == 10.0
        assert res.memory["A"].data[11] == 0.0  # never executed

    def test_exit_iteration_completes(self):
        from repro.baselines.sequential import sequential_reference

        ref = sequential_reference(exit_loop_at(8, exit_at=3))
        assert ref["A"][3] == 3.0


class TestSpeculativeExit:
    @pytest.mark.parametrize("exit_at", [0, 5, 17, 31])
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_matches_sequential(self, exit_at, p):
        loop = exit_loop_at(32, exit_at=exit_at)
        res = run_blocked(loop, p, RuntimeConfig.nrd())
        assert res.exit_iteration == exit_at
        assert_matches_sequential(res, loop)

    def test_single_stage_despite_exit(self):
        """The whole point: the exit does not force sequential execution."""
        loop = exit_loop_at(64, exit_at=40)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.n_stages == 1
        assert res.n_restarts == 0

    def test_speculated_tail_is_overhead_not_state(self):
        loop = exit_loop_at(64, exit_at=20)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        # Iterations past 20 ran speculatively (wasted work) but left no
        # trace in shared memory.
        assert res.memory["A"].data[21] == 0.0
        assert res.wasted_work > 0

    def test_sequential_work_counts_only_committed(self):
        loop = exit_loop_at(64, exit_at=20)
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.sequential_work == pytest.approx(21.0)

    def test_exit_after_dependence_is_revalidated(self):
        """An exit signalled by a processor whose own work is invalid must
        not be trusted: the dependence recursion re-executes and
        re-discovers (or refutes) it."""
        # Arc 39->40 crosses into proc 5's block; exit at 50 sits on proc
        # 6, beyond the sink, so its first sighting is untrustworthy.
        loop = exit_loop_at(64, exit_at=50, dep_targets=[40])
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.exit_iteration == 50
        assert_matches_sequential(res, loop)
        assert res.n_restarts >= 1

    def test_exit_before_dependence_wins(self):
        """An exit below the earliest sink makes the dependence moot."""
        loop = exit_loop_at(64, exit_at=10, dep_targets=[40])
        res = run_blocked(loop, 8, RuntimeConfig.nrd())
        assert res.exit_iteration == 10
        assert res.n_stages == 1
        assert_matches_sequential(res, loop)

    def test_untested_state_restored_past_exit(self):
        def body(ctx, i):
            ctx.store("B", i, float(i) + 1.0)
            if i == 12:
                ctx.exit_loop()

        loop = SpeculativeLoop(
            "exit-untested", 32, body,
            arrays=[ArraySpec("B", np.zeros(32), tested=False)],
        )
        res = run_blocked(loop, 4, RuntimeConfig.nrd())
        assert_matches_sequential(res, loop)
        assert res.memory["B"].data[20] == 0.0  # speculated write rolled back


class TestDoallBaselineWithExit:
    def test_doall_lrpd_falls_back_to_sequential(self):
        loop = exit_loop_at(32, exit_at=10)
        res = run_doall_lrpd(loop, 4)
        assert res.n_restarts == 1  # the old test cannot handle exits
        assert_matches_sequential(res, loop)


class TestUnsupportedRunners:
    def test_sliding_window_rejects_exits(self):
        with pytest.raises(ConfigurationError):
            run_sliding_window(
                exit_loop_at(32, exit_at=5), 4, RuntimeConfig.sw(window_size=8)
            )

    def test_iterwise_rejects_exits(self):
        from repro.core.iterwise import run_blocked_iterwise

        with pytest.raises(ConfigurationError):
            run_blocked_iterwise(exit_loop_at(32, exit_at=5), 4)
