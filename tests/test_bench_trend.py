"""Cross-commit speedup trends (:mod:`repro.bench.trend`).

History loading, the comparable-host grouping (same cpus + GIL mode),
the delta-vs-previous line the benchmark script prints, the trend
tables behind ``repro bench-trend``, and the regression gate.
"""

import json

import pytest

from repro.bench.trend import (
    has_regressions,
    load_history,
    previous_comparable,
    render_delta,
    render_trend,
)


def _entry(commit, date="2026-08-01", cpus=8, gil="gil", **speedups):
    return {
        "commit": commit, "date": date, "cpus": cpus, "gil": gil,
        "backends": sorted({b for s in speedups.values() for b in s}),
        "speedups": speedups,
    }


HISTORY = [
    _entry("aaaa111", date="2026-07-01",
           chain={"fork": 2.0, "threads": 1.1}, doall={"fork": 3.0}),
    _entry("bbbb222", date="2026-07-15",
           chain={"fork": 2.2, "threads": 1.0}, doall={"fork": 3.1}),
    # A different host group: never compared against the 8-cpu entries.
    _entry("bbbb222", date="2026-07-15", cpus=2,
           chain={"fork": 1.2}),
    _entry("cccc333", date="2026-08-01",
           chain={"fork": 1.5, "threads": 1.05}, doall={"fork": 3.2},
           ddg={"serial": 1.0}),
]


class TestLoadHistory:
    def test_reads_history_list(self, tmp_path):
        path = tmp_path / "BENCH_host.json"
        path.write_text(json.dumps({"history": HISTORY, "host": {}}))
        assert load_history(str(path)) == HISTORY

    def test_missing_or_malformed_entries_skipped(self, tmp_path):
        path = tmp_path / "BENCH_host.json"
        path.write_text(json.dumps({"history": [HISTORY[0], "junk", 3]}))
        assert load_history(str(path)) == [HISTORY[0]]

    def test_no_history_key(self, tmp_path):
        path = tmp_path / "BENCH_host.json"
        path.write_text(json.dumps({"workloads": {}}))
        assert load_history(str(path)) == []


class TestPreviousComparable:
    def test_finds_latest_same_group_entry(self):
        assert previous_comparable(HISTORY, HISTORY[3]) is HISTORY[1]

    def test_ignores_other_host_groups(self):
        # The only other 2-cpu entry is itself; no comparable previous.
        assert previous_comparable(HISTORY, HISTORY[2]) is None

    def test_ignores_same_commit(self):
        later = _entry("cccc333", chain={"fork": 9.9})
        assert previous_comparable(
            [HISTORY[3], later], later
        ) is None  # same commit, merged entries are not "previous"

    def test_first_entry_has_no_previous(self):
        assert previous_comparable(HISTORY, HISTORY[0]) is None

    def test_method_change_breaks_comparability(self):
        # Entries recorded under a different timing discipline are not a
        # baseline: a method-tagged entry never compares against the
        # single-sample era (method=None) and vice versa.
        tagged = dict(
            _entry("dddd444", date="2026-08-08", chain={"fork": 0.9}),
            method="warm-best5",
        )
        history = [*HISTORY, tagged]
        assert previous_comparable(history, tagged) is None
        # ...and a second tagged entry compares against the first.
        tagged2 = dict(
            _entry("eeee555", date="2026-08-09", chain={"fork": 0.95}),
            method="warm-best5",
        )
        assert previous_comparable([*history, tagged2], tagged2) is tagged

    def test_method_change_does_not_gate(self):
        # chain/fork 2.2 -> 0.9 would be a huge drop, but the newest
        # entry has no same-method baseline, so nothing regresses.
        tagged = dict(
            _entry("dddd444", date="2026-08-08", chain={"fork": 0.9}),
            method="warm-best5",
        )
        assert not has_regressions([HISTORY[1], tagged])


class TestRenderDelta:
    def test_no_previous(self):
        assert "nothing to compare" in render_delta(HISTORY[0], None)

    def test_flags_regressions_and_new_pairs(self):
        text = render_delta(HISTORY[3], HISTORY[1])
        assert "delta vs bbbb222" in text
        # chain/fork dropped 2.2 -> 1.5 (-32%): flagged.
        assert "chain/fork: 1.50x (-31.8% vs 2.20x)  REGRESSION" in text
        # doall/fork improved: not flagged.
        assert "doall/fork: 3.20x (+3.2% vs 3.10x)" in text
        assert "REGRESSION" not in text.split("doall/fork")[1]
        # ddg/serial did not exist before.
        assert "ddg/serial: 1.00x (new)" in text

    def test_threshold_is_respected(self):
        text = render_delta(HISTORY[3], HISTORY[1], threshold=0.50)
        assert "REGRESSION" not in text


class TestRenderTrend:
    def test_one_table_per_host_group(self):
        text = render_trend(HISTORY)
        assert "host speedups (cpus=8, gil=gil)" in text
        assert "host speedups (cpus=2, gil=gil)" in text

    def test_columns_in_history_order_with_change(self):
        text = render_trend(HISTORY)
        assert "aaaa111 (2026-07-01)" in text
        assert "cccc333 (2026-08-01)" in text
        # The 8-cpu chain/fork row ends with the newest-vs-previous change.
        row = next(
            line for line in text.splitlines()
            if line.strip().startswith("chain/fork") and "2.00x" in line
        )
        assert "1.50x" in row
        assert "-31.8%" in row and "REGRESSION" in row

    def test_missing_measurements_render_as_dash(self):
        text = render_trend(HISTORY)
        row = next(
            line for line in text.splitlines()
            if line.strip().startswith("ddg/serial")
        )
        assert row.count("-") >= 2  # absent in the two older columns

    def test_workload_filter(self):
        text = render_trend(HISTORY, workload="doall")
        assert "doall/fork" in text
        assert "chain/fork" not in text
        # The 2-cpu group has no doall rows at all: table omitted.
        assert "cpus=2" not in text

    def test_empty_history_message(self):
        assert "history is empty" in render_trend([])

    def test_method_tagged_entries_get_their_own_table(self):
        tagged = dict(
            _entry("dddd444", date="2026-08-08", chain={"fork": 0.9}),
            method="warm-best5",
        )
        text = render_trend([*HISTORY, tagged])
        assert "host speedups (cpus=8, gil=gil) [warm-best5]" in text
        # The untagged group's table is unchanged alongside it.
        assert "host speedups (cpus=8, gil=gil)\n" in text


class TestHasRegressions:
    def test_detects_newest_drop(self):
        assert has_regressions(HISTORY)

    def test_relaxed_threshold_passes(self):
        assert not has_regressions(HISTORY, threshold=0.50)

    def test_no_history_or_no_previous(self):
        assert not has_regressions([])
        assert not has_regressions([HISTORY[0]])


class TestCli:
    def _write(self, tmp_path, history):
        path = tmp_path / "BENCH_host.json"
        path.write_text(json.dumps({"history": history}))
        return str(path)

    def test_bench_trend_prints_tables(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench-trend", self._write(tmp_path, HISTORY)]) == 0
        out = capsys.readouterr().out
        assert "host speedups (cpus=8, gil=gil)" in out
        assert "REGRESSION" in out

    def test_strict_exits_nonzero_on_regression(self, tmp_path):
        from repro.cli import main

        path = self._write(tmp_path, HISTORY)
        assert main(["bench-trend", path, "--strict"]) == 1
        assert main(["bench-trend", path, "--strict",
                     "--threshold", "0.5"]) == 0

    def test_missing_results_file_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench-trend", str(tmp_path / "nope.json")])

    def test_workload_filter_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench-trend", self._write(tmp_path, HISTORY),
                     "--workload", "doall"]) == 0
        out = capsys.readouterr().out
        assert "doall/fork" in out
        assert "chain/fork" not in out
