"""The paper's headline result shapes, asserted at test scale.

The benchmark suite regenerates the full figures; these tests pin the
*conclusions* -- who wins, in which regime -- so a regression that flips a
figure's story fails ``pytest tests/`` too, not just the benchmarks.
"""

import dataclasses

import pytest

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.rlrpd import run_blocked
from repro.core.runner import parallelize, run_program
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.core.window import run_sliding_window
from repro.machine.costs import CostModel
from repro.machine.timeline import Category
from repro.workloads.spice import SPICE_DECKS, make_dcdcmp15_loop
from repro.workloads.synthetic import chain_loop, geometric_chain_targets
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop


class TestFig4Shape:
    """Never / adaptive / always redistribution on the alpha=1/2 loop."""

    @pytest.fixture(scope="class")
    def runs(self):
        n, p = 1024, 8
        costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
        targets = geometric_chain_targets(n, 0.5)
        return {
            label: run_blocked(chain_loop(n, targets), p, cfg, costs=costs)
            for label, cfg in [
                ("never", RuntimeConfig.nrd()),
                ("adaptive", RuntimeConfig.adaptive()),
                ("always", RuntimeConfig.rd()),
            ]
        }

    def test_nrd_worst_by_wide_margin(self, runs):
        assert runs["never"].total_time > 1.15 * runs["always"].total_time
        assert runs["never"].total_time > 1.15 * runs["adaptive"].total_time

    def test_adaptive_at_least_matches_always(self, runs):
        assert runs["adaptive"].total_time <= runs["always"].total_time * 1.02

    def test_adaptive_prefix_tracks_always(self, runs):
        """Early stages redistribute identically; divergence starts only
        once Eq. (4) stops paying."""
        a = runs["adaptive"].stage_spans()
        b = runs["always"].stage_spans()
        assert a[:3] == pytest.approx(b[:3])


class TestFig8Fig9Flip:
    """SW wins on the long-distance deck, blocked wins on the short one."""

    def best_sw(self, deck, p=8):
        best = 0.0
        for w in (p, 2 * p, 4 * p, 8 * p):
            res = run_sliding_window(
                make_nlfilt_loop(deck), p, RuntimeConfig.sw(window_size=w)
            )
            best = max(best, res.speedup)
        return best

    def best_blocked(self, deck, p=8):
        return max(
            run_blocked(make_nlfilt_loop(deck), p, cfg).speedup
            for cfg in (RuntimeConfig.nrd(), RuntimeConfig.rd())
        )

    def test_long_distance_favors_sw(self):
        deck = dataclasses.replace(NLFILT_DECKS["16-400"], n=1600)
        assert self.best_sw(deck) > self.best_blocked(deck)

    def test_short_distance_favors_blocked(self):
        deck = dataclasses.replace(NLFILT_DECKS["15-250"], n=1000)
        assert self.best_blocked(deck) > self.best_sw(deck)


class TestFig12aShape:
    def test_all_optimizations_best_none_worst(self):
        deck = dataclasses.replace(NLFILT_DECKS["opt-study"], n=1200)
        all_opts = RuntimeConfig.adaptive(
            on_demand_checkpoint=True, feedback_balancing=True
        )

        def speedup(cfg):
            return run_program(
                (make_nlfilt_loop(deck, instance=k) for k in range(3)), 8, cfg
            ).speedup

        s_all = speedup(all_opts)
        s_none = speedup(RuntimeConfig.nrd(on_demand_checkpoint=False))
        assert s_all > s_none * 1.2

    def test_on_demand_checkpointing_slashes_volume(self):
        deck = dataclasses.replace(NLFILT_DECKS["opt-study"], n=1200)
        on = parallelize(
            make_nlfilt_loop(deck), 8, RuntimeConfig.adaptive()
        )
        off = parallelize(
            make_nlfilt_loop(deck), 8,
            RuntimeConfig.adaptive(on_demand_checkpoint=False),
        )
        # Wall-clock checkpointing cost (the full copy is one serialized
        # bulk pass; on-demand spreads tiny first-touch charges across the
        # processors doing useful work).
        assert off.timeline.total_category(Category.CHECKPOINT) > (
            5 * on.timeline.total_category(Category.CHECKPOINT)
        )


class TestFig6Shape:
    def test_wavefront_lu_beats_plain_by_a_wide_margin(self):
        deck = dataclasses.replace(SPICE_DECKS["adder.128"], lu_rows=860)
        loop = make_dcdcmp15_loop(deck)
        plain = parallelize(make_dcdcmp15_loop(deck), 8, RuntimeConfig.adaptive())
        ddg = extract_ddg(loop, 8, RuntimeConfig.sw(window_size=128))
        sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
        wf = execute_wavefront(loop, sched, 8)
        assert wf.speedup > 3 * max(plain.speedup, 0.1)
        # Critical path matches the deck's designed n/parallelism ratio.
        ratio = loop.n_iterations / sched.critical_path
        assert ratio == pytest.approx(deck.target_parallelism, rel=0.2)
