"""Exception hierarchy for the R-LRPD runtime.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch runtime-system failures without masking programming errors
(``TypeError``/``ValueError`` raised on misuse are left as built-ins).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid :class:`repro.config.RuntimeConfig` combination was given."""


class SpeculationError(ReproError):
    """Speculative execution reached an inconsistent internal state.

    This indicates a bug in the runtime (e.g. a stage failed to make
    progress), never a data dependence in the user's loop: dependences are
    an expected outcome handled by re-execution, not an error.
    """


class NoProgressError(SpeculationError):
    """A recursive stage committed zero processors.

    The R-LRPD invariant guarantees the lowest-ranked processor of every
    stage executes correctly, so a stage that commits nothing means the
    analysis phase or commit logic is broken.
    """


class InspectorUnavailableError(ReproError):
    """Raised by the inspector/executor baseline for loops without a proper
    inspector (address computation depends on loop data, so a side-effect
    free inspector cannot be extracted -- the exact limitation the R-LRPD
    test removes)."""


class CheckpointError(ReproError):
    """Checkpoint or restore of untested shared state failed."""


class ScheduleError(ReproError):
    """An iteration schedule (block partition, window, wavefront) is
    malformed: overlapping blocks, gaps, or out-of-order assignment."""
