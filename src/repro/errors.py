"""Exception hierarchy for the R-LRPD runtime.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch runtime-system failures without masking programming errors
(``TypeError``/``ValueError`` raised on misuse are left as built-ins).

Errors carry optional structured context -- the loop, stage and processor
involved -- so a failure deep inside a multi-stage run (or a chaos sweep
over thousands of seeded fault plans) pinpoints itself without string
parsing: ``exc.loop``, ``exc.stage`` and ``exc.proc`` are machine-readable
and are appended to the message when present.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    ``loop`` / ``stage`` / ``proc`` identify where in a run the error arose
    (loop name, driver stage index, processor rank); each is ``None`` when
    not applicable.
    """

    def __init__(
        self,
        message: str = "",
        *,
        loop: str | None = None,
        stage: int | None = None,
        proc: int | None = None,
    ) -> None:
        self.loop = loop
        self.stage = stage
        self.proc = proc
        context = [
            f"{label}={value}"
            for label, value in (("loop", loop), ("stage", stage), ("proc", proc))
            if value is not None
        ]
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class ConfigurationError(ReproError):
    """An invalid :class:`repro.config.RuntimeConfig` combination was given."""


class SpeculationError(ReproError):
    """Speculative execution reached an inconsistent internal state.

    This indicates a bug in the runtime (e.g. a stage failed to make
    progress), never a data dependence in the user's loop: dependences are
    an expected outcome handled by re-execution, not an error.
    """


class NoProgressError(SpeculationError):
    """A recursive stage committed zero processors.

    The R-LRPD invariant guarantees the lowest-ranked processor of every
    stage executes correctly, so a stage that commits nothing means the
    analysis phase or commit logic is broken.  (A stage zeroed by an
    *injected fault* is not an error -- the drivers retry it within the
    configured bound and raise :class:`FaultError` only past the bound.)
    """


class FaultError(ReproError):
    """An injected fault could not be recovered.

    Raised when every processor has permanently fail-stopped, or when
    fault-induced zero-progress retries exceed
    ``RuntimeConfig.max_fault_retries``.  Carries the loop/stage/proc
    context of the unrecoverable fault.
    """


class SelfCheckError(SpeculationError):
    """Runtime self-verification (``RuntimeConfig.self_check``) failed.

    Either a stage violated the untested-array isolation contract, or the
    final shared memory diverged from the sequential oracle -- in both
    cases the run's output cannot be trusted.
    """


class InspectorUnavailableError(ReproError):
    """Raised by the inspector/executor baseline for loops without a proper
    inspector (address computation depends on loop data, so a side-effect
    free inspector cannot be extracted -- the exact limitation the R-LRPD
    test removes)."""


class CheckpointError(ReproError):
    """Checkpoint or restore of untested shared state failed."""


class BackendError(ReproError):
    """An execution backend (:mod:`repro.core.backend`) failed to dispatch
    or merge a stage's blocks: a worker raised an exception, or the
    stage's schedule violated the backend's one-block-per-processor
    contract.  Worker-raised failures identify the worker slot, its pid
    and the in-flight blocks (stage, block positions, processors) in the
    message.  Distinct from :class:`ConfigurationError`: the configuration
    was valid, the host-side execution machinery broke.  A worker that
    merely *dies* or hangs no longer raises this -- the supervisor
    (:mod:`repro.core.supervise`) respawns it and re-dispatches the lost
    blocks, degrading shm -> fork -> serial if the pool is beyond repair."""


class ScheduleError(ReproError):
    """An iteration schedule (block partition, window, wavefront) is
    malformed: overlapping blocks, gaps, or out-of-order assignment."""
