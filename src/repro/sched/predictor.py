"""History-based strategy and window-size prediction.

The paper leaves two knobs to history: *"So far we have not devised a
strategy to choose between the two techniques except through the use of
history based predictions"* (SW vs (N)RD, Section 2), and *"Ideally, we want
the largest window size for which there is a minimum number of failures
(restarts); this size can be adapted based on previous loop
instantiations"*.  This module implements both predictors:

* :class:`StrategyPredictor` -- tries each candidate configuration once
  (round-robin exploration), then keeps choosing the configuration with the
  best observed speedup, re-exploring on demand when the observed behavior
  degrades.
* :class:`WindowPredictor` -- multiplicative-increase / multiplicative-
  decrease on the window size: grow after clean instantiations (fewer
  global synchronizations), shrink when restarts exceed a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RuntimeConfig
from repro.core.results import RunResult


@dataclass
class _History:
    """Observed outcomes of one configuration on one loop."""

    runs: int = 0
    total_speedup: float = 0.0
    total_restarts: int = 0

    def record(self, result: RunResult) -> None:
        self.runs += 1
        self.total_speedup += result.speedup
        self.total_restarts += result.n_restarts

    @property
    def mean_speedup(self) -> float:
        return self.total_speedup / self.runs if self.runs else 0.0


@dataclass
class StrategyPredictor:
    """Pick a runtime configuration per instantiation from observed history.

    ``candidates`` is the configuration menu (e.g. NRD, adaptive RD, and a
    couple of window sizes).  Each candidate is explored ``explore_rounds``
    times per loop; afterwards the empirically fastest one is exploited.
    ``degrade_tolerance`` triggers re-exploration when the chosen
    configuration's latest speedup falls below that fraction of its mean
    (the loop's behavior changed between instantiations).
    """

    candidates: list[RuntimeConfig]
    explore_rounds: int = 1
    degrade_tolerance: float = 0.6
    _history: dict[tuple[str, str], _History] = field(default_factory=dict)
    _reexplore: dict[str, int] = field(default_factory=dict)
    _hint_order: dict[str, list[RuntimeConfig]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("StrategyPredictor needs at least one candidate")
        if self.explore_rounds < 1:
            raise ValueError("explore_rounds must be >= 1")

    def _hist(self, loop_name: str, config: RuntimeConfig) -> _History:
        return self._history.setdefault(
            (loop_name, config.label()), _History()
        )

    def choose(self, loop_name: str) -> RuntimeConfig:
        """Configuration to use for the next instantiation of the loop."""
        pending = self._reexplore.get(loop_name, 0)
        candidates = self._hint_order.get(loop_name, self.candidates)
        for config in candidates:
            hist = self._hist(loop_name, config)
            if hist.runs < self.explore_rounds + pending:
                return config
        return max(
            candidates,
            key=lambda c: self._hist(loop_name, c).mean_speedup,
        )

    def record(self, loop_name: str, config: RuntimeConfig, result: RunResult) -> None:
        hist = self._hist(loop_name, config)
        if (
            hist.runs >= self.explore_rounds
            and result.speedup < self.degrade_tolerance * hist.mean_speedup
        ):
            # Behavior shifted: schedule one more exploration round.
            self._reexplore[loop_name] = self._reexplore.get(loop_name, 0) + 1
        hist.record(result)

    def best_label(self, loop_name: str) -> str:
        """Currently preferred configuration label (diagnostics)."""
        return self.choose(loop_name).label()

    def note_hint(self, loop_name: str, certificate) -> None:
        """Seed this loop's exploration order from a certificate hint.

        A :class:`~repro.model.certify.LoopCertificate` carrying a
        ``strategy_hint`` promotes the matching candidate(s) to the front
        of ``loop_name``'s exploration order: the hinted family is tried
        first, so short histories converge on it immediately while the
        measured speedups retain the final say.  Unknown or absent hints
        leave the order untouched; other loops are unaffected.
        """
        hint = getattr(certificate, "strategy_hint", None)
        if not hint:
            return
        window = getattr(certificate, "window_hint", None)

        def matches(config: RuntimeConfig) -> bool:
            label = config.label()
            if hint == "sw":
                if not label.startswith("SW"):
                    return False
                return window is None or config.window_size == window
            return {
                "nrd": label == "NRD",
                "rd": label == "RD",
                "adaptive": label == "RD-adaptive",
            }.get(hint, False)

        hinted = [c for c in self.candidates if matches(c)]
        if hinted:
            rest = [c for c in self.candidates if not matches(c)]
            self._hint_order[loop_name] = hinted + rest


@dataclass
class _WindowState:
    window: int
    direction: int = +1  # +1 grow, -1 shrink
    last_speedup: float | None = None


@dataclass
class WindowPredictor:
    """Adapt the sliding-window size across instantiations.

    A 1-D hill climb on observed speedup: keep moving the window in the
    current direction (doubling / halving) while the measured speedup
    improves, reverse on regression.  This captures both of the paper's
    prescriptions -- growing blocks "when many close dependences are
    encountered" (restarts are cheap relative to the saved barriers) and
    shrinking from "a very large block... until no re-executions are
    needed" -- without hard-coding which effect dominates: the speedup
    measurement arbitrates.
    """

    initial: int
    minimum: int = 2
    maximum: int = 1 << 16
    _states: dict[str, _WindowState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.initial < self.minimum:
            raise ValueError("initial window below minimum")
        if self.maximum < self.initial:
            raise ValueError("maximum window below initial")

    def _state(self, loop_name: str) -> _WindowState:
        return self._states.setdefault(loop_name, _WindowState(self.initial))

    def window_for(self, loop_name: str) -> int:
        return self._state(loop_name).window

    def seed(self, loop_name: str, certificate) -> None:
        """Start ``loop_name``'s hill climb at a certificate's window hint.

        Applies only before the first recorded instantiation (a climb in
        progress embodies real measurements the hint should not reset)
        and only within the configured bounds.
        """
        window = getattr(certificate, "window_hint", None)
        if window is None:
            return
        st = self._states.get(loop_name)
        if st is not None and st.last_speedup is not None:
            return
        self._states[loop_name] = _WindowState(
            min(self.maximum, max(self.minimum, int(window)))
        )

    def record(self, loop_name: str, result: RunResult) -> None:
        st = self._state(loop_name)
        if st.last_speedup is not None and result.speedup < st.last_speedup:
            st.direction = -st.direction
        st.last_speedup = result.speedup
        if st.direction > 0:
            proposal = min(self.maximum, st.window * 2)
        else:
            proposal = max(self.minimum, st.window // 2)
        if proposal == st.window:  # pinned at a bound: probe back inward
            st.direction = -st.direction
        st.window = proposal

    def config_for(self, loop_name: str, **overrides) -> RuntimeConfig:
        return RuntimeConfig.sw(self.window_for(loop_name), **overrides)
