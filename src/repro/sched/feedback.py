"""Feedback-guided load balancing (paper, Section 5.1).

The R-LRPD test requires static block scheduling, which interacts badly with
irregular per-iteration costs.  The paper's fix: instrument the loop with
low-overhead timers, and after each instantiation compute -- from the prefix
sums of the measured per-iteration times -- the block distribution that
*would have* balanced the load perfectly.  That distribution is the
first-order predictor for the next instantiation; when the iteration count
changes, it is scaled accordingly.  A side benefit is locality: block
boundaries move slowly between instantiations.

The balancer stores per-loop measured weights and serves predictions; the
actual cut-point computation is :func:`repro.util.blocks.partition_weighted`
(literally prefix sums + share-boundary search).
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import NULL_REGISTRY


class FeedbackBalancer:
    """Cross-instantiation state of the feedback-guided load balancer.

    ``order=1`` uses the last instantiation's measured times verbatim (the
    paper's first-order predictor).  ``order=2`` implements the announced
    improvement -- *"in the near future we will improve this technique by
    using higher order derivatives to better predict trends"* -- by linearly
    extrapolating each iteration's cost from its last two measurements:
    ``w_pred = w_last + (w_last - w_prev)``, clamped at zero.  On drifting
    workloads (e.g. tracks accreting work every time step) the second-order
    predictor removes the one-instantiation lag of the first-order one.
    """

    def __init__(self, order: int = 1, metrics=NULL_REGISTRY) -> None:
        if order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {order}")
        self.order = order
        self.metrics = metrics
        self._weights: dict[str, np.ndarray] = {}
        self._previous: dict[str, np.ndarray] = {}

    def record(self, loop_name: str, iteration_times: dict[int, float], n: int) -> None:
        """Store the measured per-iteration times of one instantiation.

        Iterations missing from ``iteration_times`` (possible only for
        degenerate zero-iteration runs) default to the mean measured time.
        """
        if n <= 0:
            return
        weights = np.zeros(n, dtype=np.float64)
        have = np.zeros(n, dtype=bool)
        for i, t in iteration_times.items():
            if 0 <= i < n:
                weights[i] = t
                have[i] = True
        if not have.any():
            return
        if not have.all():
            weights[~have] = weights[have].mean()
        if loop_name in self._weights:
            self._previous[loop_name] = self._weights[loop_name]
        self._weights[loop_name] = weights
        if self.metrics.enabled:
            self.metrics.counter("sched.feedback.recordings").inc()
            self.metrics.counter("sched.feedback.iterations_measured").inc(
                int(have.sum())
            )

    def predict(self, loop_name: str, n: int) -> np.ndarray | None:
        """Predicted per-iteration weights for the next instantiation.

        Returns ``None`` when no history exists (the caller falls back to an
        even partition).  When the iteration space changed size, the stored
        profile is rescaled by linear interpolation over normalized
        iteration positions -- the paper's "scale the block distribution
        accordingly".
        """
        history = self._weights.get(loop_name)
        if history is None or n <= 0:
            return None
        if self.metrics.enabled:
            self.metrics.counter("sched.feedback.predictions").inc()

        def resample(profile: np.ndarray) -> np.ndarray:
            if len(profile) == n:
                return profile.copy()
            old_pos = np.linspace(0.0, 1.0, len(profile))
            new_pos = np.linspace(0.0, 1.0, n)
            return np.interp(new_pos, old_pos, profile)

        last = resample(history)
        if self.order == 2 and loop_name in self._previous:
            prev = resample(self._previous[loop_name])
            return np.maximum(0.0, 2.0 * last - prev)
        return last

    def known_loops(self) -> list[str]:
        return sorted(self._weights)

    def forget(self, loop_name: str) -> None:
        self._weights.pop(loop_name, None)
        self._previous.pop(loop_name, None)
