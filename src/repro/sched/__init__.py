"""Scheduling support: feedback-guided load balancing, history-based
strategy selection and window-size adaptation."""

from repro.sched.feedback import FeedbackBalancer
from repro.sched.predictor import StrategyPredictor, WindowPredictor

__all__ = ["FeedbackBalancer", "StrategyPredictor", "WindowPredictor"]
