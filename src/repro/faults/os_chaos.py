"""OS-level chaos: kill or stop *real* worker processes under test control.

The logical injector (:mod:`repro.faults.plan`) simulates faults inside a
healthy process -- the runtime's recovery protocol is exercised, but the
process tree never actually breaks.  This module breaks it for real: an
:class:`OsChaosPlan` names (stage, worker-slot) points at which the
supervisor (:mod:`repro.core.supervise`), immediately after sending that
worker its share, delivers a genuine ``SIGKILL`` (crash) or ``SIGSTOP``
(hang) to the worker's pid.

Firing parent-side right after dispatch keeps the chaos deterministic at
the process level -- each planned event fires exactly once per run, and
the :class:`OsChaosInjector`'s fired set lives on the *engine*, so a
fallback backend spun up after degradation does not replay events the
previous backend already absorbed.  The two injectors compose: a run may
carry both a logical ``fault_plan`` and an ``os_chaos`` plan.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

KILL = "kill"
"""Deliver SIGKILL: the worker vanishes mid-share (crash/OOM model)."""

STOP = "stop"
"""Deliver SIGSTOP: the worker freezes and trips the supervisor's
deadline (hang/straggler model); the supervisor's reap SIGKILLs it."""


@dataclass(frozen=True, slots=True)
class OsChaosEvent:
    """One planned OS fault: act on worker slot ``worker`` the first time
    it is dispatched a share of stage ``stage``."""

    stage: int
    worker: int
    action: str = KILL

    def __post_init__(self) -> None:
        if self.action not in (KILL, STOP):
            raise ValueError(
                f"unknown os-chaos action {self.action!r}; "
                f"use {KILL!r} or {STOP!r}"
            )
        if self.stage < 0 or self.worker < 0:
            raise ValueError("os-chaos stage and worker must be >= 0")


@dataclass(frozen=True, slots=True)
class OsChaosPlan:
    """A deterministic schedule of OS faults for one run."""

    events: tuple[OsChaosEvent, ...] = ()

    @classmethod
    def kill_workers(cls, stage: int, workers) -> "OsChaosPlan":
        return cls(tuple(OsChaosEvent(stage, w, KILL) for w in workers))

    @classmethod
    def stop_workers(cls, stage: int, workers) -> "OsChaosPlan":
        return cls(tuple(OsChaosEvent(stage, w, STOP) for w in workers))


class OsChaosInjector:
    """Fires a plan's events against live worker processes, once each.

    Owned by the engine (not the backend): its fired set must survive
    backend degradation, or the fallback pool would be killed by the same
    events all over again.
    """

    def __init__(self, plan: OsChaosPlan) -> None:
        self.plan = plan
        self._fired: set[int] = set()
        self.fired_events: list[OsChaosEvent] = []
        self.fired_pids: list[int] = []

    def after_dispatch(self, stage: int, worker: int, process) -> list[str]:
        """Called by the supervisor right after worker ``worker`` was sent
        a share of ``stage``; returns the actions delivered."""
        actions = []
        for idx, event in enumerate(self.plan.events):
            if idx in self._fired:
                continue
            if event.stage != stage or event.worker != worker:
                continue
            self._fired.add(idx)
            sig = signal.SIGKILL if event.action == KILL else signal.SIGSTOP
            try:
                os.kill(process.pid, sig)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
            self.fired_events.append(event)
            self.fired_pids.append(process.pid)
            actions.append(event.action)
        return actions
