"""The run-time fault injector.

One :class:`FaultInjector` accompanies one run.  The drivers consult it at
well-defined points -- stage begin (checkpoint faults), block dispatch
(stragglers, fail-stop points) and post-execution (write corruption) -- and
it answers purely from the immutable :class:`~repro.faults.plan.FaultPlan`,
so a faulted run is exactly as deterministic as a clean one.  The injector
additionally owns the cross-stage mutable fault state: which processors
have permanently died, and how many faults of each class actually fired.

A fault that fired is *survived* when the run completes: the recovery
machinery (rollback + re-execution, degraded re-blocking) either absorbs
every fault or raises :class:`~repro.errors.FaultError`, so a returned
:class:`~repro.core.results.RunResult` reports ``faults_survived`` equal to
the fired count.
"""

from __future__ import annotations

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


class FaultInjector:
    """Per-run stateful view of a fault plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.dead: set[int] = set()
        self.injected: dict[FaultKind, int] = {kind: 0 for kind in FaultKind}
        self._fired: set[tuple[FaultKind, int, int]] = set()

    # -- bookkeeping ------------------------------------------------------------

    def _record(self, event: FaultEvent) -> bool:
        """Count the event once, no matter how often it is re-queried."""
        key = (event.kind, event.stage, event.proc)
        if key in self._fired:
            return False
        self._fired.add(key)
        self.injected[event.kind] += 1
        return True

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def counts(self) -> dict[str, int]:
        """Fired-fault counts keyed by fault-kind value (report-friendly)."""
        return {kind.value: n for kind, n in self.injected.items() if n}

    def mark_dead(self, proc: int) -> None:
        self.dead.add(proc)

    def alive(self, procs) -> list[int]:
        return [p for p in procs if p not in self.dead]

    # -- injection points --------------------------------------------------------

    def slowdown(self, stage: int, proc: int) -> float:
        """Straggler multiplier for this processor's charges this stage."""
        event = self.plan.straggler(stage, proc)
        if event is None or proc in self.dead:
            return 1.0
        self._record(event)
        return event.slowdown

    def fail_stop_point(
        self, stage: int, proc: int, block_len: int
    ) -> tuple[int, bool] | None:
        """Death point of this processor's block, if it fail-stops.

        Returns ``(iterations completed before death, permanent)``; death
        happens at an iteration boundary, strictly before the block ends,
        so a fail-stop always loses work.  ``None`` means no fault.
        """
        event = self.plan.fail_stop(stage, proc)
        if event is None or block_len <= 0:
            return None
        self._record(event)
        completed = min(int(block_len * event.after_fraction), block_len - 1)
        return completed, event.permanent

    def corrupt(self, stage: int, proc: int, state) -> FaultEvent | None:
        """Flip one speculatively written private value of ``state``.

        The lowest written index of the first (alphabetically) written
        tested array is perturbed by the event's magnitude -- a transient
        soft error in private speculative storage.  Returns the event if a
        value was actually corrupted; a block that wrote nothing offers no
        target and the event is vacuous (not counted).
        """
        event = self.plan.corruption(stage, proc)
        if event is None or proc in self.dead:
            return None
        for name in sorted(state.views):
            view = state.views[name]
            for index, value in view.written_items():
                view.store(index, value + event.magnitude)
                self._record(event)
                return event
        return None

    def checkpoint_fault(self, stage: int) -> FaultEvent | None:
        """Checkpoint-storage fault for this stage, if planned."""
        event = self.plan.checkpoint_fault(stage)
        if event is None:
            return None
        self._record(event)
        return event
