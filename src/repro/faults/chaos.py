"""Seeded random fault-plan generation (chaos testing).

One integer seed expands -- through the repository's deterministic
:func:`~repro.util.rng.make_rng` stream derivation -- into a full
:class:`~repro.faults.plan.FaultPlan`: per (stage, processor) cell an
independent draw decides whether each fault class fires and with what
parameters.  The expansion is order-independent and stable under unrelated
code changes, so a chaos sweep recorded by seed is reproducible forever.
"""

from __future__ import annotations

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.util.rng import make_rng

#: Default number of stages the generated plan covers.  Fault decisions
#: beyond the horizon simply never fire; runs normally finish well inside
#: it (NRD needs at most ``p`` stages).
DEFAULT_HORIZON = 64


def random_plan(
    seed: int,
    n_procs: int,
    n_stages: int = DEFAULT_HORIZON,
    fail_stop_rate: float = 0.04,
    permanent_rate: float = 0.25,
    corrupt_rate: float = 0.04,
    straggler_rate: float = 0.08,
    checkpoint_rate: float = 0.05,
    max_slowdown: float = 4.0,
) -> FaultPlan:
    """Generate a deterministic fault plan from a single seed.

    ``*_rate`` parameters are per-(stage, processor) firing probabilities
    (``checkpoint_rate`` is per stage).  ``permanent_rate`` is the
    probability that a fail-stop is permanent; at most ``n_procs - 1``
    permanent deaths are planned so the machine always keeps one survivor
    (the injector enforces the same floor at run time).
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    if n_procs < 1:
        raise ValueError(f"need at least one processor, got {n_procs}")
    if n_stages < 0:
        raise ValueError(f"n_stages must be >= 0, got {n_stages}")
    for name, rate in (
        ("fail_stop_rate", fail_stop_rate),
        ("permanent_rate", permanent_rate),
        ("corrupt_rate", corrupt_rate),
        ("straggler_rate", straggler_rate),
        ("checkpoint_rate", checkpoint_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {rate}")
    if max_slowdown < 1.0:
        raise ValueError("max_slowdown must be >= 1")

    events: list[FaultEvent] = []
    permanent_budget = n_procs - 1
    for stage in range(n_stages):
        stage_rng = make_rng(seed, "faults", "stage", stage)
        if stage_rng.random() < checkpoint_rate:
            events.append(FaultEvent(FaultKind.CHECKPOINT, stage))
        for proc in range(n_procs):
            rng = make_rng(seed, "faults", "cell", stage, proc)
            if rng.random() < fail_stop_rate:
                permanent = (
                    permanent_budget > 0 and rng.random() < permanent_rate
                )
                if permanent:
                    permanent_budget -= 1
                events.append(
                    FaultEvent(
                        FaultKind.FAIL_STOP,
                        stage,
                        proc,
                        permanent=permanent,
                        after_fraction=float(rng.random()),
                    )
                )
                # A dead processor cannot also corrupt or straggle.
                continue
            if rng.random() < corrupt_rate:
                events.append(
                    FaultEvent(
                        FaultKind.CORRUPT_WRITE,
                        stage,
                        proc,
                        magnitude=float(rng.uniform(0.5, 8.0)),
                    )
                )
            if rng.random() < straggler_rate:
                events.append(
                    FaultEvent(
                        FaultKind.STRAGGLER,
                        stage,
                        proc,
                        slowdown=float(rng.uniform(1.5, max_slowdown)),
                    )
                )
    return FaultPlan(events=tuple(events), seed=seed)
