"""Deterministic fault injection and runtime self-verification.

The R-LRPD recovery protocol -- commit the prefix, roll back untested
state, re-execute the remainder -- is a general fault-recovery mechanism,
not just a misspeculation handler.  This package turns that observation
into an exercisable subsystem: seeded :class:`FaultPlan`\\ s inject
fail-stop processor deaths, transient write corruption, stragglers and
checkpoint-storage faults into the drivers, and the self-check machinery
continuously verifies the sequential-equivalence guarantee those recoveries
must preserve.

Quick start::

    from repro import RuntimeConfig, parallelize
    from repro.faults import random_plan

    plan = random_plan(seed=7, n_procs=8)
    config = RuntimeConfig.adaptive(fault_plan=plan, self_check=True)
    result = parallelize(loop, 8, config)
    print(result.faults_survived, result.retries, result.degraded_stages)
"""

from repro.faults.chaos import random_plan
from repro.faults.injector import FaultInjector
from repro.faults.os_chaos import OsChaosEvent, OsChaosInjector, OsChaosPlan
from repro.faults.plan import ANY_PROC, FaultEvent, FaultKind, FaultPlan
from repro.faults.selfcheck import (
    UntestedAccessLog,
    check_final_state,
    sequential_final_state,
)

__all__ = [
    "ANY_PROC",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "OsChaosEvent",
    "OsChaosInjector",
    "OsChaosPlan",
    "random_plan",
    "UntestedAccessLog",
    "check_final_state",
    "sequential_final_state",
]
