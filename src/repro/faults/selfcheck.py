"""Runtime self-verification (``RuntimeConfig.self_check``).

Speculative parallelization is only trustworthy if its sequential-
equivalence guarantee is *checked*, not assumed.  With ``self_check``
enabled the drivers continuously verify two contracts:

1. **Per-stage untested isolation** -- every stage records which processor
   read and wrote each untested element and feeds the maps through
   :func:`repro.machine.checkpoint.verify_untested_isolation`; a violation
   means a workload mis-declared a dependence-carrying array as untested
   and raises :class:`~repro.errors.SelfCheckError` immediately, at the
   stage that witnessed it.
2. **End-of-run sequential equivalence** -- the initial shared state is
   snapshotted before speculation starts and replayed sequentially when
   the run ends; the speculative final memory must match bit-for-bit
   (``allclose`` when the loop declares floating-point reductions, whose
   parallel fold order legitimately perturbs last bits).

Both checks are pure observers: they never alter the run's schedule,
virtual-time charges or results.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import SelfCheckError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import verify_untested_isolation
from repro.machine.memory import MemoryImage, SharedArray


class UntestedAccessLog:
    """Per-stage record of untested-array traffic, per processor."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: dict[str, dict[int, set[int]]] = {}
        self.writes: dict[str, dict[int, set[int]]] = {}

    def note_read(self, proc: int, name: str, index: int) -> None:
        self.reads.setdefault(name, {}).setdefault(index, set()).add(proc)

    def note_write(self, proc: int, name: str, index: int) -> None:
        self.writes.setdefault(name, {}).setdefault(index, set()).add(proc)

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()

    def verify(self, loop_name: str, stage: int) -> None:
        """Raise :class:`SelfCheckError` on cross-processor sharing."""
        problems = verify_untested_isolation(self.reads, self.writes)
        if problems:
            raise SelfCheckError(
                "untested-array isolation violated: " + "; ".join(problems[:3]),
                loop=loop_name,
                stage=stage,
            )


def sequential_final_state(
    loop: SpeculativeLoop, initial: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Replay the loop sequentially from ``initial`` and return final state."""
    image = MemoryImage(
        SharedArray(name, data) for name, data in initial.items()
    )
    ctx = SequentialContext(
        image,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    for i in range(loop.n_iterations):
        ctx.iteration = i
        loop.body(ctx, i)
        if ctx.exited:
            break
    return image.snapshot()


def check_final_state(
    loop: SpeculativeLoop,
    memory: MemoryImage,
    initial: Mapping[str, np.ndarray],
) -> None:
    """Compare the speculative final memory against the sequential oracle.

    Raises :class:`SelfCheckError` naming the first mismatching array.
    Loops with declared reductions are compared with ``allclose`` (parallel
    fold order), everything else bit-for-bit.
    """
    reference = sequential_final_state(loop, initial)
    matches = (
        memory.allclose(reference) if loop.reductions else memory.equals(reference)
    )
    if matches:
        return
    mismatched = [
        name
        for name, data in reference.items()
        if name not in memory or not np.array_equal(memory[name].data, data)
    ]
    raise SelfCheckError(
        "final shared memory diverged from the sequential oracle "
        f"(arrays: {', '.join(mismatched) or 'name sets differ'})",
        loop=loop.name,
    )
