"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen, declarative description of every fault the
simulated machine will suffer during one run: which stage, which processor,
which fault class, and the class-specific parameters.  Because the plan is
fixed up front (either hand-written for targeted tests or generated from a
single seed by :func:`repro.faults.chaos.random_plan`), a faulted run is as
reproducible as a fault-free one -- the acceptance bar for the whole
subsystem is that a fixed seed reproduces the identical :class:`RunResult`.

Stages are addressed by the driver's stage counter (the ``index`` field of
:class:`~repro.core.results.StageResult`), processors by machine rank.

Fault classes
-------------

* ``FAIL_STOP`` -- the processor dies mid-block after completing a fraction
  of its iterations; its private state is lost and its untested writes must
  be rolled back.  ``permanent=True`` removes the processor for the rest of
  the run (degraded-mode re-blocking over the survivors).
* ``CORRUPT_WRITE`` -- a transient soft error flips one speculatively
  written private value after the block executes; the runtime's integrity
  check detects it during analysis and the block re-executes.
* ``STRAGGLER`` -- every virtual-time charge of the processor during the
  stage is multiplied by ``slowdown`` (cost-model slowdown, e.g. thermal
  throttling or an interfering job).  Purely a performance fault.
* ``CHECKPOINT`` -- the checkpoint storage write at stage begin is lost and
  must be rewritten (charged again); on-demand checkpointing instead
  re-saves its first-touch log after the execution barrier.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The injectable fault classes."""

    FAIL_STOP = "fail-stop"
    CORRUPT_WRITE = "corrupt-write"
    STRAGGLER = "straggler"
    CHECKPOINT = "checkpoint"


#: Processor id used by machine-wide faults (``CHECKPOINT``).
ANY_PROC = -1


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One planned fault occurrence."""

    kind: FaultKind
    stage: int
    proc: int = ANY_PROC
    permanent: bool = False
    """``FAIL_STOP`` only: the processor never rejoins the machine."""

    after_fraction: float = 0.5
    """``FAIL_STOP`` only: fraction of the block's iterations completed
    before the processor dies (death happens at an iteration boundary)."""

    magnitude: float = 1.0
    """``CORRUPT_WRITE`` only: additive perturbation applied to the first
    speculatively written private element."""

    slowdown: float = 1.0
    """``STRAGGLER`` only: virtual-time multiplier (>= 1)."""

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ValueError(f"fault stage must be >= 0, got {self.stage}")
        if self.kind is FaultKind.CHECKPOINT:
            if self.proc != ANY_PROC:
                raise ValueError("checkpoint faults are machine-wide; omit proc")
        elif self.proc < 0:
            raise ValueError(f"{self.kind.value} fault needs a processor id")
        if not 0.0 <= self.after_fraction < 1.0:
            raise ValueError("after_fraction must lie in [0, 1)")
        if not (math.isfinite(self.magnitude) and self.magnitude != 0.0):
            raise ValueError("corruption magnitude must be finite and nonzero")
        if not (math.isfinite(self.slowdown) and self.slowdown >= 1.0):
            raise ValueError("straggler slowdown must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultEvent` occurrences.

    ``seed`` records the provenance of generated plans (``None`` for
    hand-written ones); it is carried into reports so a chaotic run can be
    reproduced from its output alone.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        index: dict[tuple[FaultKind, int, int], FaultEvent] = {}
        for event in self.events:
            key = (event.kind, event.stage, event.proc)
            # First event wins on duplicate targeting (keeps generated
            # plans simple: one draw per (kind, stage, proc) cell).
            index.setdefault(key, event)
        object.__setattr__(self, "_index", index)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- lookups used by the injector ------------------------------------------

    def fail_stop(self, stage: int, proc: int) -> FaultEvent | None:
        return self._index.get((FaultKind.FAIL_STOP, stage, proc))

    def corruption(self, stage: int, proc: int) -> FaultEvent | None:
        return self._index.get((FaultKind.CORRUPT_WRITE, stage, proc))

    def straggler(self, stage: int, proc: int) -> FaultEvent | None:
        return self._index.get((FaultKind.STRAGGLER, stage, proc))

    def checkpoint_fault(self, stage: int) -> FaultEvent | None:
        return self._index.get((FaultKind.CHECKPOINT, stage, ANY_PROC))

    def describe(self) -> str:
        """One line per event, in (stage, proc) order (reports / debugging)."""
        lines = []
        for ev in sorted(self.events, key=lambda e: (e.stage, e.proc, e.kind.value)):
            extra = ""
            if ev.kind is FaultKind.FAIL_STOP:
                extra = f" after={ev.after_fraction:.2f}" + (
                    " permanent" if ev.permanent else ""
                )
            elif ev.kind is FaultKind.STRAGGLER:
                extra = f" x{ev.slowdown:.2f}"
            elif ev.kind is FaultKind.CORRUPT_WRITE:
                extra = f" magnitude={ev.magnitude:g}"
            target = "machine" if ev.proc == ANY_PROC else f"proc {ev.proc}"
            lines.append(f"stage {ev.stage}: {ev.kind.value} on {target}{extra}")
        header = f"FaultPlan({len(self.events)} events"
        header += f", seed={self.seed})" if self.seed is not None else ")"
        return "\n".join([header, *lines]) if lines else header
