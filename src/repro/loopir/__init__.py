"""Loop intermediate representation.

A :class:`SpeculativeLoop` is the unit the runtime parallelizes: an
iteration count, a set of shared arrays partitioned into *tested* (compiler
un-analyzable; privatized and shadow-marked) and *untested* (statically
analyzable; written in place under checkpoint), an optional speculative
induction variable, optional reduction arrays, and a body callable invoked
once per iteration with an :class:`IterationContext`.

The context's ``load`` / ``store`` / ``update`` calls are the instrumentation
points: in the real system the Polaris run-time pass inserts marking code
around every reference to a tested array; here the context *is* that code.
"""

from repro.loopir.context import IterationContext, SequentialContext
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.loopir.induction import InductionSpec
from repro.loopir.symbolic import (
    AffineSite,
    DependenceSummary,
    ProbeResult,
    affine_dependences,
    probe_loop,
    trace_dependences,
)

__all__ = [
    "IterationContext",
    "SequentialContext",
    "ArraySpec",
    "SpeculativeLoop",
    "ReductionOp",
    "InductionSpec",
    "AffineSite",
    "DependenceSummary",
    "ProbeResult",
    "affine_dependences",
    "probe_loop",
    "trace_dependences",
]
