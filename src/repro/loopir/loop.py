"""The speculative loop specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.loopir.context import IterationContext
from repro.loopir.induction import InductionSpec
from repro.loopir.reductions import ReductionOp
from repro.machine.memory import MemoryImage, SharedArray


@dataclass(frozen=True)
class ArraySpec:
    """Declaration of one shared array used by a loop.

    ``tested=True`` marks a compiler-unanalyzable array: the runtime
    privatizes it with on-demand copy-in and marks every reference in shadow
    structures (this is the array "under test", like ``A``/``NUSED`` in the
    paper).  ``tested=False`` marks statically analyzable state (like ``B``
    in Fig. 1): written in place and checkpointed for restoration.

    ``sparse`` forces the sparse or dense private-view/shadow representation
    (``None`` selects by size) -- the paper's SPICE loops need the sparse
    flavor because the tested workspace is huge and sparsely touched.
    """

    name: str
    initial: np.ndarray
    tested: bool = True
    sparse: bool | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.initial)
        if arr.ndim != 1:
            raise ValueError(
                f"array {self.name!r} must be declared 1-D; linearize in the workload"
            )
        object.__setattr__(self, "initial", arr)

    def make_shared(self) -> SharedArray:
        return SharedArray(self.name, self.initial)


@dataclass(frozen=True)
class SpeculativeLoop:
    """Everything the runtime needs to know about one parallelization target.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"nlfilt_300"``).
    n_iterations:
        Iteration count of this instantiation.
    body:
        ``body(ctx, i)`` executes iteration ``i`` through the context.
        Must be a deterministic function of the values it loads.
    arrays:
        All shared arrays the body touches.
    reductions:
        ``array name -> operator`` for arrays accessed only via
        ``ctx.update`` (speculative reduction parallelization).
    inductions:
        Speculative induction variables (EXTEND pattern); loops with a
        non-empty list must be run through the two-phase induction runner.
    iter_work:
        ``iter_work(i)`` returns the useful-work multiplier of iteration
        ``i`` (x ``CostModel.omega``).  Defaults to uniform cost 1.  This is
        what the feedback-guided load balancer measures and predicts.
    inspector:
        Optional side-effect-free address inspector,
        ``inspector(memory) -> [(reads, writes), ...]`` per iteration with
        ``(array, index)`` pairs.  Loops whose address computation depends
        on loop data cannot provide one (the dependence cycle of Section 1);
        the inspector/executor and DOACROSS baselines require it, the
        R-LRPD test never uses it.
    """

    name: str
    n_iterations: int
    body: Callable[[IterationContext, int], None]
    arrays: Sequence[ArraySpec]
    reductions: dict[str, ReductionOp] = field(default_factory=dict)
    inductions: Sequence[InductionSpec] = ()
    iter_work: Callable[[int], float] | None = None
    inspector: Callable[[MemoryImage], list[tuple[set, set]]] | None = None

    def __post_init__(self) -> None:
        if self.n_iterations < 0:
            raise ValueError("n_iterations must be non-negative")
        names = [spec.name for spec in self.arrays]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate array declarations in loop {self.name!r}")
        tested = {spec.name for spec in self.arrays if spec.tested}
        for red_name in self.reductions:
            if red_name not in tested:
                raise ValueError(
                    f"reduction array {red_name!r} must be declared tested"
                )
        ivar_names = [iv.name for iv in self.inductions]
        if len(ivar_names) != len(set(ivar_names)):
            raise ValueError("duplicate induction variable names")

    # -- derived views ---------------------------------------------------------

    @property
    def array_specs(self) -> dict[str, ArraySpec]:
        return {spec.name: spec for spec in self.arrays}

    @property
    def tested_names(self) -> list[str]:
        return [spec.name for spec in self.arrays if spec.tested]

    @property
    def untested_names(self) -> list[str]:
        return [spec.name for spec in self.arrays if not spec.tested]

    def initial_inductions(self) -> dict[str, int]:
        return {iv.name: iv.initial for iv in self.inductions}

    def work_of(self, iteration: int) -> float:
        """Useful-work multiplier of one iteration (>= 0)."""
        if self.iter_work is None:
            return 1.0
        units = float(self.iter_work(iteration))
        if units < 0:
            raise ValueError(
                f"iter_work({iteration}) returned negative cost {units}"
            )
        return units

    def total_work(self) -> float:
        """Sum of iteration work multipliers (sequential useful work / omega)."""
        if self.iter_work is None:
            return float(self.n_iterations)
        return float(sum(self.work_of(i) for i in range(self.n_iterations)))

    # -- instantiation -----------------------------------------------------------

    def materialize(self) -> MemoryImage:
        """Fresh shared-memory image with every array at its initial value."""
        return MemoryImage(spec.make_shared() for spec in self.arrays)
