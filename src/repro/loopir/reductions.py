"""Reduction operators for speculative reduction parallelization.

A reduction variable is used only in statements ``x = x (op) expr`` where
``op`` is associative and commutative and ``x`` does not appear in ``expr``
(paper, footnote 1).  Per-processor partial results start at the operator's
identity and are combined into the shared value at commit time.
"""

from __future__ import annotations

import enum
import math


class ReductionOp(enum.Enum):
    """Associative-commutative operators supported by the runtime."""

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"

    @property
    def identity(self) -> float:
        if self is ReductionOp.SUM:
            return 0.0
        if self is ReductionOp.PROD:
            return 1.0
        if self is ReductionOp.MIN:
            return math.inf
        return -math.inf

    def combine(self, a, b):
        """Fold two partials (commutative, so order across procs is free)."""
        if self is ReductionOp.SUM:
            return a + b
        if self is ReductionOp.PROD:
            return a * b
        if self is ReductionOp.MIN:
            return a if a <= b else b
        return a if a >= b else b
