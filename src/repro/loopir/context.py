"""Iteration contexts: the instrumentation boundary of the runtime.

A loop body is a Python callable ``body(ctx, i)``.  All shared-memory
traffic must flow through the context:

* ``ctx.load(name, index)`` / ``ctx.store(name, index, value)`` -- element
  access to a shared array (tested arrays get privatization + shadow
  marking under speculation);
* ``ctx.update(name, index, value)`` -- a reduction statement
  ``A[index] = A[index] (op) value``;
* ``ctx.bump(ivar)`` -- read-then-increment of a speculative induction
  variable;
* ``ctx.work(units)`` -- extra useful computation beyond the loop's base
  per-iteration cost (models iteration-dependent work for the load
  balancing experiments).

Bodies must be deterministic functions of the values they load; given that,
any two executions that observe the same values write the same values, which
is what makes speculation + re-execution sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.loopir.reductions import ReductionOp
from repro.machine.memory import MemoryImage


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One element access in a recorded trace (testing / inspector use)."""

    iteration: int
    kind: str  # 'r' | 'w' | 'u'
    array: str
    index: int


class IterationContext:
    """Abstract context; concrete subclasses define the memory discipline."""

    __slots__ = ("iteration",)

    def __init__(self) -> None:
        self.iteration = -1

    # -- shared-array access --------------------------------------------------

    def load(self, name: str, index: int):
        raise NotImplementedError

    def store(self, name: str, index: int, value) -> None:
        raise NotImplementedError

    def update(self, name: str, index: int, value) -> None:
        """Reduction access ``A[index] = A[index] (op) value``."""
        raise NotImplementedError

    # -- induction variables ---------------------------------------------------

    def bump(self, name: str) -> int:
        """Return the induction variable's current value, then increment it."""
        raise NotImplementedError

    def peek(self, name: str) -> int:
        """Read the induction variable without incrementing."""
        raise NotImplementedError

    # -- cost modelling ---------------------------------------------------------

    def work(self, units: float) -> None:
        """Charge additional useful computation to this iteration."""
        raise NotImplementedError

    # -- premature exit -----------------------------------------------------------

    def exit_loop(self) -> None:
        """Signal a premature loop exit *after* the current iteration.

        Sequential semantics: the current iteration completes (its writes
        count), no later iteration executes.  Speculatively, processors keep
        executing their blocks; the runtime validates the earliest exit
        whose processor's work is itself correct and discards everything
        beyond it (the technique behind SPICE's DCDCMP loop 70).
        """
        raise NotImplementedError


class SequentialContext(IterationContext):
    """Reference semantics: direct, in-order access to shared memory.

    Used by the sequential baseline (the oracle every speculative run must
    match) and, with ``trace=True``, by tests that need the exact reference
    stream (ground-truth dependence graphs, inspector baselines).
    """

    __slots__ = (
        "_memory",
        "_reductions",
        "_inductions",
        "extra_work",
        "trace",
        "_records",
        "_work_hook",
        "exited",
    )

    def __init__(
        self,
        memory: MemoryImage,
        reductions: dict[str, ReductionOp] | None = None,
        inductions: dict[str, int] | None = None,
        trace: bool = False,
        work_hook: Callable[[int, float], None] | None = None,
    ) -> None:
        super().__init__()
        self._memory = memory
        self._reductions = dict(reductions or {})
        self._inductions = dict(inductions or {})
        self.extra_work = 0.0
        self.trace = trace
        self._records: list[AccessRecord] = []
        self._work_hook = work_hook
        self.exited = False

    # -- access -----------------------------------------------------------------

    def load(self, name: str, index: int):
        if name in self._reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        if self.trace:
            self._records.append(AccessRecord(self.iteration, "r", name, index))
        return self._memory[name].data[index]

    def store(self, name: str, index: int, value) -> None:
        if name in self._reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        if self.trace:
            self._records.append(AccessRecord(self.iteration, "w", name, index))
        self._memory[name].data[index] = value

    def update(self, name: str, index: int, value) -> None:
        op = self._reductions.get(name)
        if op is None:
            raise ValueError(f"array {name!r} has no declared reduction operator")
        if self.trace:
            self._records.append(AccessRecord(self.iteration, "u", name, index))
        data = self._memory[name].data
        data[index] = op.combine(data[index], value)

    # -- induction ---------------------------------------------------------------

    def bump(self, name: str) -> int:
        value = self._inductions[name]
        self._inductions[name] = value + 1
        return value

    def peek(self, name: str) -> int:
        return self._inductions[name]

    def induction_values(self) -> dict[str, int]:
        """Final counter values (exposed for last-value semantics)."""
        return dict(self._inductions)

    # -- costs ----------------------------------------------------------------

    def work(self, units: float) -> None:
        if units < 0:
            raise ValueError("work units must be non-negative")
        self.extra_work += units
        if self._work_hook is not None:
            self._work_hook(self.iteration, units)

    # -- premature exit ------------------------------------------------------------

    def exit_loop(self) -> None:
        self.exited = True

    # -- trace ------------------------------------------------------------------

    @property
    def records(self) -> list[AccessRecord]:
        return list(self._records)
