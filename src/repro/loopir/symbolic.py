"""Symbolic access analysis: probe a loop body and reason about its indices.

The certification front-end (:mod:`repro.model.certify`) needs to know a
loop's cross-iteration access pattern *before* committing to the
speculative machinery.  Loop bodies here are opaque Python callables, so
the analysis is observational: run iterations through a recording
:class:`ProbeContext` (sequential semantics over a scratch copy of the
shared image) and lift the observed ``load``/``store``/``update`` calls
into per-site access descriptions.

Two levels of evidence come out of a probe:

* **exact** -- every iteration was executed with sequential semantics, so
  the recorded trace *is* the loop's reference access stream (bodies are
  required to be deterministic functions of the values they load); any
  dependence statement derived from it is a proof for this instantiation.
* **affine** -- only a sample of iterations was executed, but every probed
  iteration issued the same call sequence and each call site's index fits
  ``index = stride * i + offset`` exactly.  The affine model then predicts
  all ``n`` iterations; the prediction is sound *if* the loop really is
  affine (a data-dependent subscript can masquerade as affine on a
  sample), which is why only ``--certify=trust`` acts on it.

The dependence tests themselves (:func:`trace_dependences`,
:func:`affine_dependences`) are exact over their respective inputs: the
trace test scans the recorded stream per element, the affine test
intersects the two index progressions over ``[0, n)`` and checks for a
common element touched at two different iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loopir.context import AccessRecord, IterationContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.memory import MemoryImage, SharedArray


class ProbeContext(IterationContext):
    """Recording context with sequential semantics over scratch memory.

    Like :class:`~repro.loopir.context.SequentialContext` but always
    tracing, never enforcing reduction-only access discipline (the
    certifier wants to *observe* what the body does, not police it), and
    collecting premature exits instead of acting on them.
    """

    __slots__ = (
        "_memory",
        "_reductions",
        "_inductions",
        "records",
        "exit_at",
        "extra_work",
    )

    def __init__(
        self,
        memory: MemoryImage,
        reductions=None,
        inductions: dict[str, int] | None = None,
    ) -> None:
        super().__init__()
        self._memory = memory
        self._reductions = dict(reductions or {})
        self._inductions = dict(inductions or {})
        self.records: list[AccessRecord] = []
        self.exit_at: int | None = None
        self.extra_work = 0.0

    def load(self, name: str, index: int):
        self.records.append(AccessRecord(self.iteration, "r", name, int(index)))
        return self._memory[name].data[index]

    def store(self, name: str, index: int, value) -> None:
        self.records.append(AccessRecord(self.iteration, "w", name, int(index)))
        self._memory[name].data[index] = value

    def update(self, name: str, index: int, value) -> None:
        self.records.append(AccessRecord(self.iteration, "u", name, int(index)))
        op = self._reductions.get(name)
        data = self._memory[name].data
        data[index] = op.combine(data[index], value) if op is not None else value

    # -- bulk memory access -------------------------------------------------------

    def load_many(self, name: str, indices) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        return np.array([self.load(name, int(i)) for i in idx])

    def store_many(self, name: str, indices, values) -> None:
        # Scalar loop: later duplicates win, matching the bulk contract.
        idx = np.asarray(indices, dtype=np.int64)
        for i, v in zip(idx.tolist(), np.asarray(values)):
            self.store(name, i, v)

    def bump(self, name: str) -> int:
        value = self._inductions[name]
        self._inductions[name] = value + 1
        return value

    def peek(self, name: str) -> int:
        return self._inductions[name]

    def work(self, units: float) -> None:
        self.extra_work += units

    def exit_loop(self) -> None:
        if self.exit_at is None or self.iteration < self.exit_at:
            self.exit_at = self.iteration


@dataclass(frozen=True)
class AffineSite:
    """One call site with an exact affine index fit over the probe."""

    ordinal: int
    kind: str  # 'r' | 'w' | 'u'
    array: str
    stride: int
    offset: int

    def index_at(self, iteration: int) -> int:
        return self.stride * iteration + self.offset


@dataclass
class ProbeResult:
    """What one probe of a loop observed."""

    n: int
    iterations: list[int]
    full: bool
    """Every iteration in ``[0, n)`` was executed with sequential
    semantics (the trace is exact evidence)."""
    records: list[AccessRecord]
    exit_at: int | None
    uniform: bool
    """Every probed iteration issued the same (kind, array) call sequence."""
    sites: list[AffineSite] | None
    """Exact affine fits per call site; ``None`` when the probe was not
    uniform or some site's indices do not fit ``stride * i + offset``."""


def probe_loop(
    loop: SpeculativeLoop,
    memory: MemoryImage | None = None,
    limit: int = 4096,
    sample: int = 48,
) -> ProbeResult:
    """Execute a full or sampled probe of ``loop`` over scratch memory.

    ``memory`` is the image the real run would start from (defaults to the
    loop's own materialization); the probe works on a deep copy and never
    mutates it.  With ``n <= limit`` every iteration runs in order
    (sequential semantics, exact evidence); otherwise ``sample`` evenly
    spaced iterations run against the initial image (address observation
    only -- loaded values may differ from a true sequential execution, so
    the result is only usable through the affine model).
    """
    n = loop.n_iterations
    base = memory if memory is not None else loop.materialize()
    scratch = MemoryImage(
        SharedArray(name, base[name].data) for name in base.names()
    )
    full = n <= limit
    if full:
        iterations = list(range(n))
    else:
        step = max(1, n // max(2, sample))
        iterations = sorted(set(range(0, n, step)) | {n - 1})
    ctx = ProbeContext(
        scratch, reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    for i in iterations:
        ctx.iteration = i
        loop.body(ctx, i)
        if full and ctx.exit_at is not None:
            break
    uniform, sites = _fit_sites(ctx.records, iterations, ctx.exit_at)
    return ProbeResult(
        n=n,
        iterations=iterations,
        full=full,
        records=ctx.records,
        exit_at=ctx.exit_at,
        uniform=uniform,
        sites=sites,
    )


def _fit_sites(
    records: list[AccessRecord],
    iterations: list[int],
    exit_at: int | None,
) -> tuple[bool, list[AffineSite] | None]:
    """Group the trace by call ordinal and fit each site affinely."""
    per_iter: dict[int, list[AccessRecord]] = {}
    for rec in records:
        per_iter.setdefault(rec.iteration, []).append(rec)
    executed = [i for i in iterations if exit_at is None or i <= exit_at]
    if not executed:
        return True, []
    signatures = {
        tuple((r.kind, r.array) for r in per_iter.get(i, ())) for i in executed
    }
    if len(signatures) != 1:
        return False, None
    signature = next(iter(signatures))
    if len(executed) < 2:
        # One data point cannot pin a stride; callers treat a single-
        # iteration loop as trivially independent before fitting.
        return True, None
    sites: list[AffineSite] = []
    i0, i1 = executed[0], executed[1]
    for ordinal, (kind, array) in enumerate(signature):
        x0 = per_iter[i0][ordinal].index
        x1 = per_iter[i1][ordinal].index
        span = i1 - i0
        if (x1 - x0) % span:
            return True, None
        stride = (x1 - x0) // span
        offset = x0 - stride * i0
        for i in executed:
            if per_iter[i][ordinal].index != stride * i + offset:
                return True, None
        sites.append(AffineSite(ordinal, kind, array, stride, offset))
    return True, sites


@dataclass
class DependenceSummary:
    """Cross-iteration dependence facts extracted from a probe."""

    conflicts: int
    """Element-sharing (iteration, iteration) pairs with at least one
    write -- zero means provably independent (DOALL) over the evidence."""
    flow_edges: list[tuple[int, int]]
    """``(source, sink)`` iteration pairs where the sink reads a value the
    source wrote (true dependences; what sequentializes a loop)."""
    critical_path: int
    """Longest flow-dependence chain, in iterations (1 = no chain)."""
    max_distance: int
    sink_iterations: int
    """Distinct iterations that are the sink of at least one dependence."""


def trace_dependences(records: list[AccessRecord], n: int) -> DependenceSummary:
    """Exact dependence extraction from a full sequential trace.

    Scans each element's access history in iteration order.  Reduction
    (``u``) accesses commute with each other, so u-u sharing is not a
    conflict; any r/w access mixing with another iteration's write (or
    update) is.
    """
    by_elem: dict[tuple[str, int], list[tuple[int, str]]] = {}
    for rec in records:
        by_elem.setdefault((rec.array, rec.index), []).append(
            (rec.iteration, rec.kind)
        )
    conflicts = 0
    flow: dict[int, set[int]] = {}
    max_distance = 0
    sinks: set[int] = set()
    for accesses in by_elem.values():
        last_write: int | None = None
        touched = {i for i, _ in accesses}
        kinds = {k for _, k in accesses}
        # Cross-iteration sharing invalidates DOALL unless every access is
        # a read, or every access is a commuting reduction update.
        if len(touched) > 1 and kinds != {"r"} and kinds != {"u"}:
            conflicts += 1
        for iteration, kind in accesses:
            if kind == "r" and last_write is not None and last_write < iteration:
                flow.setdefault(iteration, set()).add(last_write)
                max_distance = max(max_distance, iteration - last_write)
                sinks.add(iteration)
            if kind == "w":
                if last_write is not None and last_write != iteration:
                    sinks.add(iteration)
                last_write = iteration
    depth: dict[int, int] = {}
    for sink in sorted(flow):
        depth[sink] = 1 + max(
            (depth.get(src, 1) for src in flow[sink]), default=1
        )
    critical = max(depth.values(), default=1)
    edges = [(src, sink) for sink, srcs in flow.items() for src in sorted(srcs)]
    return DependenceSummary(
        conflicts=conflicts,
        flow_edges=sorted(edges),
        critical_path=critical,
        max_distance=max_distance,
        sink_iterations=len(sinks),
    )


def _site_indices(site: AffineSite, n: int) -> np.ndarray:
    return site.stride * np.arange(n, dtype=np.int64) + site.offset


def affine_dependences(sites: list[AffineSite], n: int) -> DependenceSummary:
    """Exact dependence test over affine sites, evaluated on ``[0, n)``.

    For every (write, any) site pair on the same array, intersect the two
    index progressions and look for an element touched at two *different*
    iterations.  Progressions with non-zero stride are injective, so the
    intersection is a vectorized exact computation, not a heuristic.
    """
    conflicts = 0
    flow: dict[int, set[int]] = {}
    max_distance = 0
    sinks: set[int] = set()

    def note_pair(i_src: int, i_dst: int, is_flow: bool) -> None:
        nonlocal conflicts, max_distance
        conflicts += 1
        src, dst = min(i_src, i_dst), max(i_src, i_dst)
        sinks.add(dst)
        max_distance = max(max_distance, dst - src)
        if is_flow and i_src < i_dst:
            flow.setdefault(i_dst, set()).add(i_src)

    for a in sites:
        if a.kind not in ("w", "u"):
            continue
        for b in sites:
            if b.array != a.array:
                continue
            if a.kind == "u" and b.kind == "u":
                continue  # commuting reduction updates
            if b.ordinal < a.ordinal and b.kind in ("w", "u"):
                continue  # the symmetric pass already covered this pair
            is_flow = b.kind == "r"
            if a.stride == 0 and b.stride == 0:
                if a.offset == b.offset and n >= 2:
                    note_pair(0, 1, is_flow)
                continue
            if a.stride == 0 or b.stride == 0:
                lin = b if a.stride == 0 else a
                const = a if a.stride == 0 else b
                num = const.offset - lin.offset
                if n < 2 or num % lin.stride or not 0 <= num // lin.stride < n:
                    continue
                j = num // lin.stride
                other = 0 if j != 0 else 1
                i_a = j if lin is a else other
                i_b = j if lin is b else other
                # Pick the constant site's witness iteration so a real flow
                # (write-then-read in iteration order) is reported when one
                # exists anywhere in [0, n).
                if is_flow and lin is b:
                    i_a = 0 if j > 0 else 1
                elif is_flow and lin is a:
                    i_b = n - 1 if j < n - 1 else 0
                note_pair(i_a, i_b, is_flow)
                continue
            idx_a = _site_indices(a, n)
            idx_b = _site_indices(b, n)
            common, ia, ib = np.intersect1d(
                idx_a, idx_b, assume_unique=True, return_indices=True
            )
            diff = ia != ib
            if not np.any(diff):
                continue
            srcs = np.minimum(ia[diff], ib[diff])
            dsts = np.maximum(ia[diff], ib[diff])
            conflicts += int(diff.sum())
            sinks.update(int(d) for d in dsts)
            max_distance = max(max_distance, int((dsts - srcs).max()))
            if is_flow:
                reads_after = ib[diff] > ia[diff]
                for src, dst in zip(ia[diff][reads_after], ib[diff][reads_after]):
                    flow.setdefault(int(dst), set()).add(int(src))
    depth: dict[int, int] = {}
    for sink in sorted(flow):
        depth[sink] = 1 + max(
            (depth.get(src, 1) for src in flow[sink]), default=1
        )
    edges = [(src, sink) for sink, srcs in flow.items() for src in sorted(srcs)]
    return DependenceSummary(
        conflicts=conflicts,
        flow_edges=sorted(edges),
        critical_path=max(depth.values(), default=1),
        max_distance=max_distance,
        sink_iterations=len(sinks),
    )
