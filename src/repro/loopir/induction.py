"""Speculative induction variables (the EXTEND 400 pattern).

TRACK's ``EXTEND`` loop indexes its track arrays with a counter ``LSTTRK``
that is *conditionally* incremented, so the per-iteration values cannot be
precomputed.  The paper parallelizes it in two doalls: every processor first
computes the counter from a zero-relative offset while the runtime collects
array-reference ranges and per-processor increment counts; a parallel prefix
sum over those counts yields each processor's true starting offset; after
verifying that all reads land strictly below all writes (``max read index <
min write index``), a second doall re-executes with the corrected offsets
and commits by last value.

:class:`InductionSpec` declares such a counter on a loop.  The contexts in
:mod:`repro.loopir.context` and the two-phase runner in
:mod:`repro.core.induction_runner` implement the execution discipline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class InductionSpec:
    """A conditionally incremented integer counter used to index arrays.

    Parameters
    ----------
    name:
        Identifier used by ``ctx.bump(name)`` / ``ctx.induction(name)``.
    initial:
        The counter's value on loop entry (e.g. the current last-track
        index).  The sequential semantics are: ``bump`` returns the current
        value and then increments it by one.
    """

    name: str
    initial: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("induction variable needs a non-empty name")
