"""Plain-text table and series rendering for the benchmark harness.

Every figure reproduction prints its data as an aligned text table (the
"same rows/series the paper reports"), so the harness needs a small,
dependency-free formatter.  Numbers are rendered with enough precision to
compare shapes without drowning the reader in digits.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    The first column is left-aligned (labels); the rest are right-aligned
    (numbers), matching conventional benchmark output.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(parts: Sequence[str]) -> str:
        out = []
        for i, (p, w) in enumerate(zip(parts, widths)):
            out.append(p.ljust(w) if i == 0 else p.rjust(w))
        return "  ".join(out).rstrip()

    pieces = []
    if title:
        pieces.append(title)
    pieces.append(line(headers))
    pieces.append(line(["-" * w for w in widths]))
    pieces.extend(line(row) for row in cells)
    return "\n".join(pieces)


def format_series(
    x_name: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render one x-column plus one column per named series.

    This is the shape of every speedup/PR figure in the paper: x is the
    processor count or window size, each series is one input deck or
    strategy.
    """
    headers = [x_name, *series.keys()]
    length = len(x_values)
    for name, values in series.items():
        if len(values) != length:
            raise ValueError(
                f"series {name!r} has {len(values)} points, x has {length}"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
