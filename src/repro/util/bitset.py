"""A packed, fixed-size bitset over numpy ``uint64`` words.

The dense shadow structures (:mod:`repro.shadow.dense`) keep three bits per
array element per processor (Read, Write, Not-Privatizable).  Storing each
plane as a packed bitset keeps the per-processor shadow memory at
``3/8`` bytes per tested element -- the same order as the paper's two-bit
shadow arrays -- and makes the cross-processor analysis phase a handful of
vectorized word operations instead of a Python loop per element.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.kernels import get_kernels

_WORD_BITS = 64


class BitSet:
    """Fixed-capacity set of small non-negative integers.

    Parameters
    ----------
    size:
        Number of addressable bits.  Bits outside ``[0, size)`` are rejected.
    words:
        Optional pre-existing packed word array (shared, not copied); used
        by :meth:`copy` and the bitwise operators.
    """

    __slots__ = ("_size", "_words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"BitSet size must be non-negative, got {size}")
        self._size = size
        n_words = (size + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self._words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.shape != (n_words,):
                raise ValueError(
                    f"word array has shape {words.shape}, expected ({n_words},)"
                )
            self._words = words

    # -- basic protocol ----------------------------------------------------

    @property
    def size(self) -> int:
        """Capacity in bits (not the population count)."""
        return self._size

    @property
    def words(self) -> np.ndarray:
        """The packed ``uint64`` word array itself (shared, not a copy);
        lets callers place a plane in externally managed storage (the
        shared-memory execution backend) and re-wrap it with
        ``BitSet(size, words=...)``."""
        return self._words

    def __len__(self) -> int:
        """Population count: number of set bits."""
        return get_kernels().popcount(self._words)

    def __bool__(self) -> bool:
        return bool(self._words.any())

    def __contains__(self, index: int) -> bool:
        return self.test(index)

    def __iter__(self) -> Iterator[int]:
        yield from self.to_indices()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitSet):
            return NotImplemented
        return self._size == other._size and bool(
            np.array_equal(self._words, other._words)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = self.to_indices()[:16]
        suffix = ", ..." if len(self) > 16 else ""
        return f"BitSet(size={self._size}, bits={list(shown)}{suffix})"

    # -- mutation ----------------------------------------------------------

    def _check(self, index: int) -> tuple[int, np.uint64]:
        if not 0 <= index < self._size:
            raise IndexError(f"bit {index} out of range [0, {self._size})")
        return index >> 6, np.uint64(1) << np.uint64(index & 63)

    def set(self, index: int) -> None:
        """Set a single bit."""
        word, mask = self._check(index)
        self._words[word] |= mask

    def clear(self, index: int) -> None:
        """Clear a single bit."""
        word, mask = self._check(index)
        self._words[word] &= ~mask

    def test(self, index: int) -> bool:
        """Return whether a bit is set."""
        word, mask = self._check(index)
        return bool(self._words[word] & mask)

    def set_many(self, indices: np.ndarray) -> None:
        """Set all bits in ``indices`` (kernel batch op)."""
        get_kernels().set_bits(
            self._words, self._size, np.asarray(indices, dtype=np.int64)
        )

    def reset(self) -> None:
        """Clear every bit (shadow re-initialization between stages)."""
        self._words[:] = 0

    # -- set algebra (used by the analysis phase) ---------------------------

    def _binary(self, other: "BitSet", op) -> "BitSet":
        if self._size != other._size:
            raise ValueError(
                f"size mismatch: {self._size} vs {other._size}"
            )
        return BitSet(self._size, op(self._words, other._words))

    def __or__(self, other: "BitSet") -> "BitSet":
        return self._binary(other, np.bitwise_or)

    def __and__(self, other: "BitSet") -> "BitSet":
        return self._binary(other, np.bitwise_and)

    def __xor__(self, other: "BitSet") -> "BitSet":
        return self._binary(other, np.bitwise_xor)

    def __sub__(self, other: "BitSet") -> "BitSet":
        return self._binary(other, lambda a, b: a & ~b)

    def __ior__(self, other: "BitSet") -> "BitSet":
        if self._size != other._size:
            raise ValueError(f"size mismatch: {self._size} vs {other._size}")
        get_kernels().or_words(self._words, other._words)
        return self

    def intersects(self, other: "BitSet") -> bool:
        """True if any bit is set in both (cheaper than ``bool(a & b)``)."""
        if self._size != other._size:
            raise ValueError(f"size mismatch: {self._size} vs {other._size}")
        return get_kernels().words_intersect(self._words, other._words)

    # -- export --------------------------------------------------------------

    def to_indices(self) -> np.ndarray:
        """Return the sorted array of set bit positions."""
        return get_kernels().bits_to_indices(self._words, self._size)

    def copy(self) -> "BitSet":
        return BitSet(self._size, self._words.copy())
