"""Iteration-block arithmetic.

The R-LRPD test requires the speculative loop to be *statically block
scheduled in increasing order of iteration* (paper, Section 2): processor
``q`` receives a contiguous block of iterations that all precede processor
``q+1``'s block.  Everything in :mod:`repro.core` manipulates such blocks, so
the partitioning arithmetic lives here in one audited place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ScheduleError


@dataclass(frozen=True, slots=True)
class Block:
    """A half-open, contiguous range of iterations ``[start, stop)`` assigned
    to one processor for one speculative stage."""

    proc: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ScheduleError(f"negative processor id {self.proc}")
        if self.stop < self.start:
            raise ScheduleError(f"inverted block [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, iteration: int) -> bool:
        return self.start <= iteration < self.stop

    def iterations(self) -> range:
        return range(self.start, self.stop)

    def __repr__(self) -> str:
        return f"Block(p{self.proc}: [{self.start}, {self.stop}))"


def validate_blocks(blocks: Sequence[Block], start: int, stop: int) -> None:
    """Check that ``blocks`` tile ``[start, stop)`` contiguously with
    processor ranks in increasing iteration order.

    Empty blocks are allowed (a processor may receive no work in the final
    stages of the NRD strategy); the non-empty blocks must be ordered by
    strictly increasing processor id.
    """
    nonempty = [b for b in blocks if len(b)]
    cursor = start
    last_proc = -1
    for b in nonempty:
        if b.proc <= last_proc:
            raise ScheduleError(
                f"blocks not in increasing processor order at {b!r}"
            )
        if b.start != cursor:
            raise ScheduleError(
                f"gap or overlap: expected block starting at {cursor}, got {b!r}"
            )
        cursor = b.stop
        last_proc = b.proc
    if cursor != stop:
        raise ScheduleError(
            f"blocks cover [{start}, {cursor}) but [{start}, {stop}) required"
        )


def blocks_cover(blocks: Sequence[Block]) -> tuple[int, int]:
    """Return the ``(start, stop)`` span covered by non-empty ``blocks``."""
    nonempty = [b for b in blocks if len(b)]
    if not nonempty:
        return (0, 0)
    return (min(b.start for b in nonempty), max(b.stop for b in nonempty))


def partition_even(start: int, stop: int, procs: Sequence[int]) -> list[Block]:
    """Partition ``[start, stop)`` as evenly as possible over ``procs``.

    The first ``n % p`` processors receive one extra iteration, matching the
    usual static block schedule.  ``procs`` must be given in increasing rank
    order so the result satisfies the block-scheduling requirement.
    """
    if not procs:
        raise ScheduleError("cannot partition over zero processors")
    if list(procs) != sorted(set(procs)):
        raise ScheduleError(f"processor list {procs!r} must be strictly increasing")
    n = stop - start
    p = len(procs)
    base, extra = divmod(n, p)
    blocks: list[Block] = []
    cursor = start
    for k, proc in enumerate(procs):
        length = base + (1 if k < extra else 0)
        blocks.append(Block(proc, cursor, cursor + length))
        cursor += length
    validate_blocks(blocks, start, stop)
    return blocks


def partition_weighted(
    start: int,
    stop: int,
    procs: Sequence[int],
    weights: np.ndarray,
) -> list[Block]:
    """Partition ``[start, stop)`` so each processor gets ~equal total weight.

    ``weights[i]`` is the predicted cost of iteration ``start + i``.  This is
    the kernel of the paper's feedback-guided load balancing (Section 5.1):
    compute the prefix sums of the measured per-iteration times, divide the
    total by the processor count to obtain the perfectly balanced per-
    processor share, and cut the iteration space at the prefix-sum
    crossings of each share boundary.
    """
    n = stop - start
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ScheduleError(
            f"weights shape {w.shape} does not match iteration count {n}"
        )
    if n and w.min() < 0:
        raise ScheduleError("iteration weights must be non-negative")
    total = float(w.sum())
    p = len(procs)
    if not p:
        raise ScheduleError("cannot partition over zero processors")
    if total <= 0.0 or n == 0:
        return partition_even(start, stop, procs)
    prefix = np.cumsum(w)
    ideal = total / p
    # For each share boundary, pick the cut whose running total is nearest
    # the target: either just before or just after the crossing iteration.
    targets = ideal * np.arange(1, p)
    crossing = np.searchsorted(prefix, targets, side="left")
    cuts = []
    for k, target in zip(crossing, targets):
        k = int(min(k, n - 1))
        below = prefix[k - 1] if k > 0 else 0.0
        above = prefix[k]
        cut = k + 1 if (above - target) <= (target - below) else k
        cuts.append(cut)
    bounds = [start, *(start + c for c in cuts), stop]
    # searchsorted is monotone, but enforce it defensively.
    for a, b in zip(bounds, bounds[1:]):
        if b < a:
            raise ScheduleError("non-monotone weighted partition")
    blocks = [
        Block(proc, bounds[k], bounds[k + 1]) for k, proc in enumerate(procs)
    ]
    validate_blocks(blocks, start, stop)
    return blocks


def scale_boundaries(boundaries: Sequence[int], old_n: int, new_n: int) -> list[int]:
    """Rescale relative block boundaries to a new iteration count.

    The paper reuses the balanced distribution computed on one loop
    instantiation as a first-order predictor for the next; *"when the
    iteration space changes from one instantiation to another, we scale the
    block distribution accordingly"* (Section 5.1).
    """
    if old_n <= 0:
        raise ScheduleError("old iteration count must be positive")
    if new_n < 0:
        raise ScheduleError("new iteration count must be non-negative")
    scaled = [min(new_n, (b * new_n) // old_n) for b in boundaries]
    # Keep monotone after integer truncation.
    for k in range(1, len(scaled)):
        scaled[k] = max(scaled[k], scaled[k - 1])
    return scaled
