"""Deterministic random-number helpers.

Every stochastic choice in the workload generators flows through a
``numpy.random.Generator`` seeded from an explicit integer, so each figure
reproduction is bit-for-bit repeatable.  Named streams derive independent
children from a root seed, keeping e.g. the dependence pattern of a deck
stable even when unrelated generators are added later.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None, *stream: str | int) -> np.random.Generator:
    """Create a generator for the given root ``seed`` and stream name.

    ``stream`` components (strings or ints) are folded into the seed
    sequence, so ``make_rng(7, "nlfilt", 3)`` and ``make_rng(7, "extend")``
    are statistically independent but individually reproducible.
    """
    keys: list[int] = []
    for part in stream:
        if isinstance(part, int):
            keys.append(part & 0xFFFFFFFF)
        else:
            # Stable 32-bit hash of the stream name (hash() is salted).
            h = 2166136261
            for ch in part.encode():
                h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
            keys.append(h)
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=keys))
