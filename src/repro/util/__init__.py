"""Small shared utilities: bitsets, block arithmetic, RNG, formatting."""

from repro.util.bitset import BitSet
from repro.util.blocks import Block, blocks_cover, partition_even, partition_weighted
from repro.util.rng import make_rng
from repro.util.tables import format_series, format_table

__all__ = [
    "BitSet",
    "Block",
    "blocks_cover",
    "partition_even",
    "partition_weighted",
    "make_rng",
    "format_series",
    "format_table",
]
