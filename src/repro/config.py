"""Runtime configuration: strategy selection and optimization toggles.

The paper evaluates three strategies (Section 2) and several orthogonal
optimizations (Section 5).  :class:`RuntimeConfig` captures one combination;
the named constructors build the paper's canonical configurations:

* ``RuntimeConfig.nrd()`` -- blocked schedule, never redistribute.
* ``RuntimeConfig.rd()``  -- blocked schedule, always redistribute.
* ``RuntimeConfig.adaptive()`` -- blocked, redistribute while Eq. (4) holds.
* ``RuntimeConfig.sw(window)`` -- sliding window of ``window`` iterations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.os_chaos import OsChaosPlan
    from repro.faults.plan import FaultPlan


class Strategy(enum.Enum):
    """Top-level iteration-assignment strategy."""

    BLOCKED = "blocked"          # one block per processor (NRD/RD flavors)
    SLIDING_WINDOW = "sliding_window"


class RedistributionPolicy(enum.Enum):
    """When a blocked stage fails, what happens to the remaining iterations."""

    NEVER = "never"        # NRD: failed processors re-run their own blocks
    ALWAYS = "always"      # RD: re-block the remainder over all processors
    ADAPTIVE = "adaptive"  # RD while Eq. (4) holds, then NRD


class TestCondition(enum.Enum):
    """Which run-time condition qualifies a reference pattern (Section 2)."""

    __test__ = False  # not a pytest class, despite the name

    COPY_IN = "copy-in"
    """``(Read* | (Write|Read)*)``: reads may precede writes if private
    storage is initialized from shared data (on-demand copy-in).  Only
    cross-processor *flow* dependences invalidate speculation."""

    PRIVATIZATION = "privatization"
    """``(Write|Read)*``: every read must be covered by an earlier write on
    the same processor.  Stricter; used by the original LRPD baseline."""


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """One complete runtime configuration."""

    strategy: Strategy = Strategy.BLOCKED
    redistribution: RedistributionPolicy | None = None
    """Blocked-strategy failure policy.  ``None`` selects the strategy's
    default (``ADAPTIVE`` for blocked, ``NEVER`` for the sliding window,
    whose circular assignment rule admits no other policy); explicitly
    passing a non-``NEVER`` policy together with the sliding window is a
    contradiction and raises :class:`ConfigurationError`."""

    condition: TestCondition = TestCondition.COPY_IN
    window_size: int | None = None
    """Sliding-window width in iterations (``None`` = 2 blocks/processor)."""

    adaptive_window: bool = False
    """Halve the window's super-iteration size after a failed window stage,
    double it back after clean stages (history-based window tuning)."""

    on_demand_checkpoint: bool = True
    """Checkpoint untested elements on first write instead of wholesale."""

    certify: str = "hint"
    """Static certification front-end (:mod:`repro.model.certify`).
    ``"off"`` disables it: every loop goes through the full speculative
    machinery.  ``"hint"`` (default) acts only on *exact* certificates --
    loops small enough for a full sequential probe run the
    zero-speculation fast path when provably DOALL, or a single
    sequential pass when provably cross-iteration dependent; SPECULATE
    certificates only contribute strategy/window hints.  ``"trust"``
    additionally acts on affine-model certificates from a sampled probe
    of large loops -- sound only if the loop really is affine (see
    docs/runtime-semantics.md for the risk model).  Certification never
    applies when an explicit strategy object is passed, or under fault
    injection / OS chaos (the fast path has no rollback machinery)."""

    pre_initialize: bool = False
    """Initialize private copies of the (dense) tested arrays by bulk copy
    before each speculative stage instead of on-demand copy-in (Section
    2's 'before the start of the speculative loop' option).  Cheaper per
    element but paid for every element; sparse arrays always stay
    on-demand."""

    feedback_balancing: bool = False
    """Re-block each instantiation using measured per-iteration times from
    the previous one (Section 5.1)."""

    max_stages: int = 100_000
    """Safety valve against runtime bugs; never hit in correct operation."""

    fault_plan: "FaultPlan | None" = None
    """Deterministic fault-injection schedule for this run (``None`` = a
    fault-free machine).  See :mod:`repro.faults`."""

    self_check: bool = False
    """Continuously verify the runtime's own guarantees: per-stage
    untested-array isolation, plus an end-of-run comparison of final shared
    memory against a sequential replay.  Raises
    :class:`~repro.errors.SelfCheckError` on violation."""

    max_fault_retries: int = 3
    """Consecutive zero-progress stage retries tolerated when injected
    faults (not data dependences) wipe out a whole stage; exceeding the
    bound raises :class:`~repro.errors.FaultError`."""

    trace_path: str | None = None
    """Write a JSONL stage-event trace of the run to this path (``None`` =
    no trace).  Every engine-based run emits the same typed event stream
    (:mod:`repro.obs.events`); this flag attaches the on-disk sink."""

    backend: str | None = None
    """Execution backend running each stage's blocks (``None`` = the
    process-wide default, normally ``"serial"``): ``"serial"`` executes
    blocks in-process one after another, ``"fork"`` dispatches them to a
    persistent pool of forked worker processes, ``"shm"`` runs the same
    pool over a zero-copy shared-memory data plane with struct-packed
    pipes (:mod:`repro.core.shm`), and ``"threads"`` runs blocks on
    worker threads inside the engine's own process over the GIL-releasing
    kernel seam -- no fork, no diff-sync, no pickling
    (:mod:`repro.core.threads`; the cheapest dispatch, truly parallel on
    free-threaded builds).  Results and
    virtual-time accounting are bit-identical across all of them; only
    host wall-clock time changes.  Unknown names fail when the engine
    resolves the backend (:func:`repro.core.backend.make_backend`)."""

    backend_workers: int | None = None
    """Worker count for parallel backends -- processes for fork/shm,
    threads for the threads backend (``None`` = one per simulated
    processor, capped at the host CPU count)."""

    kernels: str | None = None
    """Hot-path kernels implementation (``None`` = the process-wide default,
    normally ``"vector"``): ``"vector"`` runs the numpy-vectorized batch
    primitives, ``"scalar"`` runs the pure-Python per-element reference
    loops they are differentially tested against (:mod:`repro.kernels`).
    Results, events and virtual-time accounting are bit-identical across
    both; only host wall-clock time changes."""

    worker_timeout: float = 30.0
    """Minimum seconds a worker may hold a dispatched share before the
    supervisor declares it hung -- fork/shm workers are SIGKILLed and
    re-forked, threads workers get a cooperative cancellation flag
    honoured at the next iteration boundary -- and its blocks are
    re-dispatched (:mod:`repro.core.supervise`,
    :mod:`repro.core.threads`).  This is the *floor* of an
    adaptive deadline: once blocks have completed, the deadline grows to
    ``worker_timeout_factor`` times the observed per-block maximum, so
    slow-but-alive workers on long blocks are never misread as hangs."""

    worker_timeout_factor: float = 8.0
    """Multiplier over the observed per-block time estimate in the
    supervisor's deadline (see ``worker_timeout``)."""

    max_worker_respawns: int = 3
    """Worker recoveries a parallel backend may spend over its lifetime:
    replacement processes forked after fork/shm crashes or hangs, and
    cancel-and-redispatch cycles on the threads backend.  On exhaustion
    (or a poison block that kills every worker it touches) the backend
    degrades gracefully (shm -> fork -> serial, threads -> serial)
    instead of aborting the run."""

    os_chaos: "OsChaosPlan | None" = None
    """OS-level chaos schedule (:mod:`repro.faults.os_chaos`): SIGKILL or
    SIGSTOP real fork/shm workers at planned (stage, worker) points to
    exercise the supervision layer.  ``None`` = no OS faults.  Composable
    with the logical ``fault_plan``.  The threads backend refuses chaos
    configs -- its workers share the engine's process."""

    metrics: bool | None = None
    """Collect runtime metrics (:mod:`repro.obs.metrics`): counters and
    histograms over marks, copy-in/commit/checkpoint/restore element and
    byte counts, fault retries, scheduler activity.  ``None`` = the
    process-wide default (:func:`repro.obs.metrics.use_instrumentation`,
    normally off).  Metrics are deterministic and do not perturb results
    or virtual time."""

    spans: bool | None = None
    """Emit hierarchical dual-clock spans (:mod:`repro.obs.spans`):
    run -> stage -> phase -> per-block, each carrying host wall-clock and
    virtual time.  ``None`` = the process-wide default, except that a set
    ``perfetto_path`` implies spans."""

    perfetto_path: str | None = None
    """Also write the span/metric stream as Chrome trace-event JSON to
    this path for https://ui.perfetto.dev (``None`` = no export).
    Implies ``spans`` unless explicitly disabled."""

    resources: bool | None = None
    """Sample host resources (RSS, CPU time, /dev/shm bytes, queue
    depths) on a background thread during the run
    (:mod:`repro.obs.resources`).  ``None`` = the process default: on
    when ``status_path`` is set or the ``REPRO_RESOURCES`` environment
    variable is truthy, else off.  Samples live strictly on the
    operational plane -- never in the deterministic event stream."""

    resource_interval: float = 0.05
    """Seconds between host resource samples (must be > 0)."""

    status_path: str | None = None
    """Stream all three observability planes (deterministic events,
    oplog records, resource samples) as line-flushed JSONL to this path
    for live monitoring with ``repro top`` (``None`` = no stream).
    Implies ``resources`` unless explicitly disabled."""

    flight_events: int = 256
    """Ring-buffer capacity of the crash flight recorder
    (:mod:`repro.obs.flight`): how many recent stage events and oplog
    records are kept in memory for a crash bundle.  ``0`` disables the
    recorder entirely."""

    crash_dir: str | None = None
    """Directory receiving a crash bundle (trace tail, oplog tail,
    resource samples, config, env) when the run dies of an uncaught
    error.  ``None`` = the ``REPRO_CRASH_DIR`` environment variable, or
    no bundle when that is unset too."""

    def __post_init__(self) -> None:
        if self.window_size is not None and self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        if self.certify not in ("off", "hint", "trust"):
            raise ConfigurationError(
                f"unknown certify mode {self.certify!r}; "
                "known: off, hint, trust"
            )
        if self.max_stages < 1:
            raise ConfigurationError("max_stages must be >= 1")
        if self.max_fault_retries < 0:
            raise ConfigurationError("max_fault_retries must be >= 0")
        if self.backend_workers is not None and self.backend_workers < 1:
            raise ConfigurationError("backend_workers must be >= 1")
        if self.worker_timeout <= 0:
            raise ConfigurationError("worker_timeout must be > 0")
        if self.worker_timeout_factor < 1:
            raise ConfigurationError("worker_timeout_factor must be >= 1")
        if self.max_worker_respawns < 0:
            raise ConfigurationError("max_worker_respawns must be >= 0")
        if self.resource_interval <= 0:
            raise ConfigurationError("resource_interval must be > 0")
        if self.flight_events < 0:
            raise ConfigurationError("flight_events must be >= 0")
        if self.kernels is not None:
            from repro.kernels import kernel_names

            if self.kernels not in kernel_names():
                raise ConfigurationError(
                    f"unknown kernels implementation {self.kernels!r}; "
                    f"known: {', '.join(kernel_names())}"
                )
        if self.redistribution is None:
            # The sliding window has its own (circular) assignment rule;
            # blocked-redistribution policies do not apply to it.
            default = (
                RedistributionPolicy.NEVER
                if self.strategy is Strategy.SLIDING_WINDOW
                else RedistributionPolicy.ADAPTIVE
            )
            object.__setattr__(self, "redistribution", default)
        elif (
            self.strategy is Strategy.SLIDING_WINDOW
            and self.redistribution is not RedistributionPolicy.NEVER
        ):
            raise ConfigurationError(
                f"redistribution={self.redistribution.value!r} conflicts with "
                "the sliding-window strategy (its circular assignment rule "
                "re-executes failed blocks in place); omit the policy or "
                "pass RedistributionPolicy.NEVER"
            )

    # -- canonical configurations ---------------------------------------------

    @classmethod
    def nrd(cls, **overrides) -> "RuntimeConfig":
        return cls(
            strategy=Strategy.BLOCKED,
            redistribution=RedistributionPolicy.NEVER,
            **overrides,
        )

    @classmethod
    def rd(cls, **overrides) -> "RuntimeConfig":
        return cls(
            strategy=Strategy.BLOCKED,
            redistribution=RedistributionPolicy.ALWAYS,
            **overrides,
        )

    @classmethod
    def adaptive(cls, **overrides) -> "RuntimeConfig":
        return cls(
            strategy=Strategy.BLOCKED,
            redistribution=RedistributionPolicy.ADAPTIVE,
            **overrides,
        )

    @classmethod
    def sw(cls, window_size: int | None = None, **overrides) -> "RuntimeConfig":
        return cls(
            strategy=Strategy.SLIDING_WINDOW,
            window_size=window_size,
            **overrides,
        )

    def label(self) -> str:
        """Short human-readable tag used in benchmark tables."""
        if self.strategy is Strategy.SLIDING_WINDOW:
            w = self.window_size if self.window_size is not None else "auto"
            return f"SW(w={w})"
        return {
            RedistributionPolicy.NEVER: "NRD",
            RedistributionPolicy.ALWAYS: "RD",
            RedistributionPolicy.ADAPTIVE: "RD-adaptive",
        }[self.redistribution]

    def with_options(self, **overrides) -> "RuntimeConfig":
        return replace(self, **overrides)
