"""Pure-Python scalar reference kernels.

This module is the executable specification of the kernel API: every
function does its work with an explicit per-element Python loop whose
semantics are easy to audit against the paper's marking/copy rules.  The
vectorized implementation (:mod:`repro.kernels.vector`) must be
bit-identical to these loops on every input -- the property-based
differential tests in ``tests/test_kernels.py`` enforce it, and CI runs
the golden parity matrix once under ``REPRO_KERNELS=scalar`` so this
reference cannot rot.

Shared conventions:

* ``words`` arguments are packed ``uint64`` bit planes (64 bits per word,
  little-endian bit order within a word), the storage of
  :class:`repro.util.bitset.BitSet`;
* ``indices`` are integer arrays (possibly with duplicates, possibly
  unsorted); bounds are checked against ``size`` where one is given, and
  the error reports the first offending index in iteration order;
* dict/set-backed sparse structures keep Python ``int`` keys.
"""

from __future__ import annotations

import numpy as np

_ONE = np.uint64(1)


def _check_range(index: int, size: int) -> None:
    if not 0 <= index < size:
        raise IndexError(f"element {index} out of range [0, {size})")


# -- packed bit planes (dense shadow marking) -----------------------------------


def set_bits(words: np.ndarray, size: int, indices: np.ndarray) -> None:
    """Set bit ``i`` of ``words`` for every ``i`` in ``indices``."""
    for index in np.asarray(indices).tolist():
        _check_range(index, size)
        words[index >> 6] |= _ONE << np.uint64(index & 63)


def mark_reads_bits(
    write_words: np.ndarray,
    exposed_words: np.ndarray,
    any_read_words: np.ndarray,
    size: int,
    indices: np.ndarray,
) -> None:
    """Dense read marking: set the any-read bit for every index, and the
    exposed-read bit only where no local write precedes it (the write
    plane is not modified, so a batch read sees all writes already marked
    and none of its own batch's)."""
    for index in np.asarray(indices).tolist():
        _check_range(index, size)
        word, mask = index >> 6, _ONE << np.uint64(index & 63)
        any_read_words[word] |= mask
        if not write_words[word] & mask:
            exposed_words[word] |= mask


def or_words(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst |= src``, word by word (cumulative-write folding)."""
    for k in range(len(dst)):
        dst[k] |= src[k]


def words_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether any bit is set in both planes."""
    for k in range(len(a)):
        if a[k] & b[k]:
            return True
    return False


def and_words_indices(a: np.ndarray, b: np.ndarray, size: int) -> np.ndarray:
    """Sorted positions of bits set in both planes (conflict extraction)."""
    out = []
    for k in range(len(a)):
        both = int(a[k] & b[k])
        while both:
            low = both & -both
            out.append(k * 64 + low.bit_length() - 1)
            both ^= low
    return np.fromiter((i for i in out if i < size), dtype=np.int64)


def bits_to_indices(words: np.ndarray, size: int) -> np.ndarray:
    """Sorted positions of all set bits."""
    out = []
    for k in range(len(words)):
        word = int(words[k])
        while word:
            low = word & -word
            out.append(k * 64 + low.bit_length() - 1)
            word ^= low
    return np.fromiter((i for i in out if i < size), dtype=np.int64)


def popcount(words: np.ndarray) -> int:
    """Number of set bits across the plane."""
    total = 0
    for k in range(len(words)):
        total += int(words[k]).bit_count()
    return total


# -- set-backed sparse shadow marking -------------------------------------------


def mark_writes_set(target: set, size: int, indices) -> None:
    """Add every index to a sparse mark plane (write or update)."""
    for index in (int(i) for i in indices):
        _check_range(index, size)
        target.add(index)


def mark_reads_set(
    write_set: set, exposed_set: set, any_read_set: set, size: int, indices
) -> None:
    """Sparse read marking; same exposure rule as :func:`mark_reads_bits`."""
    for index in (int(i) for i in indices):
        _check_range(index, size)
        any_read_set.add(index)
        if index not in write_set:
            exposed_set.add(index)


# -- dense private-view copies ---------------------------------------------------


def copy_in_dense(
    values: np.ndarray, have: np.ndarray, shared_data: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, int]:
    """Bulk load with on-demand copy-in.  Returns ``(loaded values,
    distinct elements copied in)`` -- the count the caller charges the
    copy-in cost for."""
    idx = np.asarray(indices)
    out = np.empty(len(idx), dtype=values.dtype)
    copied = 0
    for k, index in enumerate(idx.tolist()):
        if have[index]:
            out[k] = values[index]
        else:
            value = shared_data[index]
            values[index] = value
            have[index] = True
            out[k] = value
            copied += 1
    return out, copied


def store_dense(
    values: np.ndarray,
    have: np.ndarray,
    written: np.ndarray,
    indices: np.ndarray,
    new_values: np.ndarray,
) -> None:
    """Bulk store into private dense storage (last duplicate wins)."""
    for k, index in enumerate(np.asarray(indices).tolist()):
        values[index] = new_values[k]
        have[index] = True
        written[index] = True


def copy_out_dense(
    values: np.ndarray, written: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, values)`` of every written element, index-sorted (the
    commit phase's input)."""
    out = []
    for index in range(len(written)):
        if written[index]:
            out.append(index)
    idx = np.fromiter(out, dtype=np.int64, count=len(out))
    vals = np.empty(len(out), dtype=values.dtype)
    for k, index in enumerate(out):
        vals[k] = values[index]
    return idx, vals


# -- sparse (dict-backed) private-view copies ------------------------------------


def copy_in_sparse(
    value_map: dict, shared_data: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, int]:
    """Bulk load over dict-backed storage with on-demand copy-in."""
    idx = np.asarray(indices)
    out = np.empty(len(idx), dtype=shared_data.dtype)
    copied = 0
    for k, index in enumerate(idx.tolist()):
        try:
            out[k] = value_map[index]
        except KeyError:
            value = shared_data[index]
            value_map[index] = value
            out[k] = value
            copied += 1
    return out, copied


def store_sparse(value_map: dict, written: set, indices: np.ndarray, new_values) -> None:
    """Bulk store into dict-backed storage (last duplicate wins); also
    the absorb path for shipped ``(indices, values)`` payloads."""
    for index, value in zip(np.asarray(indices).tolist(), new_values):
        value_map[index] = value
        written.add(index)


def copy_out_sparse(
    value_map: dict, written: set, dtype
) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, values)`` of every written element, index-sorted, values
    cast to the shared dtype (exactly the cast a scalar ``data[index] =
    value`` performs)."""
    order = sorted(written)
    idx = np.fromiter(order, dtype=np.int64, count=len(order))
    vals = np.empty(len(order), dtype=dtype)
    for k, index in enumerate(order):
        vals[k] = value_map[index]
    return idx, vals


# -- scatter / gather / packing --------------------------------------------------


def gather(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Copy ``data[indices]`` out (untested write-back capture)."""
    idx = np.asarray(indices)
    out = np.empty(len(idx), dtype=data.dtype)
    for k, index in enumerate(idx.tolist()):
        out[k] = data[index]
    return out


def scatter(data: np.ndarray, indices: np.ndarray, values) -> None:
    """Apply ``data[indices] = values`` (commit write-back, untested-write
    replay, checkpoint restore)."""
    for k, index in enumerate(np.asarray(indices).tolist()):
        data[index] = values[k]


def pack_values(values, dtype) -> np.ndarray:
    """Pack a sequence of scalars into a fresh array of ``dtype`` (same
    element-wise cast as scalar assignment)."""
    out = np.empty(len(values), dtype=dtype)
    for k, value in enumerate(values):
        out[k] = value
    return out


def pack_range_map(mapping, start: int, count: int) -> np.ndarray:
    """Pack ``mapping[start : start + count]`` values (a dict keyed by a
    contiguous iteration range) into a float64 array (shm scratch fill)."""
    out = np.empty(count, dtype=np.float64)
    for k in range(count):
        out[k] = mapping[start + k]
    return out


# -- analysis reductions ---------------------------------------------------------


def intersect_indices(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted unique indices present in both arrays (mixed-set detection)."""
    common = set(np.asarray(a).tolist()) & set(np.asarray(b).tolist())
    return np.fromiter(sorted(common), dtype=np.int64, count=len(common))


def reduce_min_max(values: np.ndarray) -> tuple[int, int]:
    """``(min, max)`` of a non-empty integer array (earliest-sink /
    last-write reductions)."""
    seq = np.asarray(values).tolist()
    lo = hi = seq[0]
    for value in seq[1:]:
        if value < lo:
            lo = value
        if value > hi:
            hi = value
    return lo, hi
