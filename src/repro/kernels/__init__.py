"""Hot-path kernels: one vectorized marking/copy/reduction API, two impls.

Every per-element inner loop of the runtime -- shadow marking, private-view
copy-in/copy-out, untested-write application, checkpoint restore and the
analysis reductions -- funnels through the primitives defined here, so the
innermost loop of every layer (shadow, memory, analysis, and both parallel
backends) sits behind a single seam.  Two interchangeable implementations
are provided:

* :mod:`repro.kernels.vector` -- numpy-vectorized, the production default;
* :mod:`repro.kernels.scalar` -- pure-Python per-element reference loops,
  the executable specification the vector kernels are differentially
  tested against (and the only place per-element loops are allowed on the
  hot path; ``tools/check_hot_path.py`` enforces that).

Selection follows the execution-backend pattern: a process-wide default
(seeded from the ``REPRO_KERNELS`` environment variable, normally
``"vector"``), scopable with :func:`use_kernels`, and overridable per run
through ``RuntimeConfig.kernels``.  Both implementations are bit-identical
by contract: swapping them changes host wall-clock time only, never
results, virtual time, or event streams.
"""

from __future__ import annotations

import contextlib
import os

from repro.errors import ConfigurationError
from repro.kernels import scalar, vector

#: Registered implementations; both expose the same module-level functions.
KERNELS = {"vector": vector, "scalar": scalar}

DEFAULT_KERNELS = "vector"


def kernel_names() -> list[str]:
    return sorted(KERNELS)


def _validated(name: str) -> str:
    if name not in KERNELS:
        raise ConfigurationError(
            f"unknown kernels implementation {name!r}; known: "
            f"{', '.join(kernel_names())}"
        )
    return name


_default_kernels = _validated(os.environ.get("REPRO_KERNELS", DEFAULT_KERNELS))


def get_default_kernels() -> str:
    """Kernels used when ``RuntimeConfig.kernels`` is ``None``."""
    return _default_kernels


def set_default_kernels(name: str) -> None:
    """Set the process-wide default kernels (``use_kernels`` scopes it)."""
    global _default_kernels
    _default_kernels = _validated(name)


@contextlib.contextmanager
def use_kernels(name: str):
    """Scope the default kernels implementation.  The engine wraps each run
    in this so forked backend workers inherit the run's choice."""
    previous = _default_kernels
    set_default_kernels(name)
    try:
        yield
    finally:
        set_default_kernels(previous)


def resolve_kernels_name(config) -> str:
    """The kernels a config resolves to (explicit setting or the default)."""
    name = getattr(config, "kernels", None)
    return name if name is not None else _default_kernels


def get_kernels():
    """The active kernels module (call-time dispatch on the hot path)."""
    return KERNELS[_default_kernels]
