"""Numpy-vectorized hot-path kernels (the production default).

Same API and bit-identical semantics as the scalar reference
(:mod:`repro.kernels.scalar` -- see its docstring for the conventions);
each primitive here replaces the reference's per-element Python loop with
a constant number of numpy array operations.  The dict/set-backed sparse
primitives are the one exception: Python containers admit no true
vectorization, so those kernels batch the bounds checks and bulk
``update`` calls but still touch elements through the container protocol.

Equivalence with the scalar reference is enforced by the property-based
differential tests in ``tests/test_kernels.py`` (random index/value decks
with duplicates and aliasing) and by the golden parity CI leg that runs
the full matrix under ``REPRO_KERNELS=scalar``.
"""

from __future__ import annotations

import numpy as np

_ONE = np.uint64(1)


def _check_bounds(idx: np.ndarray, size: int) -> None:
    bad = (idx < 0) | (idx >= size)
    if bad.any():
        index = int(idx[int(np.argmax(bad))])
        raise IndexError(f"element {index} out of range [0, {size})")


def _word_masks(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return idx >> 6, _ONE << (idx & 63).astype(np.uint64)


# -- packed bit planes (dense shadow marking) -----------------------------------


def set_bits(words: np.ndarray, size: int, indices: np.ndarray) -> None:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    _check_bounds(idx, size)
    word, mask = _word_masks(idx)
    np.bitwise_or.at(words, word, mask)


def mark_reads_bits(
    write_words: np.ndarray,
    exposed_words: np.ndarray,
    any_read_words: np.ndarray,
    size: int,
    indices: np.ndarray,
) -> None:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    _check_bounds(idx, size)
    word, mask = _word_masks(idx)
    np.bitwise_or.at(any_read_words, word, mask)
    # The write plane is not modified here, so filtering against it before
    # or after setting any-read bits is equivalent to the reference loop.
    unwritten = (write_words[word] & mask) == 0
    np.bitwise_or.at(exposed_words, word[unwritten], mask[unwritten])


def or_words(dst: np.ndarray, src: np.ndarray) -> None:
    np.bitwise_or(dst, src, out=dst)


def words_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    return bool((a & b).any())


def and_words_indices(a: np.ndarray, b: np.ndarray, size: int) -> np.ndarray:
    bits = np.unpackbits((a & b).view(np.uint8), bitorder="little")
    return np.flatnonzero(bits[:size]).astype(np.int64, copy=False)


def bits_to_indices(words: np.ndarray, size: int) -> np.ndarray:
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits[:size]).astype(np.int64, copy=False)


def popcount(words: np.ndarray) -> int:
    # np.uint64 bit_count needs numpy>=2; unpackbits keeps 1.x support.
    return int(np.unpackbits(words.view(np.uint8)).sum())


# -- set-backed sparse shadow marking -------------------------------------------


def mark_writes_set(target: set, size: int, indices) -> None:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    _check_bounds(idx, size)
    target.update(idx.tolist())


def mark_reads_set(
    write_set: set, exposed_set: set, any_read_set: set, size: int, indices
) -> None:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    _check_bounds(idx, size)
    ids = idx.tolist()
    exposed_set.update(i for i in ids if i not in write_set)
    any_read_set.update(ids)


# -- dense private-view copies ---------------------------------------------------


def copy_in_dense(
    values: np.ndarray, have: np.ndarray, shared_data: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, int]:
    idx = np.asarray(indices)
    missing = np.unique(idx[~have[idx]])
    if len(missing):
        values[missing] = shared_data[missing]
        have[missing] = True
    return values[idx], len(missing)


def store_dense(
    values: np.ndarray,
    have: np.ndarray,
    written: np.ndarray,
    indices: np.ndarray,
    new_values: np.ndarray,
) -> None:
    values[indices] = new_values
    have[indices] = True
    written[indices] = True


def copy_out_dense(
    values: np.ndarray, written: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    idx = np.flatnonzero(written)
    return idx, values[idx]


# -- sparse (dict-backed) private-view copies ------------------------------------


def copy_in_sparse(
    value_map: dict, shared_data: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, int]:
    idx = np.asarray(indices)
    ids = idx.tolist()
    missing = sorted({i for i in ids if i not in value_map})
    if missing:
        gathered = shared_data[np.fromiter(missing, np.int64, len(missing))]
        value_map.update(zip(missing, gathered))
    out = np.empty(len(ids), dtype=shared_data.dtype)
    for k, index in enumerate(ids):  # dict gather; no array backing to index
        out[k] = value_map[index]
    return out, len(missing)


def store_sparse(value_map: dict, written: set, indices: np.ndarray, new_values) -> None:
    ids = np.asarray(indices).tolist()
    value_map.update(zip(ids, new_values))
    written.update(ids)


def copy_out_sparse(
    value_map: dict, written: set, dtype
) -> tuple[np.ndarray, np.ndarray]:
    order = sorted(written)
    idx = np.fromiter(order, dtype=np.int64, count=len(order))
    vals = np.empty(len(order), dtype=dtype)
    for k, index in enumerate(order):  # dict gather; no array backing to index
        vals[k] = value_map[index]
    return idx, vals


# -- scatter / gather / packing --------------------------------------------------


def gather(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    return data[np.asarray(indices)]


def scatter(data: np.ndarray, indices: np.ndarray, values) -> None:
    data[indices] = values


def pack_values(values, dtype) -> np.ndarray:
    out = np.empty(len(values), dtype=dtype)
    if len(values):
        out[:] = values
    return out


def pack_range_map(mapping, start: int, count: int) -> np.ndarray:
    return np.fromiter(
        (mapping[start + k] for k in range(count)), dtype=np.float64, count=count
    )


# -- analysis reductions ---------------------------------------------------------


#: Widest element-address span the table-based intersection may allocate a
#: lookup table for (one byte per address: 16 MiB).
_ISIN_TABLE_SPAN = 1 << 24


def intersect_indices(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.asarray(a)
    b = np.asarray(b)
    if not len(a) or not len(b):
        return np.empty(0, dtype=np.int64)
    # Element addresses are non-negative and bounded by the array size, so
    # a table-based membership test usually applies and beats the sort-
    # based np.intersect1d by several times.
    lo = min(int(a.min()), int(b.min()))
    hi = max(int(a.max()), int(b.max()))
    if 0 <= lo and hi - lo <= _ISIN_TABLE_SPAN:
        return np.unique(a[np.isin(a, b, kind="table")]).astype(np.int64, copy=False)
    return np.intersect1d(a, b).astype(np.int64, copy=False)


def reduce_min_max(values: np.ndarray) -> tuple[int, int]:
    arr = np.asarray(values)
    return int(arr.min()), int(arr.max())
