"""Dense (bit-packed) shadow arrays.

One :class:`~repro.util.bitset.BitSet` per mark plane keeps the shadow at a
fraction of a byte per element per processor, matching the paper's packed
two-bit shadow arrays, while the analysis-phase exports stay vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernels
from repro.shadow.base import ShadowArray
from repro.util.bitset import BitSet


class DenseShadow(ShadowArray):
    """Bit-plane shadow for densely accessed tested arrays."""

    __slots__ = ("_write", "_exposed", "_any_read", "_update")

    def __init__(self, n_elements: int) -> None:
        super().__init__(n_elements)
        self._write = BitSet(n_elements)
        self._exposed = BitSet(n_elements)
        self._any_read = BitSet(n_elements)
        self._update = BitSet(n_elements)

    # -- marking ----------------------------------------------------------------

    def mark_read(self, index: int) -> None:
        self._any_read.set(index)
        if not self._write.test(index):
            self._exposed.set(index)

    def mark_write(self, index: int) -> None:
        self._write.set(index)

    def mark_update(self, index: int) -> None:
        self._update.set(index)

    def mark_read_many(self, indices: np.ndarray) -> None:
        get_kernels().mark_reads_bits(
            self._write.words,
            self._exposed.words,
            self._any_read.words,
            self.n_elements,
            np.asarray(indices, dtype=np.int64),
        )

    def mark_write_many(self, indices: np.ndarray) -> None:
        get_kernels().set_bits(
            self._write.words, self.n_elements, np.asarray(indices, dtype=np.int64)
        )

    def mark_update_many(self, indices: np.ndarray) -> None:
        get_kernels().set_bits(
            self._update.words, self.n_elements, np.asarray(indices, dtype=np.int64)
        )

    # -- queries --------------------------------------------------------------

    def write_set(self) -> set[int]:
        return set(map(int, self._write.to_indices()))

    def exposed_read_set(self) -> set[int]:
        return set(map(int, self._exposed.to_indices()))

    def any_read_set(self) -> set[int]:
        return set(map(int, self._any_read.to_indices()))

    def update_set(self) -> set[int]:
        return set(map(int, self._update.to_indices()))

    def distinct_refs(self) -> int:
        return len(self._write | self._any_read | self._update)

    def reset(self) -> None:
        self._write.reset()
        self._exposed.reset()
        self._any_read.reset()
        self._update.reset()

    def has_updates(self) -> bool:
        return bool(self._update)

    def update_indices(self) -> np.ndarray:
        return self._update.to_indices()

    def ordinary_indices(self) -> np.ndarray:
        return (self._write | self._any_read).to_indices()

    def is_clear(self) -> bool:
        return not (
            bool(self._write)
            or bool(self._any_read)
            or bool(self._exposed)
            or bool(self._update)
        )

    def export_marks(self) -> tuple[BitSet, BitSet, BitSet, BitSet]:
        return (
            self._write.copy(),
            self._exposed.copy(),
            self._any_read.copy(),
            self._update.copy(),
        )

    def absorb_marks(self, payload: tuple[BitSet, BitSet, BitSet, BitSet]) -> None:
        write, exposed, any_read, update = payload
        self._write |= write
        self._exposed |= exposed
        self._any_read |= any_read
        self._update |= update

    # -- fast-path helpers used by the dense analysis ------------------------------

    @property
    def write_bits(self) -> BitSet:
        return self._write

    @property
    def exposed_bits(self) -> BitSet:
        return self._exposed

    @property
    def any_read_bits(self) -> BitSet:
        return self._any_read

    @property
    def update_bits(self) -> BitSet:
        return self._update
