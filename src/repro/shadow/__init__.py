"""Shadow structures for run-time dependence marking.

Per-processor shadows (:mod:`dense <repro.shadow.dense>`,
:mod:`sparse <repro.shadow.sparse>`) implement the paper's ``A_w`` / ``A_r``
marking bits: a Write bit, an exposed-Read bit (a read not covered by an
earlier write on the same processor -- exactly the reads that trigger
on-demand copy-in), plus a reduction-update bit for speculative reduction
validation.  Repeated same-type references to an element do not change the
shadow (Section 2), which bounds both memory and analysis time by the number
of *distinct* references.

Per-iteration mark lists (:mod:`repro.shadow.marklist`), the last-reference
table (:mod:`repro.shadow.lastref`) and the inverted edge table
(:mod:`repro.shadow.edges`) support full data-dependence-graph extraction
with the sliding-window test (Section 3).
"""

from repro.shadow.base import ShadowArray
from repro.shadow.dense import DenseShadow
from repro.shadow.sparse import SparseShadow
from repro.shadow.marklist import IterationMarks, MarkList
from repro.shadow.lastref import LastReferenceTable
from repro.shadow.edges import DependenceEdge, EdgeKind, InvertedEdgeTable

__all__ = [
    "ShadowArray",
    "DenseShadow",
    "SparseShadow",
    "IterationMarks",
    "MarkList",
    "LastReferenceTable",
    "DependenceEdge",
    "EdgeKind",
    "InvertedEdgeTable",
    "make_shadow",
]


def make_shadow(n_elements: int, sparse: bool | None = None) -> ShadowArray:
    """Pick a shadow representation, mirroring the private-view heuristic."""
    from repro.machine.memory import DENSE_VIEW_THRESHOLD

    if sparse is None:
        sparse = n_elements > DENSE_VIEW_THRESHOLD
    return SparseShadow(n_elements) if sparse else DenseShadow(n_elements)
