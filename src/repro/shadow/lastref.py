"""Distributed last-reference table.

During DDG extraction the sliding window only sees a slice of the iteration
space at a time, but dependences can reach back to any committed iteration.
The paper maintains a *distributed last reference table* with "the last
valid write for each memory address", consulted to detect cross-window
dependences between a successfully completed iteration and an iteration
inside the current window.  (The "distributed" part is a placement concern
on the real machine; functionally it is one map.)

Dependence-tracking semantics per address:

* a **read** depends on the *last* write (flow) -- earlier writes are
  ordered before it transitively through the output-dependence chain;
* a **write** depends on *every read since the last write* (anti) and on
  the last write itself (output).  Keeping only the latest reader would
  drop anti edges -- e.g. reads at iterations 2 and 3 followed by a write
  at 4 requires *both* ``2 -> 4`` and ``3 -> 4``; with only ``3 -> 4`` a
  scheduler may hoist the write above iteration 2's read.  (This exact
  scenario was found by the property-based test suite.)  The reader set is
  cleared by each write: readers before it are protected transitively.
"""

from __future__ import annotations


class LastReferenceTable:
    """Per-address last write and readers-since-that-write."""

    def __init__(self) -> None:
        self._last_write: dict[tuple[str, int], int] = {}
        self._readers: dict[tuple[str, int], set[int]] = {}

    def record_read(self, array: str, index: int, iteration: int) -> None:
        self._readers.setdefault((array, index), set()).add(iteration)

    def record_write(self, array: str, index: int, iteration: int) -> None:
        key = (array, index)
        prev = self._last_write.get(key)
        if prev is None or iteration > prev:
            self._last_write[key] = iteration
        # Readers preceding this write are now transitively ordered.
        self._readers.pop(key, None)

    def last_write(self, array: str, index: int) -> int | None:
        """Latest committed iteration that wrote the element, or ``None``."""
        return self._last_write.get((array, index))

    def readers_since_write(self, array: str, index: int) -> frozenset[int]:
        """All committed readers of the element after its last write."""
        return frozenset(self._readers.get((array, index), ()))

    def __len__(self) -> int:
        return len(self._last_write)

    def reset(self) -> None:
        self._last_write.clear()
        self._readers.clear()
