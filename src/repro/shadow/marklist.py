"""Iteration-level mark lists for DDG extraction.

For dependence-*graph* extraction (Section 3) the processor-wise shadow is
too coarse: the edges connect iterations, not processors.  The paper
organizes the shadow as an *N-level mark list* where ``N`` is the number of
iterations assigned to each processor; level ``k`` records the reads and
writes of the processor's ``k``-th iteration.  This module keeps one
:class:`IterationMarks` per (iteration, array), grouped in a
:class:`MarkList` per processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class IterationMarks:
    """Read/write/update element sets of a single iteration for one array.

    ``exposed_reads`` are reads not covered by an earlier write *in the same
    iteration* -- the upward-exposed uses that can be dependence sinks.

    When ``log_values`` is set, the last value written to each element is
    also captured.  The iteration-wise test needs this to commit a *prefix*
    of a processor's block (the per-processor private view only holds the
    block's final values); the memory cost is proportional to the write
    trace, which is exactly why the paper prefers the processor-wise test
    when iteration granularity is not required.
    """

    iteration: int
    writes: set[int] = field(default_factory=set)
    exposed_reads: set[int] = field(default_factory=set)
    updates: set[int] = field(default_factory=set)
    log_values: bool = False
    values: dict[int, object] = field(default_factory=dict)

    def mark_read(self, index: int) -> None:
        if index not in self.writes:
            self.exposed_reads.add(index)

    def mark_write(self, index: int, value: object | None = None) -> None:
        self.writes.add(index)
        if self.log_values:
            self.values[index] = value

    def mark_update(self, index: int) -> None:
        self.updates.add(index)

    def distinct_refs(self) -> int:
        return len(self.writes | self.exposed_reads | self.updates)


class MarkList:
    """Per-processor, per-array list of iteration-level marks for one window.

    Levels are appended in the processor's local execution order, which is
    also increasing iteration order (block scheduling), so scanning a mark
    list visits iterations in program order.
    """

    def __init__(self, array: str, proc: int, log_values: bool = False) -> None:
        self.array = array
        self.proc = proc
        self.log_values = log_values
        self._levels: list[IterationMarks] = []

    def open_level(self, iteration: int) -> IterationMarks:
        if self._levels and iteration <= self._levels[-1].iteration:
            raise ValueError(
                f"mark-list iterations must increase: {iteration} after "
                f"{self._levels[-1].iteration}"
            )
        marks = IterationMarks(iteration, log_values=self.log_values)
        self._levels.append(marks)
        return marks

    @property
    def levels(self) -> list[IterationMarks]:
        return list(self._levels)

    def level(self, k: int) -> IterationMarks:
        return self._levels[k]

    def __len__(self) -> int:
        return len(self._levels)

    def distinct_refs(self) -> int:
        return sum(level.distinct_refs() for level in self._levels)

    def reset(self) -> None:
        self._levels.clear()
