"""The inverted edge table: collected data-dependence edges.

Every cross-iteration dependence discovered during sliding-window DDG
extraction is logged here as a ``(source iteration, sink iteration)`` pair
with its kind.  "Inverted" reflects the discovery direction: edges are found
at the *sink* (the later access) by looking up the last earlier reference,
then recorded source-first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx


class EdgeKind(enum.Enum):
    """Classic dependence taxonomy."""

    FLOW = "flow"      # write -> later read  (true dependence)
    ANTI = "anti"      # read  -> later write
    OUTPUT = "output"  # write -> later write

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class DependenceEdge:
    """A dependence from iteration ``src`` to iteration ``dst`` (src < dst)."""

    src: int
    dst: int
    kind: EdgeKind
    array: str
    index: int

    def __post_init__(self) -> None:
        if self.src >= self.dst:
            raise ValueError(
                "dependence edges point forward in iteration order; got "
                f"{self.src} -> {self.dst}"
            )

    @property
    def distance(self) -> int:
        return self.dst - self.src


class InvertedEdgeTable:
    """Deduplicating accumulator of :class:`DependenceEdge` records."""

    def __init__(self) -> None:
        self._edges: set[DependenceEdge] = set()

    def log(self, edge: DependenceEdge) -> None:
        self._edges.add(edge)

    def log_many(self, edges: Iterable[DependenceEdge]) -> None:
        self._edges.update(edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[DependenceEdge]:
        return iter(sorted(self._edges, key=lambda e: (e.src, e.dst, e.kind.value)))

    def edges(self, kind: EdgeKind | None = None) -> list[DependenceEdge]:
        out = list(self)
        if kind is not None:
            out = [e for e in out if e.kind is kind]
        return out

    def iteration_pairs(self, kinds: Iterable[EdgeKind] | None = None) -> set[tuple[int, int]]:
        """Distinct ``(src, dst)`` pairs, optionally filtered by kind."""
        wanted = set(kinds) if kinds is not None else set(EdgeKind)
        return {(e.src, e.dst) for e in self._edges if e.kind in wanted}

    def to_graph(self, n_iterations: int | None = None) -> nx.DiGraph:
        """Build the iteration DDG as a :class:`networkx.DiGraph`.

        Nodes are iteration numbers; parallel edges between the same pair
        collapse, keeping the set of kinds as an attribute (the scheduler
        only needs the precedence relation).
        """
        graph = nx.DiGraph()
        if n_iterations is not None:
            graph.add_nodes_from(range(n_iterations))
        for edge in self._edges:  # hot-path: offline DDG export, per-edge
            if graph.has_edge(edge.src, edge.dst):
                graph[edge.src][edge.dst]["kinds"].add(edge.kind)
            else:
                graph.add_edge(edge.src, edge.dst, kinds={edge.kind})
        return graph
