"""Hash-based sparse shadow arrays.

The SPICE loops test a huge, sparsely touched workspace (everything is
EQUIVALENCEd into one ``VALUE`` array); allocating dense shadow planes per
processor for it would waste memory and make shadow re-initialization
O(total size) instead of O(touched).  The sparse shadow stores only marked
elements, the representation the paper's sparse LRPD variant uses.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernels
from repro.shadow.base import ShadowArray


class SparseShadow(ShadowArray):
    """Set-backed shadow for sparsely accessed tested arrays."""

    __slots__ = ("_write", "_exposed", "_any_read", "_update")

    def __init__(self, n_elements: int) -> None:
        super().__init__(n_elements)
        self._write: set[int] = set()
        self._exposed: set[int] = set()
        self._any_read: set[int] = set()
        self._update: set[int] = set()

    def _check(self, index: int) -> int:
        if not 0 <= index < self.n_elements:
            raise IndexError(
                f"element {index} out of range [0, {self.n_elements})"
            )
        return index

    # -- marking ----------------------------------------------------------------

    def mark_read(self, index: int) -> None:
        index = self._check(index)
        self._any_read.add(index)
        if index not in self._write:
            self._exposed.add(index)

    def mark_write(self, index: int) -> None:
        self._write.add(self._check(index))

    def mark_update(self, index: int) -> None:
        self._update.add(self._check(index))

    def mark_read_many(self, indices) -> None:
        get_kernels().mark_reads_set(
            self._write, self._exposed, self._any_read, self.n_elements, indices
        )

    def mark_write_many(self, indices) -> None:
        get_kernels().mark_writes_set(self._write, self.n_elements, indices)

    def mark_update_many(self, indices) -> None:
        get_kernels().mark_writes_set(self._update, self.n_elements, indices)

    # -- queries --------------------------------------------------------------

    def write_set(self) -> set[int]:
        return set(self._write)

    def exposed_read_set(self) -> set[int]:
        return set(self._exposed)

    def any_read_set(self) -> set[int]:
        return set(self._any_read)

    def update_set(self) -> set[int]:
        return set(self._update)

    def distinct_refs(self) -> int:
        return len(self._write | self._any_read | self._update)

    def reset(self) -> None:
        self._write.clear()
        self._exposed.clear()
        self._any_read.clear()
        self._update.clear()

    def has_updates(self) -> bool:
        return bool(self._update)

    def is_clear(self) -> bool:
        return not (self._write or self._any_read or self._exposed or self._update)

    def export_marks(self) -> tuple[np.ndarray, ...]:
        # Four sorted int64 index arrays rather than sets of Python ints:
        # one contiguous buffer per plane pickles in O(1) objects, which is
        # what keeps sparse shadow shipping off the fork/shm hot path.
        return tuple(
            np.fromiter(sorted(plane), dtype=np.int64, count=len(plane))
            for plane in (self._write, self._exposed, self._any_read, self._update)
        )

    def absorb_marks(self, payload: tuple[np.ndarray, ...]) -> None:
        write, exposed, any_read, update = payload
        self._write.update(write.tolist())
        self._exposed.update(exposed.tolist())
        self._any_read.update(any_read.tolist())
        self._update.update(update.tolist())
