"""Common interface of the per-processor shadow representations."""

from __future__ import annotations

import numpy as np


class ShadowArray:
    """Marking bits for one (processor, tested array) pair during one stage.

    Contract (paper, Section 2):

    * ``mark_write`` sets the Write bit.
    * ``mark_read`` sets the any-Read bit, and the *exposed*-Read bit only
      if no local write to the element precedes it; on a processor where the
      write occurs first, subsequent reads do not set the exposed bit.
    * ``mark_update`` sets the reduction bit (``ctx.update`` accesses).
    * Re-marking an element with the same access type is idempotent.

    ``distinct_refs`` is the number of elements carrying any mark -- the
    quantity the analysis-phase cost is proportional to.
    """

    __slots__ = ("n_elements",)

    def __init__(self, n_elements: int) -> None:
        if n_elements < 0:
            raise ValueError("shadow size must be non-negative")
        self.n_elements = n_elements

    # -- marking ----------------------------------------------------------------

    def mark_read(self, index: int) -> None:
        raise NotImplementedError

    def mark_write(self, index: int) -> None:
        raise NotImplementedError

    def mark_update(self, index: int) -> None:
        raise NotImplementedError

    # Bulk marking: one call marks a whole index array with the same
    # semantics as the scalar loop (in particular, a bulk read sees all
    # writes already marked, none of its own batch's -- exactly what a
    # single vectorized read operation does).

    def mark_read_many(self, indices: np.ndarray) -> None:
        # hot-path: generic fallback for custom shadows; the shipped dense
        # and sparse shadows override this with a kernel batch call.
        for index in indices.tolist():
            self.mark_read(index)

    def mark_write_many(self, indices: np.ndarray) -> None:
        # hot-path: generic fallback (see mark_read_many)
        for index in indices.tolist():
            self.mark_write(index)

    def mark_update_many(self, indices: np.ndarray) -> None:
        # hot-path: generic fallback (see mark_read_many)
        for index in indices.tolist():
            self.mark_update(index)

    # -- analysis-phase queries ---------------------------------------------------

    def write_set(self) -> set[int]:
        """Elements with the Write bit set."""
        raise NotImplementedError

    def exposed_read_set(self) -> set[int]:
        """Elements whose first local access was a read (copy-in reads)."""
        raise NotImplementedError

    def any_read_set(self) -> set[int]:
        """Elements read at least once, regardless of ordering."""
        raise NotImplementedError

    def update_set(self) -> set[int]:
        """Elements touched by reduction updates."""
        raise NotImplementedError

    def has_updates(self) -> bool:
        """Whether any reduction mark exists (cheap early-out for the
        analysis phase's mixed-reduction scan)."""
        return bool(self.update_set())

    def update_indices(self) -> np.ndarray:
        """Reduction-marked elements as a sorted index array."""
        return np.fromiter(sorted(self.update_set()), dtype=np.int64)

    def ordinary_indices(self) -> np.ndarray:
        """Write- or read-marked elements as a sorted index array."""
        return np.fromiter(
            sorted(self.write_set() | self.any_read_set()), dtype=np.int64
        )

    def distinct_refs(self) -> int:
        """Number of distinct elements carrying any mark."""
        raise NotImplementedError

    def reset(self) -> None:
        """Re-initialize all marks (between recursive stages)."""
        raise NotImplementedError

    def is_clear(self) -> bool:
        """True when no element carries a mark (fresh or reset shadow)."""
        raise NotImplementedError

    # -- cross-process shipping ---------------------------------------------------

    def export_marks(self) -> object:
        """Representation-specific payload of all mark planes, shipped
        between processes by the fork execution backend.  Must round-trip
        bit-exactly through :meth:`absorb_marks`."""
        raise NotImplementedError

    def absorb_marks(self, payload: object) -> None:
        """OR a payload from :meth:`export_marks` into this shadow (the
        receiving shadow is assumed freshly reset)."""
        raise NotImplementedError
