"""EXPERIMENTS.md generation: run every registered experiment and render
the paper-vs-measured record."""

from __future__ import annotations

import time

from repro.bench.harness import EXPERIMENTS, run_experiment

HEADER = """# EXPERIMENTS -- paper vs. measured

Every figure of *The R-LRPD Test: Speculative Parallelization of Partially
Parallel Loops* (Dang, Yu & Rauchwerger, IPDPS 2002), regenerated on the
deterministic virtual-time machine (see DESIGN.md for the substitution
rationale).  Absolute numbers are virtual-time units, not HP V2200 seconds;
each section records the paper's qualitative expectation and the measured
series, so the *shape* comparison (who wins, by roughly what factor, where
crossovers fall) is auditable.

Regenerate with `python -m repro.bench` (add `--quick` for the scaled-down
decks used by the benchmark suite).
"""


def generate_report(quick: bool = False, ids: list[str] | None = None) -> str:
    sections = [HEADER]
    for exp_id in ids or sorted(EXPERIMENTS):
        t0 = time.perf_counter()
        result = run_experiment(exp_id, quick=quick)
        elapsed = time.perf_counter() - t0
        sections.append(result.render())
        sections.append(f"_regenerated in {elapsed:.1f}s_\n")
    return "\n".join(sections)
