"""Benchmark harness: one registered experiment per paper figure/table."""

from repro.bench.harness import (
    EXPERIMENTS,
    ExperimentResult,
    register,
    run_experiment,
    list_experiments,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "register",
    "run_experiment",
    "list_experiments",
]

# Importing these populates the registry.
import repro.bench.figures  # noqa: E402,F401
import repro.bench.extensions  # noqa: E402,F401
import repro.bench.hostperf  # noqa: E402,F401
