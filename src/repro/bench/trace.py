"""Human-readable traces of speculative runs.

Renders a :class:`~repro.core.results.RunResult` as the stage-by-stage
table the paper's worked examples walk through, plus per-category
execution-time breakdowns (the Fig. 4 rows).  Used by the examples and
handy when debugging a new workload's dependence behavior.
"""

from __future__ import annotations

from repro.core.results import ProgramResult, RunResult
from repro.machine.timeline import Category
from repro.util.tables import format_table


def render_stage_trace(result: RunResult) -> str:
    """One row per stage: schedule, outcome, commit progress, span.

    Runs examined by the certification front-end carry a leading
    ``certificate:`` line with the verdict and its evidence basis.
    """
    rows = []
    for s in result.stages:
        blocks = " ".join(
            f"p{b.proc}[{b.start},{b.stop})" for b in s.blocks if len(b)
        )
        rows.append(
            [
                s.index,
                blocks if len(blocks) < 48 else f"{len(s.blocks)} blocks",
                "fail" if s.failed else "ok",
                s.committed_iterations,
                s.remaining_after,
                s.n_arcs,
                round(s.span, 2),
            ]
        )
    table = format_table(
        ["stage", "schedule", "test", "committed", "remaining", "arcs", "span"],
        rows,
        title=(
            f"{result.loop_name} under {result.strategy} on p={result.n_procs}: "
            f"{result.n_stages} stages, {result.n_restarts} restarts, "
            f"speedup {result.speedup:.2f}x, kernels {result.kernels}"
            + ("" if result.backend == "serial" else f", backend {result.backend}")
            + ("" if result.thread_mode is None else f" ({result.thread_mode})")
        ),
    )
    if result.certificate is not None:
        table = f"certificate: {result.certificate.describe()}\n{table}"
    return table


def render_breakdown(result: RunResult) -> str:
    """Wall-clock contribution of every cost category, per stage."""
    categories = [c for c in Category if result.timeline.total_category(c) > 0]
    rows = []
    for s in result.stages:
        rows.append(
            [s.index]
            + [round(s.breakdown.get(c, 0.0), 2) for c in categories]
            + [round(s.span, 2)]
        )
    rows.append(
        ["total"]
        + [round(result.timeline.total_category(c), 2) for c in categories]
        + [round(result.total_time, 2)]
    )
    return format_table(
        ["stage", *(str(c) for c in categories), "span"],
        rows,
        title=f"{result.loop_name}: execution-time breakdown",
    )


def render_program(program: ProgramResult) -> str:
    """One row per instantiation plus the PR aggregate."""
    rows = [
        [
            k,
            run.strategy,
            run.n_stages,
            run.n_restarts,
            round(run.parallelism_ratio, 3),
            round(run.speedup, 2),
        ]
        for k, run in enumerate(program.runs)
    ]
    table = format_table(
        ["instantiation", "strategy", "stages", "restarts", "PR", "speedup"],
        rows,
        title=(
            f"{program.loop_name}: {program.n_instantiations} instantiations, "
            f"PR={program.parallelism_ratio:.3f}, "
            f"program speedup {program.speedup:.2f}x"
        ),
    )
    return table
