"""Regression comparison of two exported experiment runs.

`python -m repro.bench --json DIR` snapshots every experiment's raw data;
this module diffs two such snapshots and reports where the numbers moved
beyond a tolerance.  The intended workflow: export once at a known-good
revision, re-export after a change, and let the diff say whether any
figure's *shape* drifted (a silent behavioral regression the pass/fail
benchmarks might tolerate).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Drift:
    """One numeric divergence between the two snapshots."""

    experiment: str
    path: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        scale = max(abs(self.before), abs(self.after), 1e-12)
        return abs(self.after - self.before) / scale


@dataclass
class ComparisonReport:
    """All drifts plus structural differences."""

    tolerance: float
    drifts: list[Drift] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    structure_changes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.drifts or self.missing or self.structure_changes)

    def render(self) -> str:
        lines = []
        if self.clean:
            lines.append(f"no drift beyond {self.tolerance:.0%}")
        for name in self.missing:
            lines.append(f"MISSING experiment: {name}")
        for name in self.added:
            lines.append(f"new experiment: {name}")
        for change in self.structure_changes:
            lines.append(f"STRUCTURE: {change}")
        for d in sorted(self.drifts, key=lambda d: -d.relative):
            lines.append(
                f"DRIFT {d.experiment}:{d.path}  "
                f"{d.before:g} -> {d.after:g}  ({d.relative:.1%})"
            )
        return "\n".join(lines)


def _walk(value, path: str):
    """Yield ``(path, leaf)`` pairs for every scalar in a nested structure."""
    if isinstance(value, dict):
        for key in sorted(value):
            yield from _walk(value[key], f"{path}.{key}" if path else str(key))
    elif isinstance(value, list):
        for k, item in enumerate(value):
            yield from _walk(item, f"{path}[{k}]")
    else:
        yield path, value


def compare_data(
    experiment: str,
    before,
    after,
    tolerance: float,
    report: ComparisonReport,
) -> None:
    """Diff two experiments' ``data`` dicts into the report."""
    before_leaves = dict(_walk(before, ""))
    after_leaves = dict(_walk(after, ""))
    for path in sorted(set(before_leaves) | set(after_leaves)):
        if path not in before_leaves or path not in after_leaves:
            report.structure_changes.append(f"{experiment}:{path}")
            continue
        b, a = before_leaves[path], after_leaves[path]
        if isinstance(b, (int, float)) and isinstance(a, (int, float)) and not (
            isinstance(b, bool) or isinstance(a, bool)
        ):
            drift = Drift(experiment, path, float(b), float(a))
            if drift.relative > tolerance:
                report.drifts.append(drift)
        elif b != a:
            report.structure_changes.append(
                f"{experiment}:{path} value kind changed ({b!r} -> {a!r})"
            )


def compare_exports(
    before_dir: str | pathlib.Path,
    after_dir: str | pathlib.Path,
    tolerance: float = 0.10,
) -> ComparisonReport:
    """Diff two snapshot directories written by ``export_experiments``."""
    before_dir = pathlib.Path(before_dir)
    after_dir = pathlib.Path(after_dir)
    report = ComparisonReport(tolerance=tolerance)

    def load(directory: pathlib.Path) -> dict[str, dict]:
        index = directory / "index.json"
        if not index.exists():
            raise FileNotFoundError(f"{directory} has no index.json snapshot")
        manifest = json.loads(index.read_text())
        return {
            name: json.loads((directory / entry["file"]).read_text())
            for name, entry in manifest.items()
        }

    before = load(before_dir)
    after = load(after_dir)
    report.missing = sorted(set(before) - set(after))
    report.added = sorted(set(after) - set(before))
    for name in sorted(set(before) & set(after)):
        compare_data(name, before[name]["data"], after[name]["data"],
                     tolerance, report)
    return report
