"""CLI: regenerate EXPERIMENTS.md (or print selected experiments).

Usage::

    python -m repro.bench                 # full-scale, writes EXPERIMENTS.md
    python -m repro.bench --quick         # scaled-down decks
    python -m repro.bench fig07 fig12a    # print selected experiments only
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.harness import list_experiments, run_experiment
from repro.bench.report import generate_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper-figure experiments.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--quick", action="store_true", help="scaled-down decks")
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="write the full report here (default: EXPERIMENTS.md when no ids given)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also export raw experiment data as JSON files into DIR",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        type=pathlib.Path,
        default=None,
        metavar=("BEFORE", "AFTER"),
        help="diff two --json snapshot directories and report drifts",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative drift tolerance for --compare (default 0.10)",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(list_experiments()))
        return 0

    if args.compare is not None:
        from repro.bench.compare import compare_exports

        report = compare_exports(*args.compare, tolerance=args.tolerance)
        print(report.render())
        return 0 if report.clean else 1

    if args.json is not None:
        from repro.bench.export import export_experiments

        written = export_experiments(
            args.json, ids=args.ids or None, quick=args.quick
        )
        print(f"wrote {len(written)} JSON files to {args.json}")
        if args.ids:
            return 0

    if args.ids:
        for exp_id in args.ids:
            print(run_experiment(exp_id, quick=args.quick).render())
        return 0

    report = generate_report(quick=args.quick)
    output = args.output or pathlib.Path("EXPERIMENTS.md")
    output.write_text(report)
    print(f"wrote {output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
