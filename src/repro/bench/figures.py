"""Experiment definitions: one per figure of the paper, plus ablations.

Each experiment regenerates the rows/series of its figure on the virtual
machine.  Absolute numbers differ from the HP V2200 testbed by design; the
``expectation`` strings record the qualitative shape being reproduced.
"""

from __future__ import annotations

import dataclasses

from repro.bench.harness import ExperimentResult, register
from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.lrpd import run_doall_lrpd
from repro.core.rlrpd import run_blocked
from repro.core.runner import parallelize, run_program
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.core.window import run_sliding_window
from repro.baselines import run_doacross, run_inspector_executor, run_sequential
from repro.config import TestCondition
from repro.machine.costs import CostModel
from repro.machine.timeline import Category
from repro.model.analytic import (
    k_d_geometric,
    k_s_geometric,
    t_static,
    total_time_geometric,
)
from repro.util.tables import format_series, format_table
from repro.workloads.fma3d import FMA3D_DECKS, make_quad_loop
from repro.core.listtraversal import run_list_traversal
from repro.workloads.spice import (
    SPICE_DECKS,
    make_bjt_list_loop,
    make_bjt_loop,
    make_dcdcmp15_loop,
    make_dcdcmp70_loop,
)
from repro.workloads.synthetic import (
    chain_loop,
    copyin_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    geometric_rd_targets,
    privatizable_loop,
    random_dependence_loop,
)
from repro.workloads.track_extend import EXTEND_DECKS, make_extend_loop
from repro.workloads.track_fptrak import FPTRAK_DECKS, make_fptrak_loop
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop
from repro.workloads.worked_examples import fig1_loop, fig2_loop


def _procs(quick: bool) -> list[int]:
    return [1, 2, 4, 8] if quick else [1, 2, 4, 8, 12, 16]


def _scale_nlfilt(deck, quick: bool):
    if not quick:
        return deck
    return dataclasses.replace(deck, n=max(256, deck.n // 4))


ALL_OPTS = RuntimeConfig.adaptive(on_demand_checkpoint=True, feedback_balancing=True)


# ---------------------------------------------------------------------------
# Worked examples (Figs. 1-2)
# ---------------------------------------------------------------------------


@register("fig01")
def fig01(quick: bool) -> ExperimentResult:
    """NRD/RD worked example: stage-by-stage commit trace of the Fig. 1 loop."""
    rows = []
    for label, cfg in [("NRD", RuntimeConfig.nrd()), ("RD", RuntimeConfig.rd())]:
        res = run_blocked(fig1_loop(), 4, cfg)
        for s in res.stages:
            rows.append(
                [
                    label,
                    s.index,
                    len(s.blocks),
                    s.committed_iterations,
                    s.remaining_after,
                    "yes" if s.failed else "no",
                ]
            )
    table = format_table(
        ["strategy", "stage", "blocks", "committed", "remaining", "failed"],
        rows,
        title="Fig. 1 worked example (8 iterations, 4 processors)",
    )
    return ExperimentResult(
        "fig01",
        "NRD/RD worked example",
        table,
        "Two stages: the first commits processors 1-2 (4 iterations), the "
        "second finishes the remaining 4; RD spreads the remainder over all "
        "processors.",
        data={"rows": rows},
    )


@register("fig02")
def fig02(quick: bool) -> ExperimentResult:
    """Sliding-window worked example: commit-point advance per window."""
    res = run_sliding_window(fig2_loop(), 4, RuntimeConfig.sw(window_size=4))
    rows = [
        [s.index, len(s.blocks), s.committed_iterations, s.remaining_after,
         "yes" if s.failed else "no"]
        for s in res.stages
    ]
    table = format_table(
        ["window", "blocks", "committed", "remaining", "failed"],
        rows,
        title="Fig. 2 sliding window (8 iterations, 4 processors, window 4)",
    )
    return ExperimentResult(
        "fig02",
        "Sliding-window worked example",
        table,
        "First window commits the blocks before the dependence sink and "
        "advances the commit point; two further windows finish the loop.",
        data={"stages": len(res.stages), "restarts": res.n_restarts},
    )


# ---------------------------------------------------------------------------
# Fig. 4: model validation (never / adaptive / always redistribution)
# ---------------------------------------------------------------------------


@register("fig04")
def fig04(quick: bool) -> ExperimentResult:
    """Per-stage breakdown and cumulative time of the three policies."""
    n, p, alpha = (1024, 8, 0.5) if quick else (4096, 8, 0.5)
    costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
    targets = geometric_chain_targets(n, alpha)
    policies = [
        ("never", RuntimeConfig.nrd()),
        ("adaptive", RuntimeConfig.adaptive()),
        ("always", RuntimeConfig.rd()),
    ]
    rows = []
    cumulative: dict[str, list[float]] = {}
    for label, cfg in policies:
        res = run_blocked(chain_loop(n, targets), p, cfg, costs=costs)
        cum = 0.0
        series = []
        for s in res.stages:
            loop_time = s.breakdown.get(Category.WORK, 0.0)
            redis = s.breakdown.get(Category.REDISTRIBUTION, 0.0)
            other = s.span - loop_time - redis
            cum += s.span
            series.append(cum)
            rows.append(
                [label, s.index, round(loop_time, 1), round(redis, 1),
                 round(other, 1), round(s.span, 1), round(cum, 1)]
            )
        cumulative[label] = series
    table = format_table(
        ["policy", "stage", "loop", "redistribution", "test+sync", "span", "cumulative"],
        rows,
        title=f"Fig. 4: synthetic alpha={alpha} loop, n={n}, p={p}",
    )
    model_static = t_static(n, costs.omega, costs.sync, p, k_s_geometric(alpha, p))
    model_total = total_time_geometric(n, costs.omega, costs.ell, costs.sync, p, alpha)
    footer = (
        f"model: T_static={model_static:.0f}  T(n)={model_total:.0f}  "
        f"k_d={k_d_geometric(n, costs.omega, costs.ell, costs.sync, p, alpha):.2f}  "
        f"k_s={k_s_geometric(alpha, p):.2f}"
    )
    return ExperimentResult(
        "fig04",
        "Redistribution policy comparison (model validation)",
        table + "\n" + footer,
        "NRD performs worst by a wide margin; 'adaptive' matches 'always' "
        "early and overtakes it once the remaining work drops below the "
        "Eq. (4) threshold.",
        data={"cumulative": cumulative, "model_total": model_total,
              "model_static": model_static},
    )


# ---------------------------------------------------------------------------
# Fig. 5: FMA3D Quad loop
# ---------------------------------------------------------------------------


@register("fig05")
def fig05(quick: bool) -> ExperimentResult:
    deck = FMA3D_DECKS["train" if quick else "ref"]
    procs = _procs(quick)
    speedups, stages = [], []
    for p in procs:
        res = parallelize(make_quad_loop(deck), p, RuntimeConfig.adaptive())
        speedups.append(round(res.speedup, 2))
        stages.append(res.n_stages)
    table = format_series(
        "p",
        procs,
        {"speedup": speedups, "stages": stages},
        title=f"Fig. 5: FMA3D Quad loop ({deck.n_elements} elements)",
    )
    return ExperimentResult(
        "fig05",
        "FMA3D Quad loop speedup",
        table,
        "The loop is fully parallel, so the test has a single stage and the "
        "speedup scales near-linearly minus the testing overhead.",
        data={"p": procs, "speedup": speedups},
    )


# ---------------------------------------------------------------------------
# Fig. 6: SPICE loops and whole-code speedup
# ---------------------------------------------------------------------------

#: Sequential-profile weights of the modeled SPICE phases.
SPICE_PROFILE = {"dcdcmp15": 0.25, "dcdcmp70": 0.10, "bjt": 0.45, "serial": 0.20}
SCHEDULE_REUSES = 10


@register("fig06")
def fig06(quick: bool) -> ExperimentResult:
    deck = SPICE_DECKS["adder.128"]
    if quick:
        deck = dataclasses.replace(deck, lu_rows=860, devices=512)
    procs = _procs(quick)
    lu_loop = make_dcdcmp15_loop(deck)
    window = RuntimeConfig.sw(window_size=128)
    s15, s70, sbjt, slist, total, cps = [], [], [], [], [], []
    for p in procs:
        ddg = extract_ddg(lu_loop, p, window)
        sched = wavefront_schedule(ddg.graph(), lu_loop.n_iterations)
        wf = execute_wavefront(lu_loop, sched, p)
        # The schedule is reused across instantiations; extraction amortizes.
        t_seq = wf.sequential_work
        t15 = (ddg.extraction.total_time + (SCHEDULE_REUSES - 1) * wf.total_time) / SCHEDULE_REUSES
        sp15 = t_seq / t15
        r70 = parallelize(make_dcdcmp70_loop(deck), p)
        rbjt = parallelize(make_bjt_loop(deck), p)
        rlist = run_list_traversal(make_bjt_list_loop(deck), p)
        s15.append(round(sp15, 2))
        s70.append(round(r70.speedup, 2))
        sbjt.append(round(rbjt.speedup, 2))
        slist.append(round(rlist.speedup, 2))
        cps.append(sched.critical_path)
        w = SPICE_PROFILE
        whole = 1.0 / (
            w["serial"]
            + w["dcdcmp15"] / sp15
            + w["dcdcmp70"] / r70.speedup
            + w["bjt"] / rlist.speedup
        )
        total.append(round(whole, 2))
    table = format_series(
        "p",
        procs,
        {
            "DCDCMP-15 (wavefront)": s15,
            "DCDCMP-70 (exit)": s70,
            "BJT (range)": sbjt,
            "BJT (linked list)": slist,
            "whole code": total,
            "critical path": cps,
        },
        title=(
            f"Fig. 6: SPICE, deck {deck.name} "
            f"(n={lu_loop.n_iterations}, schedule reused {SCHEDULE_REUSES}x)"
        ),
    )
    return ExperimentResult(
        "fig06",
        "SPICE loop and whole-code speedups",
        table,
        "DCDCMP-15 speedup is bounded by n/critical-path and amortized "
        "extraction; loop 70 and BJT scale like doalls; the whole-code "
        "speedup saturates at the serial fraction (Amdahl).",
        data={"p": procs, "s15": s15, "s70": s70, "sbjt": sbjt, "whole": total},
    )


# ---------------------------------------------------------------------------
# Fig. 7: NLFILT PR and best speedup per input set
# ---------------------------------------------------------------------------


@register("fig07")
def fig07(quick: bool) -> ExperimentResult:
    deck_names = ["fully-par", "sparse-deps", "medium-deps", "dense-deps"]
    procs = [p for p in _procs(quick) if p > 1]
    instances = 2 if quick else 4
    pr_series: dict[str, list[float]] = {}
    sp_series: dict[str, list[float]] = {}
    for name in deck_names:
        deck = _scale_nlfilt(NLFILT_DECKS[name], quick)
        prs, sps = [], []
        for p in procs:
            prog = run_program(
                (make_nlfilt_loop(deck, instance=k) for k in range(instances)),
                p,
                ALL_OPTS,
            )
            prs.append(round(prog.parallelism_ratio, 3))
            sps.append(round(prog.speedup, 2))
        pr_series[name] = prs
        sp_series[name] = sps
    t1 = format_series("p", procs, pr_series, title="Fig. 7(a): NLFILT parallelism ratio")
    t2 = format_series("p", procs, sp_series, title="Fig. 7(b): NLFILT speedup (all optimizations)")
    return ExperimentResult(
        "fig07",
        "NLFILT 300: parallelism ratio and speedup per input set",
        t1 + "\n\n" + t2,
        "PR decreases with processor count (only inter-processor dependences "
        "restart the test) and with dependence density; speedup tracks PR.",
        data={"p": procs, "PR": pr_series, "speedup": sp_series},
    )


# ---------------------------------------------------------------------------
# Figs. 8-9: NLFILT sliding window vs (N)RD, per window size
# ---------------------------------------------------------------------------


def _sw_vs_nrd(exp_id: str, deck_name: str, quick: bool) -> ExperimentResult:
    deck = _scale_nlfilt(NLFILT_DECKS[deck_name], quick)
    p = 8
    loop_factory = lambda: make_nlfilt_loop(deck)  # noqa: E731
    window_sizes = [p * b for b in ([1, 2, 4, 8] if quick else [1, 2, 4, 8, 16, 32])]
    rows = []
    for w in window_sizes:
        res = run_sliding_window(loop_factory(), p, RuntimeConfig.sw(window_size=w))
        rows.append(
            [f"SW(w={w})", res.n_stages, res.n_restarts,
             round(res.parallelism_ratio, 3), round(res.speedup, 2)]
        )
    for label, cfg in [("NRD", RuntimeConfig.nrd()), ("RD", RuntimeConfig.rd())]:
        res = run_blocked(loop_factory(), p, cfg)
        rows.append(
            [label, res.n_stages, res.n_restarts,
             round(res.parallelism_ratio, 3), round(res.speedup, 2)]
        )
    table = format_table(
        ["strategy", "stages", "restarts", "PR", "speedup"],
        rows,
        title=f"NLFILT deck {deck.name} (n={deck.n}, p={p})",
    )
    return ExperimentResult(
        exp_id,
        f"NLFILT: sliding window vs (N)RD, input {deck_name}",
        table,
        "Which strategy wins depends on the dependence structure: long-"
        "distance dependences favor SW (sources commit before sinks are "
        "scheduled); fully parallel loops favor (N)RD (one barrier instead "
        "of one per strip).  Larger windows trade fewer synchronizations "
        "for more uncovered dependences.",
        data={"rows": rows},
    )


@register("fig08")
def fig08(quick: bool) -> ExperimentResult:
    return _sw_vs_nrd("fig08", "16-400", quick)


@register("fig09")
def fig09(quick: bool) -> ExperimentResult:
    return _sw_vs_nrd("fig09", "15-250", quick)


# ---------------------------------------------------------------------------
# Figs. 10-11: EXTEND and FPTRAK
# ---------------------------------------------------------------------------


def _induction_fig(exp_id: str, title: str, decks, make_loop, quick: bool) -> ExperimentResult:
    procs = [p for p in _procs(quick) if p > 1]
    instances = 2 if quick else 4
    pr_series: dict[str, list[float]] = {}
    sp_series: dict[str, list[float]] = {}
    for name, deck in decks.items():
        if quick:
            deck = dataclasses.replace(deck, n=max(256, deck.n // 4))
        prs, sps = [], []
        for p in procs:
            prog = run_program(
                (make_loop(deck, instance=k) for k in range(instances)),
                p,
                RuntimeConfig.rd(),
            )
            prs.append(round(prog.parallelism_ratio, 3))
            sps.append(round(prog.speedup, 2))
        pr_series[name] = prs
        sp_series[name] = sps
    t1 = format_series("p", procs, pr_series, title=f"{title} (a): parallelism ratio")
    t2 = format_series("p", procs, sp_series, title=f"{title} (b): speedup")
    return ExperimentResult(
        exp_id,
        title,
        t1 + "\n\n" + t2,
        "The two-phase induction technique caps the clean-run speedup near "
        "p/2 (~60% of hand-parallelization, which needs one doall); "
        "dependence-carrying inputs lower PR and speedup further.",
        data={"p": procs, "PR": pr_series, "speedup": sp_series},
    )


@register("fig10")
def fig10(quick: bool) -> ExperimentResult:
    return _induction_fig(
        "fig10", "EXTEND 400: PR and speedup", EXTEND_DECKS, make_extend_loop, quick
    )


@register("fig11")
def fig11(quick: bool) -> ExperimentResult:
    return _induction_fig(
        "fig11", "FPTRAK 300: PR and speedup", FPTRAK_DECKS, make_fptrak_loop, quick
    )


# ---------------------------------------------------------------------------
# Fig. 12: optimization comparison and TRACK program speedup
# ---------------------------------------------------------------------------


@register("fig12a")
def fig12a(quick: bool) -> ExperimentResult:
    deck = _scale_nlfilt(NLFILT_DECKS["opt-study"], quick)
    p = 8 if quick else 16
    configs = [
        ("all optimizations", ALL_OPTS),
        ("no on-demand ckpt", ALL_OPTS.with_options(on_demand_checkpoint=False)),
        ("no feedback LB", ALL_OPTS.with_options(feedback_balancing=False)),
        ("NRD (no redistribution)", RuntimeConfig.nrd(feedback_balancing=True)),
        ("none (NRD, full ckpt)", RuntimeConfig.nrd(on_demand_checkpoint=False)),
    ]
    instances = 2 if quick else 4
    rows = []
    for label, cfg in configs:
        prog = run_program(
            (make_nlfilt_loop(deck, instance=k) for k in range(instances)),
            p,
            cfg,
        )
        ckpt = sum(r.timeline.total_category(Category.CHECKPOINT) for r in prog.runs)
        rows.append(
            [label, round(prog.speedup, 2), round(prog.parallelism_ratio, 3),
             round(ckpt, 1)]
        )
    table = format_table(
        ["configuration", "speedup", "PR", "checkpoint time"],
        rows,
        title=f"Fig. 12(a): NLFILT optimization comparison (deck {deck.name}, p={p})",
    )
    return ExperimentResult(
        "fig12a",
        "NLFILT: effectiveness of the optimizations",
        table,
        "On-demand checkpointing matters most (large, conditionally "
        "modified state); feedback load balancing and redistribution "
        "contribute smaller improvements at this processor count.",
        data={"rows": rows},
    )


#: TRACK sequential-profile weights; the three loops are ~95% of runtime.
TRACK_PROFILE = {"nlfilt": 0.45, "extend": 0.30, "fptrak": 0.20, "serial": 0.05}


@register("fig12b")
def fig12b(quick: bool) -> ExperimentResult:
    procs = [p for p in _procs(quick) if p > 1]
    nl_deck = _scale_nlfilt(NLFILT_DECKS["sparse-deps"], quick)
    ex_deck = EXTEND_DECKS["light-deps"]
    fp_deck = FPTRAK_DECKS["light-deps"]
    if quick:
        ex_deck = dataclasses.replace(ex_deck, n=max(256, ex_deck.n // 4))
        fp_deck = dataclasses.replace(fp_deck, n=max(256, fp_deck.n // 4))
    speedups = []
    for p in procs:
        s_nl = parallelize(make_nlfilt_loop(nl_deck), p, ALL_OPTS).speedup
        s_ex = parallelize(make_extend_loop(ex_deck), p).speedup
        s_fp = parallelize(make_fptrak_loop(fp_deck), p).speedup
        w = TRACK_PROFILE
        whole = 1.0 / (
            w["serial"] + w["nlfilt"] / s_nl + w["extend"] / s_ex + w["fptrak"] / s_fp
        )
        speedups.append(round(whole, 2))
    table = format_series(
        "p",
        procs,
        {"TRACK speedup": speedups},
        title="Fig. 12(b): TRACK whole-program speedup (loops = 95% of runtime)",
    )
    return ExperimentResult(
        "fig12b",
        "TRACK program speedup",
        table,
        "Whole-program speedup follows the three parallelized loops, "
        "discounted by the 5% serial remainder and the induction loops' "
        "two-doall factor.",
        data={"p": procs, "speedup": speedups},
    )


# ---------------------------------------------------------------------------
# Section 4 cost model sweep
# ---------------------------------------------------------------------------


@register("sec4")
def sec4(quick: bool) -> ExperimentResult:
    n = 512 if quick else 4096
    p = 8
    costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
    rows = []
    for alpha in (0.3, 0.5, 0.7):
        targets = geometric_rd_targets(n, alpha, p)
        res = run_blocked(
            chain_loop(n, targets), p, RuntimeConfig.adaptive(), costs=costs
        )
        model = total_time_geometric(n, costs.omega, costs.ell, costs.sync, p, alpha)
        rows.append(
            [
                alpha,
                round(k_s_geometric(alpha, p), 2),
                round(k_d_geometric(n, costs.omega, costs.ell, costs.sync, p, alpha), 2),
                res.n_stages,
                round(model, 0),
                round(res.total_time, 0),
                round(res.total_time / model, 2),
            ]
        )
    table = format_table(
        ["alpha", "k_s (model)", "k_d (model)", "stages (sim)", "T model",
         "T sim", "sim/model"],
        rows,
        title=f"Section 4: analytic model vs simulation (n={n}, p={p}, RD)",
    )
    return ExperimentResult(
        "sec4",
        "Cost model validation sweep",
        table,
        "Simulated stage counts and total times track the closed-form model "
        "within the marking/analysis overheads the model omits (ratio near, "
        "and slightly above, 1).",
        data={"rows": rows},
    )


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


@register("ablation_copyin")
def ablation_copyin(quick: bool) -> ExperimentResult:
    n = 256 if quick else 2048
    p = 8
    loops = [
        ("fully parallel", fully_parallel_loop(n)),
        ("privatizable (W before R)", privatizable_loop(n)),
        ("read-first coefficient", copyin_loop(n)),
    ]
    rows = []
    for label, loop in loops:
        for cond in (TestCondition.PRIVATIZATION, TestCondition.COPY_IN):
            res = run_doall_lrpd(loop, p, RuntimeConfig.nrd(condition=cond))
            rows.append(
                [label, cond.value, "pass" if res.n_restarts == 0 else "FAIL",
                 round(res.speedup, 2)]
            )
    table = format_table(
        ["loop", "condition", "doall test", "speedup"],
        rows,
        title=f"Copy-in vs privatization condition (n={n}, p={p})",
    )
    return ExperimentResult(
        "ablation_copyin",
        "Test-condition ablation (Section 2)",
        table,
        "The copy-in condition qualifies read-first loops the privatization "
        "condition rejects; a failed doall pays speculation plus a "
        "sequential re-execution (speedup < 1).",
        data={"rows": rows},
    )


@register("ablation_baselines")
def ablation_baselines(quick: bool) -> ExperimentResult:
    n = 512 if quick else 4096
    p = 8
    loops = [
        ("fully parallel", fully_parallel_loop(n)),
        ("short random deps", random_dependence_loop(n, density=0.05, max_distance=4, seed=7)),
        ("partially parallel chain", chain_loop(n, geometric_chain_targets(n, 0.5))),
    ]
    rows = []
    for label, loop in loops:
        entries = [
            ("sequential", lambda lp: run_sequential(lp)),
            ("LRPD doall", lambda lp: run_doall_lrpd(lp, p)),
            ("R-LRPD adaptive", lambda lp: run_blocked(lp, p, RuntimeConfig.adaptive())),
            ("R-LRPD SW",
             lambda lp: run_sliding_window(lp, p, RuntimeConfig.sw(window_size=4 * p))),
            ("inspector/executor", lambda lp: run_inspector_executor(lp, p)),
            ("DOACROSS", lambda lp: run_doacross(lp, p)),
        ]
        for strat, run in entries:
            res = run(loop)
            rows.append([label, strat, round(res.speedup, 2), res.n_restarts])
    table = format_table(
        ["loop", "technique", "speedup", "restarts"],
        rows,
        title=f"Baseline comparison (n={n}, p={p})",
    )
    return ExperimentResult(
        "ablation_baselines",
        "R-LRPD vs prior techniques",
        table,
        "The doall LRPD slows down on any dependence (speculation + serial "
        "re-run); R-LRPD bounds the loss and extracts partial parallelism; "
        "inspector-based methods match or beat it only where an inspector "
        "exists.",
        data={"rows": rows},
    )
