"""Ablation experiments for the extension features.

These go beyond the paper's figures, quantifying the design choices
DESIGN.md calls out: iteration- vs processor-granularity commit, wavefront
vs list scheduling from the same DDG, topology sensitivity of the
redistribution strategies, and history-based strategy prediction.
"""

from __future__ import annotations

import dataclasses

from repro.bench.harness import ExperimentResult, register, run_registered
from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.listsched import execute_list_schedule, list_schedule
from repro.core.rlrpd import run_blocked
from repro.core.runner import run_program, run_program_predictive
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.machine.timeline import Category
from repro.machine.topology import Topology
from repro.sched.predictor import StrategyPredictor
from repro.util.tables import format_table
from repro.workloads.spice import SPICE_DECKS, make_dcdcmp15_loop
from repro.workloads.synthetic import (
    chain_loop,
    geometric_chain_targets,
    random_dependence_loop,
)
from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop


@register("ablation_iterwise")
def ablation_iterwise(quick: bool) -> ExperimentResult:
    """Iteration-wise vs processor-wise commit granularity."""
    n = 512 if quick else 4096
    p = 8
    loops = [
        ("sparse deps", lambda: random_dependence_loop(n, 0.02, 8, seed=17)),
        ("medium deps", lambda: random_dependence_loop(n, 0.08, 8, seed=17)),
        ("dense deps", lambda: random_dependence_loop(n, 0.25, 8, seed=17)),
    ]
    rows = []
    for label, factory in loops:
        coarse = run_registered("nrd", factory(), p)
        fine = run_registered("iterwise", factory(), p, RuntimeConfig.nrd())
        rows.append(
            [
                label,
                round(coarse.speedup, 2),
                round(fine.speedup, 2),
                round(coarse.wasted_work, 1),
                round(fine.wasted_work, 1),
                round(coarse.timeline.charged_category(Category.MARK), 1),
                round(fine.timeline.charged_category(Category.MARK), 1),
            ]
        )
    table = format_table(
        ["loop", "proc-wise spdup", "iter-wise spdup",
         "proc-wise waste", "iter-wise waste",
         "proc-wise mark", "iter-wise mark"],
        rows,
        title=f"Commit granularity (n={n}, p={p}, NRD)",
    )
    return ExperimentResult(
        "ablation_iterwise",
        "Iteration-wise vs processor-wise R-LRPD",
        table,
        "Iteration granularity re-executes fewer iterations (less wasted "
        "work) but pays trace-proportional marking/analysis -- the paper's "
        "reason for preferring the processor-wise test.",
        data={"rows": rows},
    )


@register("ablation_ddg_scheduling")
def ablation_ddg_scheduling(quick: bool) -> ExperimentResult:
    """Wavefront vs critical-path list scheduling from the same DDG."""
    deck = SPICE_DECKS["adder.128"]
    deck = dataclasses.replace(deck, lu_rows=860 if quick else 2868)
    p = 8
    loop = make_dcdcmp15_loop(deck)
    ddg = extract_ddg(loop, p, RuntimeConfig.sw(window_size=16 * p))
    graph = ddg.graph()
    wf = execute_wavefront(loop, wavefront_schedule(graph, loop.n_iterations), p)
    ls = execute_list_schedule(loop, list_schedule(graph, loop, p))
    rows = [
        ["wavefront", round(wf.total_time, 1), round(wf.speedup, 2), wf.n_stages],
        ["list (critical path)", round(ls.total_time, 1), round(ls.speedup, 2), 1],
    ]
    table = format_table(
        ["scheduler", "T_par", "speedup", "barriers"],
        rows,
        title=f"DDG scheduling on {loop.name} (n={loop.n_iterations}, p={p})",
    )
    return ExperimentResult(
        "ablation_ddg_scheduling",
        "Wavefront vs list scheduling from the extracted DDG",
        table,
        "Both schedules are DDG-correct; list scheduling removes the "
        "per-level barrier and wins when level widths are ragged.",
        data={"wavefront": wf.speedup, "list": ls.speedup},
    )


@register("ablation_topology")
def ablation_topology(quick: bool) -> ExperimentResult:
    """Redistribution strategies under increasingly remote machines."""
    n = 512 if quick else 4096
    p = 8
    targets = geometric_chain_targets(n, 0.5)
    topologies = [
        ("flat (ccUMA)", Topology.flat(p)),
        ("NUMA 2 nodes", Topology.numa(p, 2, remote_factor=2.0)),
        ("ring", Topology.ring(p, remote_factor=2.0)),
    ]
    rows = []
    for label, topo in topologies:
        nrd = run_blocked(chain_loop(n, targets), p, RuntimeConfig.nrd(), topology=topo)
        rd = run_blocked(chain_loop(n, targets), p, RuntimeConfig.rd(), topology=topo)
        rows.append(
            [
                label,
                round(nrd.speedup, 2),
                round(rd.speedup, 2),
                round(sum(s.migration_distance for s in rd.stages), 0),
            ]
        )
    table = format_table(
        ["topology", "NRD speedup", "RD speedup", "RD migration distance"],
        rows,
        title=f"Topology sensitivity (n={n}, p={p}, alpha=0.5 chain)",
    )
    return ExperimentResult(
        "ablation_topology",
        "Redistribution under machine topologies",
        table,
        "NRD is topology-immune (nothing migrates); RD's advantage shrinks "
        "as remote distance grows -- the remote-miss cost the paper folds "
        "into ell.",
        data={"rows": rows},
    )


@register("track_sim")
def track_sim(quick: bool) -> ExperimentResult:
    """The TRACK program as a persistent simulation: three loops sharing
    one track file across time steps, PR/speedup over the program's life
    (the program-level complement of Fig. 12(b))."""
    from repro.workloads.track_sim import TrackSimConfig, TrackSimulation

    steps = 4 if quick else 10
    cfg = TrackSimConfig(
        max_tracks=2048 if quick else 8192,
        initial_tracks=64,
        detections_per_step=96,
        smooth_prob=0.06,
    )
    procs = [2, 4, 8] if quick else [2, 4, 8, 16]
    rows = []
    for p in procs:
        sim = TrackSimulation(cfg)
        program = sim.run(steps, p)
        rows.append(
            [
                p,
                sim.n_tracks,
                program.n_instantiations,
                program.n_restarts,
                round(program.parallelism_ratio, 3),
                round(program.speedup, 2),
            ]
        )
    table = format_table(
        ["p", "final tracks", "loop runs", "restarts", "PR", "speedup"],
        rows,
        title=f"Persistent TRACK simulation ({steps} time steps)",
    )
    return ExperimentResult(
        "track_sim",
        "TRACK as a persistent program",
        table,
        "Speedup grows with p while PR declines (more boundaries for the "
        "smoothing dependences to cross); every step's commits feed the "
        "next step's loops, so the aggregate also certifies cross-"
        "instantiation soundness.",
        data={"rows": rows},
    )


@register("spice_program")
def spice_program(quick: bool) -> ExperimentResult:
    """SPICE transient analysis: wavefront-schedule reuse amortization.

    The first Newton iteration pays DDG extraction; every later one reuses
    the schedule -- the per-iteration speedup curve climbs to the steady
    state Fig. 6 reports.
    """
    import dataclasses as _dc

    from repro.workloads.spice import SPICE_DECKS
    from repro.workloads.spice_sim import run_spice_program

    deck = SPICE_DECKS["adder.128"]
    if quick:
        deck = _dc.replace(deck, lu_rows=860, devices=256, workspace=1 << 14)
    iterations = 5 if quick else 10
    p = 8
    program = run_spice_program(deck, p, iterations)
    speedups = program.per_iteration_speedups()
    rows = [
        [k, "extract+execute" if k == 0 else "reuse", round(s, 2)]
        for k, s in enumerate(speedups)
    ]
    rows.append(["total", "", round(program.speedup, 2)])
    table = format_table(
        ["newton iteration", "LU schedule", "speedup"],
        rows,
        title=(
            f"SPICE program on deck {deck.name} (p={p}, "
            f"critical path {program.schedule.critical_path})"
        ),
    )
    return ExperimentResult(
        "spice_program",
        "Schedule-reuse amortization over Newton iterations",
        table,
        "Iteration 0 pays extraction and runs near-sequential; the reuse "
        "iterations jump to the wavefront steady state, pulling the "
        "program total toward it as iterations accumulate.",
        data={"speedups": speedups, "total": program.speedup},
    )


@register("crossover")
def crossover(quick: bool) -> ExperimentResult:
    """Where redistribution stops paying: sweep the work/overhead ratio.

    Section 4's opening rule -- 'if omega <= ell + s (per iteration), it
    does not pay to redistribute' -- swept over omega with fixed ell, s.
    """
    from repro.machine.costs import CostModel
    from repro.workloads.synthetic import geometric_chain_targets

    n, p, alpha = (512 if quick else 4096), 8, 0.5
    ell, s = 0.3, 20.0
    targets = geometric_chain_targets(n, alpha)
    rows = []
    crossover_at = None
    omegas = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0]
    for omega in omegas:
        costs = CostModel(omega=omega, ell=ell, sync=s)
        nrd = run_blocked(chain_loop(n, targets), p, RuntimeConfig.nrd(), costs=costs)
        rd = run_blocked(chain_loop(n, targets), p, RuntimeConfig.rd(), costs=costs)
        winner = "RD" if rd.total_time < nrd.total_time else "NRD"
        if winner == "RD" and crossover_at is None:
            crossover_at = omega
        rows.append(
            [omega, round(nrd.total_time, 0), round(rd.total_time, 0), winner]
        )
    table = format_table(
        ["omega", "T_NRD", "T_RD", "winner"],
        rows,
        title=f"NRD vs RD crossover (n={n}, p={p}, ell={ell}, s={s})",
    )
    return ExperimentResult(
        "crossover",
        "When redistribution pays",
        table,
        "Cheap iterations (omega small vs ell + per-iteration sync share) "
        "favor NRD; as omega grows past the overhead, RD takes over and "
        "stays ahead -- the Section 4 decision rule made visible.",
        data={"rows": rows, "crossover_at": crossover_at},
    )


@register("memory_overhead")
def memory_overhead(quick: bool) -> ExperimentResult:
    """Auxiliary-memory comparison: touched-proportional shadows vs
    trace-proportional structures (the 'requires less memory overhead'
    claim of Section 1)."""
    import dataclasses as _dc

    from repro.model.footprint import estimate_footprints
    from repro.workloads.spice import SPICE_DECKS, make_dcdcmp15_loop
    from repro.workloads.track_nlfilt import NLFILT_DECKS, make_nlfilt_loop

    p = 8
    nl_deck = NLFILT_DECKS["medium-deps"]
    sp_deck = SPICE_DECKS["adder.128"]
    if quick:
        nl_deck = _dc.replace(nl_deck, n=1200)
        sp_deck = _dc.replace(sp_deck, lu_rows=860)
    cases = [
        ("NLFILT (dense, small array)", make_nlfilt_loop(nl_deck)),
        ("DCDCMP-15 (sparse workspace)", make_dcdcmp15_loop(sp_deck)),
    ]
    rows = []
    sparse_ratios = {}
    for label, loop in cases:
        report = estimate_footprints(loop, p)
        rows.append(
            [
                label,
                report.trace_length,
                report.distinct_touched,
                round(report.procwise_bytes / 1024.0, 1),
                round(report.iterwise_bytes / 1024.0, 1),
                round(report.inspector_bytes / 1024.0, 1),
            ]
        )
        sparse_ratios[label] = report.inspector_bytes / max(
            1.0, report.procwise_bytes
        )
    table = format_table(
        ["loop", "trace len", "touched", "proc-wise KiB", "iter-wise KiB",
         "inspector KiB"],
        rows,
        title=f"Auxiliary memory per technique (p={p})",
    )
    return ExperimentResult(
        "memory_overhead",
        "Memory overhead: shadows vs reference traces",
        table,
        "The processor-wise shadows scale with touched elements (tiny for "
        "the sparse SPICE workspace); mark lists and inspector traces "
        "scale with the reference trace -- the overhead the R-LRPD test "
        "avoids.",
        data={"rows": rows, "inspector_over_procwise": sparse_ratios},
    )


@register("model_scaling")
def model_scaling(quick: bool) -> ExperimentResult:
    """Fit alpha at one machine size, predict speedups at others, compare
    against actually simulating those sizes (Section 4's 'recomputed
    during execution' estimation put to work)."""
    from repro.machine.costs import CostModel
    from repro.model.predict import predict_scaling
    from repro.workloads.synthetic import geometric_rd_targets

    n = 1024 if quick else 8192
    fit_p = 4
    targets_p = [2, 4, 8, 16]
    costs = CostModel(omega=1.0, ell=0.3, sync=20.0)
    alpha = 0.5
    observed = run_blocked(
        chain_loop(n, geometric_rd_targets(n, alpha, fit_p)),
        fit_p,
        RuntimeConfig.adaptive(),
        costs=costs,
    )
    prediction = predict_scaling(observed, costs, targets_p)
    rows = []
    for p in targets_p:
        actual = run_blocked(
            chain_loop(n, geometric_rd_targets(n, alpha, fit_p)),
            p,
            RuntimeConfig.adaptive(),
            costs=costs,
        )
        rows.append(
            [p, round(prediction.predictions[p], 2), round(actual.speedup, 2)]
        )
    table = format_table(
        ["p", "predicted speedup", "simulated speedup"],
        rows,
        title=(
            f"Scaling prediction from one p={fit_p} observation "
            f"(fit: {prediction.kind}, parameter={prediction.parameter:.2f})"
        ),
    )
    return ExperimentResult(
        "model_scaling",
        "Capacity planning from one observed run",
        table,
        "The alpha fitted at p=4 predicts the other machine sizes' "
        "speedups within the model's accuracy band (the model omits "
        "marking/analysis overheads, so it sits slightly above the "
        "simulation).",
        data={"rows": rows, "kind": prediction.kind,
              "parameter": prediction.parameter},
    )


@register("guarantee")
def guarantee(quick: bool) -> ExperimentResult:
    """The abstract's bound: 'a speculatively parallelized program will run
    at least as fast as its sequential version and with some additional
    testing overhead' -- swept over dependence density up to the fully
    sequential pointer-chase worst case."""
    from repro.workloads.patterns import pointer_chase_loop

    n = 512 if quick else 4096
    p = 8
    rows = []
    cases = [
        ("parallel (d=0)", lambda: random_dependence_loop(n, 0.0, 4, seed=31)),
        ("d=0.05", lambda: random_dependence_loop(n, 0.05, 4, seed=31)),
        ("d=0.2", lambda: random_dependence_loop(n, 0.2, 4, seed=31)),
        ("d=0.5", lambda: random_dependence_loop(n, 0.5, 4, seed=31)),
        ("pointer chase", lambda: pointer_chase_loop(n, seed=31)),
    ]
    worst_ratio = 0.0
    for label, factory in cases:
        res = run_blocked(factory(), p, RuntimeConfig.nrd())
        ratio = res.total_time / res.sequential_work
        worst_ratio = max(worst_ratio, ratio)
        rows.append(
            [label, round(res.speedup, 2), res.n_stages, round(ratio, 3)]
        )
    table = format_table(
        ["dependence density", "speedup", "stages", "T_par / T_seq"],
        rows,
        title=f"Worst-case guarantee sweep (n={n}, p={p}, NRD)",
    )
    return ExperimentResult(
        "guarantee",
        "The bounded-slowdown guarantee",
        table,
        "Even the fully sequential worst case pays only the run-time "
        "test's overhead (T_par/T_seq stays a small constant); speedup "
        "degrades gracefully with density instead of collapsing like the "
        "doall-or-nothing LRPD.",
        data={"rows": rows, "worst_ratio": worst_ratio},
    )


@register("ablation_predictor")
def ablation_predictor(quick: bool) -> ExperimentResult:
    """History-based strategy selection vs fixed strategies."""
    deck = NLFILT_DECKS["16-400"]
    if quick:
        deck = dataclasses.replace(deck, n=max(256, deck.n // 4))
    p = 8
    reps = 6 if quick else 10
    candidates = [
        RuntimeConfig.nrd(),
        RuntimeConfig.adaptive(),
        RuntimeConfig.sw(window_size=8 * p),
    ]
    rows = []
    for label, cfg in [("NRD fixed", candidates[0]),
                       ("adaptive fixed", candidates[1]),
                       ("SW fixed", candidates[2])]:
        prog = run_program(
            (make_nlfilt_loop(deck, instance=k) for k in range(reps)), p, cfg
        )
        rows.append([label, round(prog.speedup, 2), prog.n_restarts])
    predictor = StrategyPredictor(candidates)
    prog = run_program_predictive(
        [make_nlfilt_loop(deck, instance=k) for k in range(reps)], p, predictor
    )
    rows.append(["history-predicted", round(prog.speedup, 2), prog.n_restarts])
    table = format_table(
        ["strategy", "program speedup", "restarts"],
        rows,
        title=f"Strategy prediction on NLFILT {deck.name} ({reps} instantiations, p={p})",
    )
    return ExperimentResult(
        "ablation_predictor",
        "History-based strategy selection",
        table,
        "After one exploration round per candidate, the predictor tracks "
        "the best fixed strategy -- the paper's proposed mechanism for the "
        "SW vs (N)RD choice.",
        data={"rows": rows},
    )
