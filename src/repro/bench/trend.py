"""Cross-commit speedup trends from ``BENCH_host.json`` history.

``benchmarks/bench_host_perf.py --out`` appends one history entry per
run -- ``(commit, date, cpus, gil, method, per-workload/per-backend
speedups)``, deduplicated on ``(commit, cpus, gil)``.  This module reads
that history back:

* :func:`render_trend` (``repro bench-trend``) renders one table per
  comparable host group (same cpu count, GIL mode and timing method): a
  row per
  ``workload/backend`` pair, a column per commit, the relative change of
  the newest measurement, and a regression flag when it dropped more
  than ``threshold`` below the previous comparable entry.
* :func:`previous_comparable` / :func:`render_delta` back the
  delta-vs-previous line the benchmark script prints after each run.

Comparisons only ever happen within a group: a 1-cpu CI run is not a
regression relative to a 16-cpu workstation run, a free-threaded
build keeps its own trajectory next to the stock-GIL one, and entries
produced by a different timing discipline (the ``method`` field) never
gate each other -- the single-sample era's numbers are shown in their
own table but are not a baseline anything must beat.
"""

from __future__ import annotations

import json

from repro.util.tables import format_table

#: Relative drop of a workload/backend speedup (vs the previous
#: comparable entry) flagged as a regression.
DEFAULT_THRESHOLD = 0.10


def load_history(path: str) -> list[dict]:
    """The ``history`` list of a ``BENCH_host.json`` file (may be [])."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    history = data.get("history", [])
    return [entry for entry in history if isinstance(entry, dict)]


def _group_key(entry: dict) -> tuple:
    # ``method`` names the timing discipline that produced the entry
    # (e.g. "warm-best5"); entries recorded before it existed carry
    # ``None``.  A method change redefines what the numbers mean -- the
    # single-sample era recorded speedups that wobble past any sane
    # regression threshold -- so entries only ever gate against entries
    # measured the same way.
    return (entry.get("cpus"), entry.get("gil"), entry.get("method"))


def previous_comparable(history: list[dict], entry: dict) -> dict | None:
    """The latest earlier entry measured on a comparable host.

    Comparable = same cpu count, GIL mode and measurement method but a
    different commit;
    the entry for the *same* commit was replaced by the history merge,
    so the match is genuinely the previous measurement.
    """
    key = _group_key(entry)
    # Only look at entries before `entry`'s own position; when `entry`
    # is not (yet) in the list, the whole history is earlier.
    end = next(
        (i for i, old in enumerate(history) if old is entry), len(history)
    )
    for old in reversed(history[:end]):
        if _group_key(old) == key and old.get("commit") != entry.get("commit"):
            return old
    return None


def _pairs(entry: dict):
    """Sorted ``(workload, backend, speedup)`` triples of one entry."""
    for workload in sorted(entry.get("speedups", {})):
        speedups = entry["speedups"][workload]
        if not isinstance(speedups, dict):
            continue
        for backend in sorted(speedups):
            yield workload, backend, speedups[backend]


def render_delta(
    entry: dict,
    previous: dict | None,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """One-line-per-pair delta of ``entry`` against ``previous``."""
    if previous is None:
        return "no previous comparable run in history; nothing to compare"
    prev = {
        (workload, backend): speedup
        for workload, backend, speedup in _pairs(previous)
    }
    lines = [
        f"delta vs {previous.get('commit')} ({previous.get('date')}, "
        f"cpus={previous.get('cpus')}, gil={previous.get('gil')}):"
    ]
    for workload, backend, speedup in _pairs(entry):
        before = prev.get((workload, backend))
        if not before:
            lines.append(f"  {workload}/{backend}: {speedup:.2f}x (new)")
            continue
        change = speedup / before - 1.0
        flag = "  REGRESSION" if change < -threshold else ""
        lines.append(
            f"  {workload}/{backend}: {speedup:.2f}x "
            f"({change:+.1%} vs {before:.2f}x){flag}"
        )
    return "\n".join(lines)


def render_trend(
    history: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    workload: str | None = None,
) -> str:
    """Trend tables over a ``BENCH_host.json`` history list.

    One table per ``(cpus, gil)`` host group, columns in history order
    (oldest left).  The ``change`` column compares the two newest
    measurements of each row; drops beyond ``threshold`` are flagged.
    """
    if not history:
        return "history is empty; run benchmarks/bench_host_perf.py --out first"
    groups: dict[tuple, list[dict]] = {}
    for entry in history:
        groups.setdefault(_group_key(entry), []).append(entry)
    sections = []
    for key in sorted(groups, key=str):
        entries = groups[key]
        cpus, gil, method = key
        columns = [
            f"{e.get('commit') or '?'} ({e.get('date') or '?'})"
            for e in entries
        ]
        rows_by_pair: dict[tuple, list] = {}
        for i, entry in enumerate(entries):
            for wl, backend, speedup in _pairs(entry):
                if workload is not None and wl != workload:
                    continue
                row = rows_by_pair.setdefault((wl, backend), [None] * len(entries))
                row[i] = speedup
        if not rows_by_pair:
            continue
        rows = []
        for (wl, backend), values in sorted(rows_by_pair.items()):
            cells = [f"{v:.2f}x" if v is not None else "-" for v in values]
            present = [v for v in values if v is not None]
            if len(present) >= 2 and present[-2]:
                change = present[-1] / present[-2] - 1.0
                verdict = f"{change:+.1%}"
                if change < -threshold:
                    verdict += "  REGRESSION"
            else:
                verdict = "-"
            rows.append([f"{wl}/{backend}", *cells, verdict])
        sections.append(format_table(
            ["workload/backend", *columns, "change"], rows,
            title=f"host speedups (cpus={cpus}, gil={gil})"
            + (f" [{method}]" if method else ""),
        ))
    return "\n\n".join(sections)


def has_regressions(
    history: list[dict], threshold: float = DEFAULT_THRESHOLD
) -> bool:
    """Whether any newest-vs-previous comparable pair regressed."""
    if not history:
        return False
    newest = history[-1]
    previous = previous_comparable(history, newest)
    if previous is None:
        return False
    prev = {
        (workload, backend): speedup
        for workload, backend, speedup in _pairs(previous)
    }
    for workload, backend, speedup in _pairs(newest):
        before = prev.get((workload, backend))
        if before and speedup / before - 1.0 < -threshold:
            return True
    return False
