"""Host wall-clock performance of the execution backends (``host_perf``).

Everything else in the benchmark suite reports *virtual* time from the
cost model, which is bit-identical across execution backends by
construction.  This experiment measures real host seconds instead:

* the same workloads run under the ``serial``, ``fork``, ``shm`` and
  ``threads`` backends (dense synthetic doall and the sparse SPICE LU
  loop),
  asserting along the way that all backends produce identical memory and
  identical virtual time -- a parity mismatch is reported in the table
  and trips the benchmark's assertion;
* a microbenchmark of the commit phase's copy-out: the old per-element
  Python loop against the vectorized ``written_arrays`` fancy-indexed
  assignment now used by :func:`repro.core.commit.commit_states`;
* a per-primitive microbenchmark of the hot-path kernels layer
  (:mod:`repro.kernels`): the vectorized numpy implementation against
  the pure-Python scalar reference for marking, copy-in/out and the
  analysis reductions, on the same random index decks;
* an observability-overhead microbenchmark: the same serial run timed
  with the metrics registry and span tracker off vs on, gating the
  "near-zero cost when disabled, small cost when enabled" promise of
  :mod:`repro.obs.metrics` (CI asserts under 5% slowdown);
* an operational-plane overhead microbenchmark: the same run with the
  host resource sampler (:mod:`repro.obs.resources`) off vs on, under
  the same 5% CI budget.

Parallel-backend speedup is bounded by the host's CPU count (recorded in
the data); on a single-core host both out-of-process backends are
expected to *lose* to serial by their dispatch overhead, and the numbers
say so honestly.  The CI gate (``benchmarks/bench_host_perf.py``)
conditions its speedup thresholds on the recorded CPU count for the same
reason; parity is asserted unconditionally.
"""

from __future__ import annotations

import os
import platform

import numpy as np

from repro.bench.harness import ExperimentResult, measure_host, register
from repro.config import RuntimeConfig
from repro.core.runner import parallelize
from repro.machine.memory import SharedArray, make_private_view
from repro.workloads.spice import make_dcdcmp15_loop
from repro.workloads.synthetic import fully_parallel_loop

BACKENDS = ("serial", "fork", "shm", "threads")


def _summary(result) -> dict:
    """Backend-parity fingerprint: memory contents and virtual time."""
    return {
        "memory": {
            name: data.tobytes()
            for name, data in sorted(result.memory.snapshot().items())
        },
        "total_time": repr(result.total_time),
        "n_stages": result.n_stages,
    }


def _time_backends(make_loop, n_procs: int, repeats: int) -> dict:
    timings: dict[str, float] = {}
    summaries: dict[str, dict] = {}
    for backend in BACKENDS:
        # certify="off": the sweep times the full speculative pipeline.
        # Under the default --certify=hint the dense doall would take the
        # certified fast path and the history trend would silently change
        # meaning mid-series; the fast path gets its own microbenchmark.
        config = RuntimeConfig.adaptive(backend=backend, certify="off")
        fn = lambda: parallelize(make_loop(), n_procs, config)  # noqa: E731
        # One untimed warm-up per backend: the first run in the process
        # pays import/allocator/page-fault costs that would otherwise be
        # charged to whichever backend happens to go first -- fatal to
        # the relative dispatch-overhead gates when ``repeats`` is 1.
        fn()
        seconds, result = measure_host(fn, repeats)
        timings[backend] = seconds
        summaries[backend] = _summary(result)
    return {
        "seconds": timings,
        "speedup": {
            backend: timings["serial"] / timings[backend]
            for backend in BACKENDS
            if backend != "serial"
        },
        "parity_ok": all(
            summaries[backend] == summaries["serial"] for backend in BACKENDS
        ),
    }


def _paired_overhead(make_loop, n_procs: int, base_cfg, on_cfg, repeats: int):
    """Fractional slowdown of ``on_cfg`` over ``base_cfg``, measured as
    the median of interleaved pairwise on/off ratios.

    Both overhead gates ride this: pairing cancels slow host drift (CPU
    frequency, noisy container neighbors) and the median kills the odd
    descheduled run, either of which would otherwise masquerade as a
    budget overrun on a loaded CI runner.  One discarded warmup pair
    strips one-time costs (imports, thread bootstrap) that are not
    steady-state overhead.  Returns ``(median base seconds, overhead,
    result of the last on-config run)``."""
    import statistics

    parallelize(make_loop(), n_procs, base_cfg)
    result = parallelize(make_loop(), n_procs, on_cfg)
    base_times, ratios = [], []
    for _ in range(repeats):
        pair_base, _ = measure_host(
            lambda: parallelize(make_loop(), n_procs, base_cfg), 1
        )
        pair_on, result = measure_host(
            lambda: parallelize(make_loop(), n_procs, on_cfg), 1
        )
        base_times.append(pair_base)
        ratios.append(pair_on / pair_base)
    overhead = statistics.median(ratios) - 1.0
    return statistics.median(base_times), overhead, result


def _metrics_overhead(make_loop, n_procs: int, repeats: int) -> dict:
    """Wall-clock cost of full instrumentation (metrics + spans) on the
    serial backend: the same run timed with the registry and span tracker
    disabled vs enabled.  ``overhead`` is the fractional slowdown
    (0.03 = 3%)."""
    base_s, overhead, result = _paired_overhead(
        make_loop, n_procs,
        RuntimeConfig.adaptive(
            backend="serial", metrics=False, spans=False, certify="off"
        ),
        RuntimeConfig.adaptive(
            backend="serial", metrics=True, spans=True, certify="off"
        ),
        repeats,
    )
    return {
        "base_s": base_s,
        "instrumented_s": base_s * (1.0 + overhead),
        "overhead": overhead,
        "counters": len(result.metrics.get("counters", {})),
    }


def _resources_overhead(make_loop, n_procs: int, repeats: int) -> dict:
    """Wall-clock cost of the operational plane (resource sampler + oplog
    flight recorder taps) on the serial backend: the same run timed with
    the sampler off vs on at the default interval."""
    base_s, overhead, _ = _paired_overhead(
        make_loop, n_procs,
        RuntimeConfig.adaptive(backend="serial", resources=False, certify="off"),
        RuntimeConfig.adaptive(backend="serial", resources=True, certify="off"),
        repeats,
    )
    return {
        "base_s": base_s,
        "sampled_s": base_s * (1.0 + overhead),
        "overhead": overhead,
    }


def _commit_microbench(n: int, repeats: int) -> dict:
    """Dense copy-out: per-element loop vs one fancy-indexed assignment."""
    view = make_private_view(
        SharedArray("A", np.zeros(n, dtype=np.float64)), sparse=False
    )
    view.store_many(
        np.arange(n, dtype=np.int64), np.sqrt(np.arange(n, dtype=np.float64) + 1.0)
    )
    dest_scalar = np.zeros(n, dtype=np.float64)
    dest_vector = np.zeros(n, dtype=np.float64)

    def scalar():
        for index, value in view.written_items():
            dest_scalar[index] = value

    def vector():
        indices, values = view.written_arrays()
        dest_vector[indices] = values

    scalar_s, _ = measure_host(scalar, repeats)
    vector_s, _ = measure_host(vector, repeats)
    assert np.array_equal(dest_scalar, dest_vector)
    return {
        "n": n,
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": scalar_s / vector_s,
    }


def _kernel_microbench(n: int, repeats: int) -> dict:
    """Hot-path kernels, vector vs scalar, one case per primitive family.

    Each implementation gets its own state buffers (built once, outside
    the timed region); the primitives are idempotent on their buffers, so
    best-of timing over warm repeats compares the same steady state for
    both implementations.
    """
    from repro.kernels import KERNELS

    rng = np.random.default_rng(7)
    indices = rng.integers(0, n, size=n, dtype=np.int64)
    new_values = rng.standard_normal(n)
    shared = rng.standard_normal(n)
    half_a = np.unique(rng.integers(0, 2 * n, size=n, dtype=np.int64))
    half_b = np.unique(rng.integers(0, 2 * n, size=n, dtype=np.int64))
    n_words = (n + 63) // 64

    def _cases(k):
        write = np.zeros(n_words, dtype=np.uint64)
        exposed = np.zeros(n_words, dtype=np.uint64)
        any_read = np.zeros(n_words, dtype=np.uint64)
        marks = np.zeros(n_words, dtype=np.uint64)
        values = shared.copy()
        have = np.zeros(n, dtype=bool)
        written = np.zeros(n, dtype=bool)
        written[indices] = True
        dest = np.zeros(n, dtype=np.float64)
        return {
            "set_bits": lambda: k.set_bits(marks, n, indices),
            "mark_reads_bits": lambda: k.mark_reads_bits(
                write, exposed, any_read, n, indices
            ),
            "copy_in_dense": lambda: k.copy_in_dense(values, have, shared, indices),
            "copy_out_dense": lambda: k.copy_out_dense(values, written),
            "scatter": lambda: k.scatter(dest, indices, new_values),
            "intersect_indices": lambda: k.intersect_indices(half_a, half_b),
            "reduce_min_max": lambda: k.reduce_min_max(indices),
        }

    primitives: dict[str, dict] = {}
    for impl_name, impl in sorted(KERNELS.items()):
        for prim, fn in _cases(impl).items():
            seconds, _ = measure_host(fn, repeats)
            primitives.setdefault(prim, {})[f"{impl_name}_s"] = seconds
    for case in primitives.values():
        case["speedup"] = case["scalar_s"] / case["vector_s"]
    return {"n": n, "primitives": primitives}


def _certified_fastpath_microbench(n: int, n_procs: int, repeats: int) -> dict:
    """Certified-DOALL fast path vs the full speculative pipeline on the
    dense doall, serial backend host seconds.

    The fast path is timed with :class:`CertifiedDoall` supplied as the
    strategy -- the execution the certifier's DOALL verdict buys (plain
    loads/stores, no shadow marking, no checkpoint, no analysis, no
    commit copy-out) -- against the default adaptive pipeline with
    certification off.  The certifier's own probe is timed separately
    (``certify_s``): it stands in for static compile-time analysis, is
    independent of processor count, and amortizes over repeated runs of
    the same loop, so it is reported but not folded into the speedup the
    gate enforces.  Both runs must agree on final memory bit-for-bit.
    """
    from repro.core.fastpath import CertifiedDoall
    from repro.model import certify_loop

    spec_cfg = RuntimeConfig.adaptive(backend="serial", certify="off")
    fast_s, fast_r = measure_host(
        lambda: parallelize(
            fully_parallel_loop(n), n_procs, spec_cfg, strategy=CertifiedDoall()
        ),
        repeats + 1,  # first repeat doubles as the warm-up
    )
    spec_s, spec_r = measure_host(
        lambda: parallelize(fully_parallel_loop(n), n_procs, spec_cfg),
        repeats + 1,
    )
    certify_s, _ = measure_host(
        lambda: certify_loop(fully_parallel_loop(n)), repeats + 1
    )
    return {
        "n": n,
        "procs": n_procs,
        "fastpath_s": fast_s,
        "speculative_s": spec_s,
        "certify_s": certify_s,
        "speedup": spec_s / fast_s,
        "parity_ok": _summary(fast_r)["memory"] == _summary(spec_r)["memory"],
    }


@register("host_perf")
def host_perf(quick: bool) -> ExperimentResult:
    n_procs = 4
    repeats = 1 if quick else 3
    workloads = [
        (
            "doall-dense",
            lambda: fully_parallel_loop(1024 if quick else 4096),
            1024 if quick else 4096,
        ),
        (
            "spice15-sparse",
            lambda: make_dcdcmp15_loop("perfect-up"),
            2048,
        ),
    ]
    rows = []
    sweep = []
    for name, make_loop, n in workloads:
        entry = {"name": name, "n": n, "procs": n_procs}
        # Best-of-5 floor even in quick mode: these speedups feed the
        # cross-commit history that `repro bench-trend --strict` gates at
        # a 10% threshold, and a single timed sample per backend wobbles
        # well past that on a shared 1-cpu runner (the phantom fork
        # doall-dense regression in docs/cost-model.md was exactly such
        # an artifact).  Best-of minima are stable at this cost: ~4 s
        # for the whole sweep at quick sizes.
        entry.update(_time_backends(make_loop, n_procs, max(repeats, 5)))
        sweep.append(entry)
        seconds, speedup = entry["seconds"], entry["speedup"]
        cells = [f"serial {seconds['serial'] * 1e3:8.1f} ms"]
        cells += [
            f"{backend} {seconds[backend] * 1e3:8.1f} ms "
            f"({speedup[backend]:4.2f}x)"
            for backend in BACKENDS
            if backend != "serial"
        ]
        rows.append(
            f"{name:<16} n={n:<6} " + "   ".join(cells)
            + f"   parity {'ok' if entry['parity_ok'] else 'MISMATCH'}"
        )
    micro = _commit_microbench(1 << 12 if quick else 1 << 15, repeats)
    rows.append(
        f"{'commit-copyout':<16} n={micro['n']:<6} "
        f"scalar {micro['scalar_s'] * 1e3:9.1f} ms   "
        f"vector {micro['vector_s'] * 1e3:9.1f} ms   "
        f"speedup {micro['speedup']:5.2f}x"
    )
    kern = _kernel_microbench(1 << 12 if quick else 1 << 15, repeats)
    rows.append(
        f"{'kernels-micro':<16} n={kern['n']:<6} "
        + "  ".join(
            f"{prim} {case['speedup']:.1f}x"
            for prim, case in sorted(kern["primitives"].items())
        )
    )
    # The >= 2x fast-path gate applies at any CPU count (the serial
    # backend is single-process), so give it best-of-7 even in quick mode
    # -- each sample is a few milliseconds.
    fastpath = _certified_fastpath_microbench(
        1024 if quick else 4096, n_procs, max(repeats, 7)
    )
    rows.append(
        f"{'certified-fast':<16} n={fastpath['n']:<6} "
        f"speculative {fastpath['speculative_s'] * 1e3:7.1f} ms   "
        f"fastpath {fastpath['fastpath_s'] * 1e3:7.1f} ms "
        f"({fastpath['speedup']:4.2f}x)   "
        f"certify {fastpath['certify_s'] * 1e3:6.1f} ms   "
        f"parity {'ok' if fastpath['parity_ok'] else 'MISMATCH'}"
    )
    # Both overhead ratios gate CI at a 5% budget, far below run-to-run
    # scheduler noise on a short run: measure them on runs 4x longer than
    # the workload sweeps and with at least 15 interleaved pairs, which
    # empirically keeps the median ratio within ~3% even on a loaded
    # 1-cpu runner.  (The sampler's cost is fixed per run -- thread
    # start/stop + one final sample, ~0.15 ms -- so the longer run also
    # amortizes it to its honest steady-state share.)
    obs_n = 2048 if quick else 8192
    gate_n = 4 * obs_n
    gate_repeats = max(repeats, 15)
    overhead = _metrics_overhead(
        lambda: fully_parallel_loop(gate_n), n_procs, gate_repeats
    )
    rows.append(
        f"{'obs-overhead':<16} n={gate_n:<6} "
        f"off {overhead['base_s'] * 1e3:9.1f} ms   "
        f"on   {overhead['instrumented_s'] * 1e3:7.1f} ms   "
        f"overhead {overhead['overhead'] * 100:4.1f}%"
    )
    resources = _resources_overhead(
        lambda: fully_parallel_loop(gate_n), n_procs, gate_repeats
    )
    rows.append(
        f"{'resources-ovh':<16} n={gate_n:<6} "
        f"off {resources['base_s'] * 1e3:9.1f} ms   "
        f"on   {resources['sampled_s'] * 1e3:7.1f} ms   "
        f"overhead {resources['overhead'] * 100:4.1f}%"
    )
    from repro.core.threads import thread_mode

    host = {
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "gil": thread_mode(),
        "backends": list(BACKENDS),
    }
    rows.append(
        f"host: {host['cpus']} cpu(s), {host['python']}, {host['gil']}"
    )
    return ExperimentResult(
        exp_id="host_perf",
        title="Host wall-clock: execution backends and vectorized commit",
        table="\n".join(rows),
        expectation=(
            "All four backends agree bit-for-bit on memory and virtual "
            "time; shm beats fork everywhere (no pickled views or memory "
            "diffs); threads beats fork's dispatch even on one core (no "
            "fork, no sync, no pickling) and beats serial once the host "
            "has cores to spend (>= 1.5x on the dense doall at 4 cpus), "
            "while the out-of-process backends lose to serial on a "
            "single core; the "
            "vectorized commit copy-out beats the per-element loop by well "
            "over 3x at dense sizes; every vectorized kernel primitive "
            "beats its pure-Python scalar reference; the certified-DOALL "
            "fast path beats the full speculative pipeline by >= 2x on "
            "the dense doall at any CPU count (it removes work, not "
            "waiting); full instrumentation "
            "(metrics + spans) slows the serial backend by under 5%, and "
            "so does the host resource sampler."
        ),
        data={
            "host": host,
            "workloads": sweep,
            "commit_microbench": micro,
            "kernel_microbench": kern,
            "certified_fastpath": fastpath,
            "metrics_overhead": overhead,
            "resources_overhead": resources,
        },
    )
