"""Machine-readable export of experiment results.

`EXPERIMENTS.md` is for humans; downstream analysis (plotting the series,
diffing two runs of the reproduction, regression-tracking the shapes)
wants the raw data.  :func:`export_experiments` writes one JSON file per
experiment containing the id, title, expectation, rendered table and the
raw ``data`` dict, plus an ``index.json`` manifest.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.bench.harness import EXPERIMENTS, run_experiment


def _jsonable(value):
    """Best-effort conversion of experiment data to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def export_experiments(
    directory: str | pathlib.Path,
    ids: Iterable[str] | None = None,
    quick: bool = True,
) -> list[pathlib.Path]:
    """Run experiments and write one JSON file each; returns the paths."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    manifest: dict[str, dict] = {}
    for exp_id in ids or sorted(EXPERIMENTS):
        result = run_experiment(exp_id, quick=quick)
        payload = {
            "id": result.exp_id,
            "title": result.title,
            "expectation": result.expectation,
            "table": result.table,
            "data": _jsonable(result.data),
            "quick": quick,
        }
        path = out_dir / f"{exp_id}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        written.append(path)
        manifest[exp_id] = {"title": result.title, "file": path.name}
    index = out_dir / "index.json"
    index.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    written.append(index)
    return written
