"""Experiment registry and runner.

Every evaluation artifact of the paper (each figure, plus the Section 4
model and the ablations) is a registered experiment: a function
``fn(quick: bool) -> ExperimentResult`` producing the same rows/series the
paper reports.  ``quick=True`` shrinks deck sizes so a full regeneration
runs in seconds (the benchmark suite); ``quick=False`` is used by
``python -m repro.bench`` to regenerate EXPERIMENTS.md at full scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ExperimentResult:
    """One regenerated figure: formatted table plus raw series."""

    exp_id: str
    title: str
    table: str
    expectation: str
    """The paper's qualitative claim this experiment checks (who wins, by
    roughly what factor, where crossovers fall)."""
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        return (
            f"## {self.exp_id}: {self.title}\n\n"
            f"Paper expectation: {self.expectation}\n\n"
            f"```\n{self.table}\n```\n"
        )


ExperimentFn = Callable[[bool], ExperimentResult]

EXPERIMENTS: dict[str, ExperimentFn] = {}


def run_registered(strategy_name: str, loop, n_procs: int, config=None, **kwargs):
    """Run one loop under a strategy resolved from the engine registry.

    Experiments compare strategies by name; going through the registry
    keeps them in lockstep with whatever the CLI and runner dispatch to
    (``config=None`` uses the strategy's own default configuration).
    """
    from repro.core.engine import StageEngine, resolve_strategy

    cls = resolve_strategy(strategy_name)
    config = config or cls.default_config()
    return StageEngine(loop, n_procs, cls(), config, **kwargs).run()


def measure_host(fn: Callable[[], object], repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` host wall-clock seconds for ``fn()``.

    Everything else in this package measures *virtual* time (the cost
    model); this measures real host seconds, for comparing execution
    backends and vectorized hot paths.  Best-of suppresses scheduler noise
    on a loaded host better than averaging; returns ``(seconds, result of
    the last call)``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def register(exp_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register an experiment under a stable id (e.g. ``fig07``)."""

    def decorate(fn: ExperimentFn) -> ExperimentFn:
        if exp_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        EXPERIMENTS[exp_id] = fn
        return fn

    return decorate


def run_experiment(exp_id: str, quick: bool = True) -> ExperimentResult:
    """Run one registered experiment."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    result = fn(quick)
    if result.exp_id != exp_id:
        raise RuntimeError(
            f"experiment {exp_id!r} returned mismatched id {result.exp_id!r}"
        )
    return result


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)
