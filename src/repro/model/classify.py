"""Estimating the dependence-distribution parameters from observed runs.

The paper notes that ``alpha`` is generally unknown in advance but "in many
cases reasonable estimates can be made ... and recomputed during execution
(e.g., as an average of the alpha values observed so far)".  These helpers
implement exactly that: given the per-stage remaining-iteration series of a
:class:`~repro.core.results.RunResult`, fit the geometric and linear models
and report which explains the series better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import RunResult


def remaining_series(result: RunResult) -> list[int]:
    """``[n, n_1, n_2, ...]``: iterations remaining before each stage."""
    series = [result.n_iterations]
    for stage in result.stages:
        series.append(stage.remaining_after)
    return series


def estimate_alpha(result: RunResult) -> float | None:
    """Average per-stage surviving fraction of the *remaining* work.

    Returns ``None`` for single-stage (fully parallel) runs, where alpha is
    unobservable (any value in [0, 1) predicts one stage).
    """
    series = remaining_series(result)
    ratios = [
        after / before
        for before, after in zip(series, series[1:])
        if before > 0 and after > 0
    ]
    if not ratios:
        return None
    # Geometric mean: alpha multiplies across stages.
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def estimate_beta(result: RunResult) -> float | None:
    """Average fraction of the *original* work left unfinished per stage."""
    n = result.n_iterations
    if n == 0 or len(result.stages) == 0:
        return None
    completed_per_stage = [s.committed_iterations / n for s in result.stages]
    if not completed_per_stage:
        return None
    mean_completed = sum(completed_per_stage) / len(completed_per_stage)
    return max(0.0, 1.0 - mean_completed)


@dataclass(frozen=True, slots=True)
class LoopClass:
    """Classification verdict with both fitted parameters."""

    kind: str  # 'geometric' | 'linear' | 'parallel'
    alpha: float | None
    beta: float | None
    geometric_error: float
    linear_error: float


def classify_loop(result: RunResult) -> LoopClass:
    """Fit both models to the remaining-work series; pick the better one.

    Error metric: RMS of the relative prediction error of the remaining
    count at each stage.
    """
    series = remaining_series(result)
    n = result.n_iterations
    alpha = estimate_alpha(result)
    beta = estimate_beta(result)
    if len(series) <= 2 or alpha is None:
        return LoopClass("parallel", alpha, beta, 0.0, 0.0)

    def rms(predict) -> float:
        errs = []
        for k, actual in enumerate(series[1:], start=1):
            pred = predict(k)
            # Scale by the larger of the two values so the terminal
            # remaining-count of 0 doesn't blow up the relative error.
            scale = max(1.0, actual, pred)
            errs.append(((pred - actual) / scale) ** 2)
        return math.sqrt(sum(errs) / len(errs))

    geo_err = rms(lambda k: n * alpha**k)
    lin_err = rms(lambda k: max(0.0, n * (1.0 - (1.0 - (beta or 0.0)) * k)))
    # The linear model's "beta" as defined predicts remaining = n - k*(1-beta)*n.
    kind = "geometric" if geo_err <= lin_err else "linear"
    return LoopClass(kind, alpha, beta, geo_err, lin_err)
