"""Static certification front-end.

Before a loop enters the speculative machinery, :func:`certify_loop`
analyzes its access pattern (via the symbolic probe layer in
:mod:`repro.loopir.symbolic`) and emits a typed :class:`LoopCertificate`:

* ``DOALL`` -- the iterations are provably independent.  The engine can
  run the loop with a zero-speculation fast path: plain loads/stores
  against committed memory, no shadow marking, no private views, no
  checkpoint, no analysis phase (:mod:`repro.core.fastpath`).
* ``SEQUENTIAL`` -- a cross-iteration flow-dependence chain covers
  (almost) every iteration, so speculation is provably doomed: the run
  would restart once per iteration.  The engine skips straight to a
  single in-order pass on one processor.
* ``SPECULATE`` -- neither extreme is provable (or the loop uses
  machinery the fast path cannot honor: speculative inductions,
  reductions, premature exits).  The certificate still carries a
  strategy/window *hint* for :mod:`repro.sched.predictor`.

Evidence quality is tracked by ``LoopCertificate.exact``: a full
sequential probe (every iteration executed with reference semantics)
yields exact certificates acted on under ``--certify=hint``; a sampled
probe of a large loop yields affine-model certificates acted on only
under ``--certify=trust``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.loopir.loop import SpeculativeLoop
from repro.loopir.symbolic import (
    DependenceSummary,
    affine_dependences,
    probe_loop,
    trace_dependences,
)
from repro.machine.memory import MemoryImage

#: Verdict constants (plain strings so certificates serialize trivially).
DOALL = "DOALL"
SEQUENTIAL = "SEQUENTIAL"
SPECULATE = "SPECULATE"

#: Flow-chain coverage above which a loop is declared sequential: with a
#: critical path this close to the iteration count, a speculative run
#: commits O(1) iterations per stage and the paper's own model says the
#: overhead can never be recovered.
_SEQUENTIAL_CHAIN_FRACTION = 0.9


@dataclass(frozen=True)
class LoopCertificate:
    """Outcome of statically certifying one loop instantiation."""

    loop_name: str
    verdict: str  # DOALL | SEQUENTIAL | SPECULATE
    basis: str
    """Evidence class: ``"trivial"`` (n <= 1), ``"structural"`` (induction/
    reduction/exit machinery), ``"trace"`` (full sequential probe),
    ``"affine"`` (affine model over a sampled probe), ``"opaque"``
    (sampled probe did not fit the affine model)."""
    exact: bool
    """The verdict is proven for this instantiation (full probe or
    structural fact), as opposed to predicted by an affine model fitted
    to a sample."""
    reason: str
    strategy_hint: str | None = None
    """For SPECULATE: suggested strategy family (``"nrd"``, ``"adaptive"``,
    ``"sw"``, ``"induction"``)."""
    window_hint: int | None = None
    """For SPECULATE with ``strategy_hint="sw"``: suggested window size."""
    stats: dict = field(default_factory=dict)

    def summary(self) -> dict:
        out = {
            "loop": self.loop_name,
            "verdict": self.verdict,
            "basis": self.basis,
            "exact": self.exact,
            "reason": self.reason,
        }
        if self.strategy_hint is not None:
            out["strategy_hint"] = self.strategy_hint
        if self.window_hint is not None:
            out["window_hint"] = self.window_hint
        if self.stats:
            out["stats"] = dict(self.stats)
        return out

    def describe(self) -> str:
        """One-line rendering for stage traces and reports."""
        tail = ""
        if self.verdict == SPECULATE and self.strategy_hint:
            tail = f", hint={self.strategy_hint}"
            if self.window_hint is not None:
                tail += f"(w={self.window_hint})"
        kind = "exact" if self.exact else "model"
        return f"{self.verdict} [{self.basis}/{kind}]: {self.reason}{tail}"


def _next_pow2(x: int) -> int:
    p = 1
    while p < x:
        p <<= 1
    return p


def _speculate_hints(
    deps: DependenceSummary, n: int
) -> tuple[str, int | None]:
    """Map measured dependence structure to a strategy/window hint.

    Low sink density favors blocked NRD (failures are rare, redistribution
    overhead buys nothing); moderate density favors the adaptive policy;
    dense-but-short-distance dependences favor a sliding window sized a
    little beyond the maximum dependence distance (the window commits its
    prefix even when later iterations fail).
    """
    density = deps.sink_iterations / n if n else 0.0
    if density < 0.02:
        return "nrd", None
    if density < 0.25 or deps.max_distance > n // 2:
        return "adaptive", None
    window = _next_pow2(max(2, min(n, 2 * deps.max_distance)))
    return "sw", window


def certify_loop(
    loop: SpeculativeLoop,
    memory: MemoryImage | None = None,
    probe_limit: int = 4096,
    sample: int = 48,
) -> LoopCertificate:
    """Certify one loop instantiation.

    ``memory`` is the image the run will start from (defaults to the
    loop's own materialization); the probe never mutates it.
    ``probe_limit`` bounds the full-probe size -- larger loops get a
    sampled probe and affine-model (non-exact) evidence.
    """
    n = loop.n_iterations

    def cert(verdict, basis, exact, reason, hint=None, window=None, **stats):
        return LoopCertificate(
            loop_name=loop.name,
            verdict=verdict,
            basis=basis,
            exact=exact,
            reason=reason,
            strategy_hint=hint,
            window_hint=window,
            stats={"n": n, **stats},
        )

    if loop.inductions:
        return cert(
            SPECULATE, "structural", True,
            "speculative induction variables require the two-phase runner",
            hint="induction",
        )
    if loop.reductions:
        return cert(
            SPECULATE, "structural", True,
            "reduction arrays need per-processor partials and a combine "
            "phase the plain fast path does not provide",
            hint="adaptive",
        )
    if n == 0:
        return cert(DOALL, "trivial", True, "0 iterations")
    # n == 1 still gets probed: a single iteration cannot conflict, but it
    # can call exit_loop(), which the plain DOALL path must not absorb.

    try:
        probe = probe_loop(loop, memory=memory, limit=probe_limit, sample=sample)
    except Exception as exc:  # noqa: BLE001 -- certification must be transparent
        # A body that raises (or otherwise breaks under probing) is not a
        # certification failure: fall through to the speculative machinery
        # so the exception surfaces with the engine's usual semantics
        # (partial traces flushed, checkpoints restored).
        return cert(
            SPECULATE, "opaque", False,
            f"probe aborted: {type(exc).__name__}: {exc}",
        )

    if probe.full:
        deps = trace_dependences(probe.records, n)
        stats = {
            "probed": len(probe.iterations),
            "conflicts": deps.conflicts,
            "critical_path": deps.critical_path,
            "max_distance": deps.max_distance,
            "sink_iterations": deps.sink_iterations,
        }
        if probe.exit_at is not None:
            # A premature exit is unsound under the plain DOALL fast path
            # (later iterations would already have written shared memory);
            # sequential in-order execution handles it naturally.
            if deps.conflicts == 0:
                return cert(
                    SPECULATE, "trace", True,
                    f"independent but exits early at iteration {probe.exit_at}",
                    hint="nrd", exit_at=probe.exit_at, **stats,
                )
            executed = probe.exit_at + 1
            if deps.critical_path >= max(
                2, _SEQUENTIAL_CHAIN_FRACTION * executed
            ):
                return cert(
                    SEQUENTIAL, "trace", True,
                    f"flow chain covers {deps.critical_path} of {executed} "
                    f"executed iterations (exit at {probe.exit_at})",
                    exit_at=probe.exit_at, **stats,
                )
            hint, window = _speculate_hints(deps, executed)
            return cert(
                SPECULATE, "trace", True,
                f"{deps.conflicts} conflicting element(s) before exit",
                hint=hint, window=window, exit_at=probe.exit_at, **stats,
            )
        if deps.conflicts == 0:
            return cert(
                DOALL, "trace", True,
                "full sequential probe found no cross-iteration "
                "element sharing",
                **stats,
            )
        if deps.critical_path >= max(2, _SEQUENTIAL_CHAIN_FRACTION * n):
            return cert(
                SEQUENTIAL, "trace", True,
                f"flow-dependence chain covers {deps.critical_path} of "
                f"{n} iterations",
                **stats,
            )
        hint, window = _speculate_hints(deps, n)
        return cert(
            SPECULATE, "trace", True,
            f"{deps.conflicts} conflicting element(s), chain "
            f"{deps.critical_path}/{n}",
            hint=hint, window=window, **stats,
        )

    # Sampled probe: affine-model evidence only.
    if probe.exit_at is not None:
        return cert(
            SPECULATE, "opaque", False,
            f"sampled probe observed a premature exit at {probe.exit_at}",
            hint="nrd", probed=len(probe.iterations),
        )
    if not probe.uniform or probe.sites is None:
        return cert(
            SPECULATE, "opaque", False,
            "sampled iterations do not fit a single affine access "
            "signature",
            hint="adaptive", probed=len(probe.iterations),
        )
    deps = affine_dependences(probe.sites, n)
    stats = {
        "probed": len(probe.iterations),
        "sites": len(probe.sites),
        "conflicts": deps.conflicts,
        "critical_path": deps.critical_path,
        "max_distance": deps.max_distance,
    }
    if deps.conflicts == 0:
        return cert(
            DOALL, "affine", False,
            f"{len(probe.sites)} affine site(s) are pairwise disjoint "
            f"over [0, {n})",
            **stats,
        )
    if deps.critical_path >= max(2, _SEQUENTIAL_CHAIN_FRACTION * n):
        return cert(
            SEQUENTIAL, "affine", False,
            f"affine flow chain covers {deps.critical_path} of {n} "
            "iterations",
            **stats,
        )
    hint, window = _speculate_hints(deps, n)
    return cert(
        SPECULATE, "affine", False,
        f"{deps.conflicts} predicted conflicting pair(s)",
        hint=hint, window=window, **stats,
    )


def fastpath_strategy(certificate: LoopCertificate | None, config):
    """Resolve a certificate to a fast-path strategy object, or ``None``.

    ``None`` means "no fast path": the caller falls through to the normal
    registry resolution.  Non-exact (affine-model) certificates are acted
    on only under ``certify="trust"``.
    """
    if certificate is None:
        return None
    if not certificate.exact and config.certify != "trust":
        return None
    from repro.core.fastpath import CertifiedDoall, CertifiedSequential

    if certificate.verdict == DOALL:
        return CertifiedDoall(certificate)
    if certificate.verdict == SEQUENTIAL:
        return CertifiedSequential(certificate)
    return None
