"""Scaling prediction: observe a loop once, predict other machine sizes.

Section 4 closes with the observation that the model parameters "can be
estimated through both static analysis and experimental measurements" and
"recomputed during execution".  This module completes that loop: fit
``alpha`` (or ``beta``) from one observed run, then evaluate the closed
forms at other processor counts -- the cheap capacity-planning question
("would 16 processors help this loop?") answered without running it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.machine.costs import CostModel
from repro.model.analytic import (
    speedup_geometric,
    speedup_linear,
    total_time_geometric,
    total_time_linear,
)
from repro.model.classify import classify_loop


@dataclass(frozen=True)
class ScalingPrediction:
    """Predicted times/speedups per processor count, with the fit used."""

    loop_name: str
    kind: str  # 'geometric' | 'linear' | 'parallel'
    parameter: float | None  # fitted alpha or beta
    predictions: dict[int, float]  # p -> predicted speedup

    def best_p(self) -> int:
        return max(self.predictions, key=lambda p: self.predictions[p])


def predict_scaling(
    observed: RunResult,
    costs: CostModel,
    p_values: list[int],
) -> ScalingPrediction:
    """Fit the observed run's dependence distribution; predict other ``p``.

    Fully parallel runs (one stage) scale like a doall with one barrier;
    geometric fits use ``T(n)`` (Eq. 6), linear fits ``T_static`` with the
    fitted ``beta``.  Predictions are *model* speedups: useful work over
    modeled time, ignoring marking/analysis overheads exactly as Section 4
    does, so compare them against each other, not against measured runs.
    """
    if not p_values:
        raise ValueError("need at least one processor count to predict")
    verdict = classify_loop(observed)
    n = observed.n_iterations
    omega, ell, s = costs.omega, costs.ell, costs.sync
    predictions: dict[int, float] = {}
    for p in p_values:
        if p < 1:
            raise ValueError(f"invalid processor count {p}")
        if verdict.kind == "parallel" or not verdict.alpha:
            t = n * omega / p + s
            predictions[p] = (n * omega) / t if t > 0 else float("inf")
        elif verdict.kind == "geometric":
            predictions[p] = speedup_geometric(n, omega, ell, s, p, verdict.alpha)
        else:
            beta = min(verdict.beta if verdict.beta is not None else 0.0, (p - 1) / p)
            predictions[p] = speedup_linear(n, omega, s, p, beta)
    parameter = (
        verdict.alpha
        if verdict.kind == "geometric"
        else (verdict.beta if verdict.kind == "linear" else None)
    )
    return ScalingPrediction(
        loop_name=observed.loop_name,
        kind=verdict.kind,
        parameter=parameter,
        predictions=predictions,
    )


def predicted_time(
    observed: RunResult, costs: CostModel, p: int
) -> float:
    """Modeled total time of the observed loop at another processor count."""
    verdict = classify_loop(observed)
    n = observed.n_iterations
    if verdict.kind == "geometric" and verdict.alpha:
        return total_time_geometric(
            n, costs.omega, costs.ell, costs.sync, p, verdict.alpha
        )
    if verdict.kind == "linear" and verdict.beta is not None:
        beta = min(verdict.beta, (p - 1) / p if p > 1 else 0.0)
        return total_time_linear(n, costs.omega, costs.sync, p, beta)
    return n * costs.omega / p + costs.sync
