"""Closed-form execution-time model of the R-LRPD test (paper, Section 4).

Inputs: ``n`` iterations of cost ``omega`` each, ``p`` processors, barrier
cost ``s``, per-iteration redistribution cost ``ell``.  Loops are classified
by their dependence distribution:

* **geometric (alpha) loops** -- a constant fraction ``1 - alpha`` of the
  *remaining* iterations completes in each speculative step;
* **linear (beta) loops** -- a constant fraction ``1 - beta`` of the
  *original* iterations completes in each step.

Key quantities (equation numbers from the paper):

* ``k_s`` -- steps to finish without redistribution; geometric:
  ``log_{1/alpha} p`` (the remainder fits on one processor); linear:
  ``1 / (1 - beta)``.
* ``T_static(n) = k_s * (n*omega/p + s)`` (Eq. 1 with the per-step span
  ``n*omega/p``: NRD re-executes fixed blocks, so every step costs the span
  of one original block plus a barrier; the worked examples "fully parallel:
  n*omega/p + s" and "sequential: n*omega + p*s" pin this form down).
* ``T_dyn`` (Eqs. 2-3) -- with redistribution, step ``i`` runs ``n_i``
  iterations over all ``p`` processors at ``(omega + ell)`` per iteration
  plus a barrier.
* ``k_d`` (Eqs. 4, 7) -- redistribution pays while
  ``n_kd >= p*s/(omega - ell)``; for geometric loops
  ``k_d = log_alpha((s/(omega-ell)) * (p/n))``.
* ``T(n) = T_dyn(n) + T_static(n_kd)`` (Eqs. 5-6).
"""

from __future__ import annotations

import math


def _check_common(n: int, omega: float, s: float, p: int) -> None:
    if n < 0:
        raise ValueError("n must be non-negative")
    if p < 1:
        raise ValueError("p must be at least 1")
    if omega <= 0:
        raise ValueError("omega must be positive")
    if s < 0:
        raise ValueError("s must be non-negative")


def k_s_geometric(alpha: float, p: int) -> float:
    """Steps to completion without redistribution, geometric loop.

    The final step occurs when the remaining work fits on one processor:
    ``n*alpha^k = n/p`` gives ``k = log_{1/alpha}(p)``.  ``alpha = 0``
    (fully parallel) gives 1 step.
    """
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    if p < 1:
        raise ValueError("p must be at least 1")
    if alpha == 0.0 or p == 1:
        return 1.0
    return max(1.0, math.log(p) / math.log(1.0 / alpha))


def k_s_linear(beta: float) -> float:
    """Steps to completion, linear loop: ``k_s = 1 / (1 - beta)``.

    ``beta = 0`` (fully parallel): one step.  ``beta = (p-1)/p`` (one
    processor's worth per step): ``p`` steps.
    """
    if not 0.0 <= beta < 1.0:
        raise ValueError(f"beta must be in [0, 1), got {beta}")
    return 1.0 / (1.0 - beta)


def t_static(n: int, omega: float, s: float, p: int, k_s: float) -> float:
    """NRD total time: ``k_s`` steps, each one block-span plus a barrier."""
    _check_common(n, omega, s, p)
    return k_s * (n * omega / p + s)


def remaining_after(n: int, alpha: float, steps: int) -> float:
    """Iterations still uncommitted after ``steps`` geometric stages."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    return n * alpha**steps


def k_d_geometric(
    n: int, omega: float, ell: float, s: float, p: int, alpha: float
) -> float:
    """Number of steps for which redistribution pays (Eq. 7).

    Redistribution continues while ``n_kd >= p*s / (omega - ell)``
    (Eq. 4).  Returns 0 when redistribution never pays (``omega <= ell``
    or the threshold already exceeds ``n``).
    """
    _check_common(n, omega, s, p)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1) for k_d, got {alpha}")
    if omega <= ell or n == 0:
        return 0.0
    threshold = p * s / (omega - ell)
    if threshold <= 0:
        return math.inf
    ratio = threshold / n
    if ratio >= 1.0:
        return 0.0
    # n * alpha^k = threshold  =>  k = log_alpha(threshold / n)
    return math.log(ratio) / math.log(alpha)


def t_dyn_geometric(
    n: int,
    omega: float,
    ell: float,
    s: float,
    p: int,
    alpha: float,
    k_d: float,
) -> float:
    """Redistribution-phase time (Eqs. 2-3) for a geometric loop.

    ``sum_{i=0}^{k_d} n_i = n * (1 - alpha^(k_d + 1)) / (1 - alpha)``; every
    step costs ``(omega + ell)/p`` per remaining iteration plus a barrier.
    The initial step pays no redistribution, matching the paper's
    experimental setup, so ``ell`` applies to steps ``1..k_d`` only.
    """
    _check_common(n, omega, s, p)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    steps = int(math.floor(k_d)) + 1  # steps 0 .. k_d
    total = 0.0
    for i in range(steps):
        n_i = n * alpha**i
        move = ell if i > 0 else 0.0
        total += n_i * (omega + move) / p + s
    return total


def total_time_geometric(
    n: int, omega: float, ell: float, s: float, p: int, alpha: float
) -> float:
    """End-to-end model time ``T(n) = T_dyn(n) + T_static(n_kd)`` (Eq. 6)."""
    k_d = k_d_geometric(n, omega, ell, s, p, alpha)
    k_d_int = int(math.floor(k_d))
    dyn = t_dyn_geometric(n, omega, ell, s, p, alpha, k_d)
    n_kd = remaining_after(n, alpha, k_d_int + 1)
    if n_kd < 1.0:
        return dyn
    k_s = k_s_geometric(alpha, p)
    return dyn + t_static(int(round(n_kd)), omega, s, p, k_s)


def total_time_linear(n: int, omega: float, s: float, p: int, beta: float) -> float:
    """NRD model time for a linear (beta) loop: ``k_s`` fixed-size steps.

    The paper notes redistribution is not meaningful for beta loops ("the
    number of iterations each processor is assigned varies from one
    speculative parallelization to another" breaks the constant-fraction
    assumption), so only the static form applies.
    """
    return t_static(n, omega, s, p, k_s_linear(beta))


def speedup_geometric(
    n: int, omega: float, ell: float, s: float, p: int, alpha: float
) -> float:
    """Model-predicted speedup of the RD-then-NRD execution over sequential."""
    t = total_time_geometric(n, omega, ell, s, p, alpha)
    return (n * omega) / t if t > 0 else float("inf")


def speedup_linear(n: int, omega: float, s: float, p: int, beta: float) -> float:
    """Model-predicted speedup of the NRD execution of a linear loop."""
    t = total_time_linear(n, omega, s, p, beta)
    return (n * omega) / t if t > 0 else float("inf")


def recommend_strategy(
    n: int, omega: float, ell: float, s: float, p: int
) -> str:
    """The paper's a-priori redistribution advice.

    ``omega <= ell + s`` per iteration: "it does not pay to redistribute"
    (NRD).  Otherwise adaptive redistribution governed by Eq. (4).
    """
    if omega <= ell + s / max(1, n // max(1, p)):
        return "nrd"
    return "adaptive"
