"""Section 4's analytic cost model, loop classification, and the static
certification front-end."""

from repro.model.analytic import (
    k_d_geometric,
    k_s_geometric,
    k_s_linear,
    recommend_strategy,
    remaining_after,
    speedup_geometric,
    speedup_linear,
    t_static,
    t_dyn_geometric,
    total_time_geometric,
    total_time_linear,
)
from repro.model.certify import (
    DOALL,
    SEQUENTIAL,
    SPECULATE,
    LoopCertificate,
    certify_loop,
    fastpath_strategy,
)
from repro.model.classify import estimate_alpha, estimate_beta, classify_loop
from repro.model.predict import ScalingPrediction, predict_scaling, predicted_time
from repro.model.footprint import FootprintReport, estimate_footprints

__all__ = [
    "DOALL",
    "SEQUENTIAL",
    "SPECULATE",
    "LoopCertificate",
    "certify_loop",
    "fastpath_strategy",
    "k_s_geometric",
    "k_s_linear",
    "k_d_geometric",
    "remaining_after",
    "t_static",
    "t_dyn_geometric",
    "total_time_geometric",
    "total_time_linear",
    "speedup_geometric",
    "speedup_linear",
    "recommend_strategy",
    "estimate_alpha",
    "estimate_beta",
    "classify_loop",
    "ScalingPrediction",
    "predict_scaling",
    "predicted_time",
    "FootprintReport",
    "estimate_footprints",
]
