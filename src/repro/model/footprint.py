"""Memory-overhead estimates for the competing techniques.

One of the paper's stated advantages over the inspector/executor family is
memory: the inspector records the *reference trace* (memory proportional to
the dynamic reference count), while the processor-wise LRPD keeps a few
bits per distinct element per processor -- and the sparse flavor only for
elements actually touched.  The iteration-wise variant sits in between
(mark lists are trace-proportional, which is why the paper avoids it).

The estimates below use the access trace of a sequential execution (ground
truth for "what would be recorded") and simple per-entry byte costs:

* dense processor-wise shadow: 4 bit-planes = ``n/2`` bytes per processor
  per array (Write, exposed-Read, any-Read, update);
* sparse processor-wise shadow: ~48 bytes per distinct touched element per
  processor (three hash-set entries);
* iteration-wise mark lists: ~56 bytes per trace record plus 16 per
  logged written value;
* inspector trace: ~48 bytes per recorded reference (address + iteration
  in a sorted structure).

Absolute bytes are estimates; the *asymmetry* (trace-proportional vs
touched-proportional) is the reproducible claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.memory import DENSE_VIEW_THRESHOLD
from repro.util.blocks import partition_even

DENSE_SHADOW_BYTES_PER_ELEM = 0.5     # 4 bit-planes
SPARSE_SHADOW_BYTES_PER_ELEM = 48.0   # hash-set entries
MARKLIST_BYTES_PER_RECORD = 56.0
VALUE_LOG_BYTES = 16.0
INSPECTOR_BYTES_PER_REF = 48.0


@dataclass(frozen=True)
class FootprintReport:
    """Estimated auxiliary memory of each technique, in bytes."""

    loop_name: str
    n_procs: int
    trace_length: int
    distinct_touched: int
    procwise_bytes: float
    iterwise_bytes: float
    inspector_bytes: float

    def rows(self) -> list[list]:
        return [
            ["processor-wise LRPD", round(self.procwise_bytes)],
            ["iteration-wise LRPD", round(self.iterwise_bytes)],
            ["inspector/executor", round(self.inspector_bytes)],
        ]


def estimate_footprints(loop: SpeculativeLoop, n_procs: int) -> FootprintReport:
    """Estimate the auxiliary memory each technique needs for one stage.

    Uses a traced sequential execution for the reference stream; the
    blocked partition determines which processor touches which elements.
    """
    memory = loop.materialize()
    ctx = SequentialContext(
        memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
        trace=True,
    )
    for i in range(loop.n_iterations):
        ctx.iteration = i
        loop.body(ctx, i)
        if ctx.exited:
            break
    records = ctx.records
    tested = set(loop.tested_names)
    tested_records = [r for r in records if r.array in tested]

    blocks = partition_even(0, loop.n_iterations, list(range(n_procs)))
    proc_of = {}
    for block in blocks:
        for i in block.iterations():
            proc_of[i] = block.proc

    # Distinct (proc, array, element) triples: the sparse shadow's cost.
    touched: set[tuple[int, str, int]] = set()
    for rec in tested_records:
        touched.add((proc_of.get(rec.iteration, 0), rec.array, rec.index))

    specs = loop.array_specs
    procwise = 0.0
    for name in tested:
        spec = specs[name]
        n_elems = len(spec.initial)
        sparse = spec.sparse if spec.sparse is not None else (
            n_elems > DENSE_VIEW_THRESHOLD
        )
        if sparse:
            per_array = sum(
                SPARSE_SHADOW_BYTES_PER_ELEM
                for (_, a, _) in touched
                if a == name
            )
            procwise += per_array
        else:
            procwise += n_procs * n_elems * DENSE_SHADOW_BYTES_PER_ELEM

    n_writes = sum(1 for r in tested_records if r.kind in ("w", "u"))
    iterwise = (
        len(tested_records) * MARKLIST_BYTES_PER_RECORD
        + n_writes * VALUE_LOG_BYTES
    )
    inspector = len(records) * INSPECTOR_BYTES_PER_REF

    return FootprintReport(
        loop_name=loop.name,
        n_procs=n_procs,
        trace_length=len(records),
        distinct_touched=len(touched),
        procwise_bytes=procwise,
        iterwise_bytes=iterwise,
        inspector_bytes=inspector,
    )
