"""Command-line driver: run any bundled workload under any strategy.

Usage (also via ``python -m repro``)::

    python -m repro list                          # available workloads
    python -m repro run nlfilt:16-400 -p 8 --strategy sw --window 64
    python -m repro run extend:clean -p 8 --trace run.jsonl --breakdown
    python -m repro certify scatter -p 8          # all strategies vs oracle
    python -m repro ddg spice15:adder.128 -p 8    # extraction + wavefront
    python -m repro run doall -p 8 --status s.jsonl &  # then, live:
    python -m repro top s.jsonl                   # dashboard over the run
    python -m repro report --bundle crashes/crash-...  # read a crash bundle
    python -m repro bench-trend BENCH_host.json   # speedups across commits

Workloads are addressed as ``family[:deck]``; omit the deck for the
family's default.  Strategies come from the engine registry
(:mod:`repro.core.engine`), so a strategy registered by a plugin module
is runnable here without touching this file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.trace import render_breakdown, render_stage_trace
from repro.config import RuntimeConfig
from repro.core.backend import backend_names
from repro.kernels import kernel_names
from repro.core.ddg import extract_ddg
from repro.core.engine import resolve_strategy, strategy_names
from repro.core.runner import parallelize
from repro.core.verify import certify
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.errors import ConfigurationError
from repro.faults import random_plan
from repro.obs.metrics import render_metrics
from repro.obs.report import load_trace, run_report, write_perfetto
from repro.obs.sinks import CliProgressSink
from repro.loopir.loop import SpeculativeLoop
from repro.workloads import (
    EXTEND_DECKS,
    FMA3D_DECKS,
    FPTRAK_DECKS,
    NLFILT_DECKS,
    SPICE_DECKS,
    make_dcdcmp15_loop,
    make_dcdcmp70_loop,
    make_bjt_loop,
    make_extend_loop,
    make_fptrak_loop,
    make_nlfilt_loop,
    make_quad_loop,
)
from repro.workloads.patterns import (
    gather_loop,
    pointer_chase_loop,
    scatter_loop,
    stencil_loop,
    transitive_update_loop,
)
from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    prefix_sum_loop,
    random_dependence_loop,
    strided_doall_loop,
)

WorkloadFactory = Callable[[str | None], SpeculativeLoop]


def _decked(maker, decks, default):
    def factory(deck: str | None) -> SpeculativeLoop:
        return maker(decks[deck or default])

    factory.decks = sorted(decks)  # type: ignore[attr-defined]
    return factory


def _plain(maker, **kwargs):
    def factory(deck: str | None) -> SpeculativeLoop:
        if deck is not None:
            raise KeyError(f"this workload takes no deck (got {deck!r})")
        return maker(**kwargs)

    factory.decks = []  # type: ignore[attr-defined]
    return factory


WORKLOADS: dict[str, WorkloadFactory] = {
    "nlfilt": _decked(make_nlfilt_loop, NLFILT_DECKS, "16-400"),
    "extend": _decked(make_extend_loop, EXTEND_DECKS, "clean"),
    "fptrak": _decked(make_fptrak_loop, FPTRAK_DECKS, "clean"),
    "spice15": _decked(make_dcdcmp15_loop, SPICE_DECKS, "adder.128"),
    "spice70": _decked(make_dcdcmp70_loop, SPICE_DECKS, "adder.128"),
    "bjt": _decked(make_bjt_loop, SPICE_DECKS, "adder.128"),
    "fma3d": _decked(make_quad_loop, FMA3D_DECKS, "train"),
    "doall": _plain(fully_parallel_loop, n=2048),
    "chain": _plain(
        lambda n=2048: chain_loop(n, geometric_chain_targets(n, 0.5))
    ),
    "random-deps": _plain(random_dependence_loop, n=2048, density=0.05, max_distance=8),
    "strided-doall": _plain(strided_doall_loop, n=2048),
    "prefix-sum": _plain(prefix_sum_loop, n=2048),
    "stencil": _plain(stencil_loop, n=2048),
    "gather": _plain(gather_loop, n=2048),
    "scatter": _plain(scatter_loop, n=2048),
    "pointer-chase": _plain(pointer_chase_loop, n=512),
    "forest": _plain(transitive_update_loop, n=2048),
}


def resolve_workload(spec: str) -> SpeculativeLoop:
    family, _, deck = spec.partition(":")
    try:
        factory = WORKLOADS[family]
    except KeyError:
        raise SystemExit(
            f"unknown workload {family!r}; try: {', '.join(sorted(WORKLOADS))}"
        ) from None
    try:
        return factory(deck or None)
    except KeyError as exc:
        raise SystemExit(f"workload {family!r}: {exc}") from None


def _seed(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("seed must be non-negative")
    return value


def config_from_args(args) -> RuntimeConfig:
    overrides = {}
    if getattr(args, "faults", None) is not None:
        overrides["fault_plan"] = random_plan(args.faults, n_procs=args.procs)
    if getattr(args, "self_check", False):
        overrides["self_check"] = True
    if getattr(args, "trace", None) is not None:
        overrides["trace_path"] = args.trace
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "backend_workers", None) is not None:
        overrides["backend_workers"] = args.backend_workers
    if getattr(args, "kernels", None) is not None:
        overrides["kernels"] = args.kernels
    if getattr(args, "worker_timeout", None) is not None:
        overrides["worker_timeout"] = args.worker_timeout
    if getattr(args, "max_worker_respawns", None) is not None:
        overrides["max_worker_respawns"] = args.max_worker_respawns
    if getattr(args, "metrics", False):
        overrides["metrics"] = True
    if getattr(args, "perfetto", None) is not None:
        overrides["perfetto_path"] = args.perfetto
    if getattr(args, "status", None) is not None:
        overrides["status_path"] = args.status
    if getattr(args, "resources", False):
        overrides["resources"] = True
    if getattr(args, "crash_dir", None) is not None:
        overrides["crash_dir"] = args.crash_dir
    if getattr(args, "certify", None) is not None:
        overrides["certify"] = args.certify
    elif args.strategy is not None:
        # An explicitly named strategy means "run exactly this": don't
        # let a DOALL/SEQUENTIAL certificate reroute it.  An explicit
        # --certify alongside restores certification's right of way.
        overrides["certify"] = "off"
    strategy_name = args.strategy or "adaptive"
    if strategy_name == "adaptive":
        overrides["feedback_balancing"] = args.feedback
    if strategy_name == "sw":
        overrides["window_size"] = args.window
    try:
        strategy_cls = resolve_strategy(strategy_name)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    return strategy_cls.default_config(**overrides)


def cmd_list(args) -> int:
    for family in sorted(WORKLOADS):
        decks = getattr(WORKLOADS[family], "decks", [])
        suffix = f"  decks: {', '.join(decks)}" if decks else ""
        print(f"{family}{suffix}")
    return 0


def cmd_run(args) -> int:
    loop = resolve_workload(args.workload)
    config = config_from_args(args)
    sinks = [CliProgressSink(sys.stdout)] if args.progress else []
    # Strategies whose behavior is not expressible as a RuntimeConfig
    # (iteration-wise commit, explicit induction selection) bypass the
    # config dispatch and run their registered class directly.
    strategy = None
    if args.strategy in ("iterwise", "induction"):
        strategy = resolve_strategy(args.strategy)()
    try:
        result = parallelize(
            loop, args.procs, config, strategy=strategy, sinks=sinks
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    print(render_stage_trace(result))
    if result.faults_survived or result.retries:
        counts = ", ".join(
            f"{kind}: {count}"
            for kind, count in sorted(result.fault_counts.items())
        )
        dead = ",".join(map(str, result.dead_procs)) or "none"
        print(
            f"faults survived: {result.faults_survived} ({counts}); "
            f"fault retries: {result.retries}; "
            f"degraded stages: {result.degraded_stages}; dead procs: {dead}"
        )
    if result.supervision:
        sup = result.supervision
        fallbacks = ", ".join(
            f"{d['from']}->{d['to']}"
            for d in sup.get("supervise.degradations", [])
        ) or "none"
        print(
            f"worker supervision: respawns: {sup['supervise.respawns']}; "
            f"redispatched blocks: {sup['supervise.redispatched_blocks']}; "
            f"kills: {sup['supervise.kills']}; "
            f"overdue: {sup['supervise.overdue']}; "
            f"backend fallbacks: {fallbacks}"
        )
    if args.breakdown:
        print()
        print(render_breakdown(result))
    if args.metrics:
        print()
        print(render_metrics(result.metrics))
    return 0


def cmd_report(args) -> int:
    if args.bundle is not None:
        from repro.obs.flight import render_bundle

        try:
            print(render_bundle(args.bundle))
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        return 0
    if args.trace is None:
        raise SystemExit("report needs a trace path or --bundle PATH")
    try:
        events = load_trace(args.trace)
        if not events:
            raise SystemExit(f"{args.trace}: empty trace")
        report = run_report(events)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{args.trace}: {exc}") from None
    print(report)
    if args.perfetto is not None:
        written = write_perfetto(events, args.perfetto)
        print(f"\nwrote {written} Perfetto trace entries to {args.perfetto}")
    return 0


def cmd_top(args) -> int:
    from repro.obs.top import follow

    return follow(args.status, interval=args.interval, once=args.once)


def cmd_bench_trend(args) -> int:
    from repro.bench.trend import has_regressions, load_history, render_trend

    try:
        history = load_history(args.results)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{args.results}: {exc}") from None
    print(render_trend(history, threshold=args.threshold, workload=args.workload))
    regressed = has_regressions(history, threshold=args.threshold)
    if regressed:
        print("\nregression against the previous comparable run", file=sys.stderr)
    return 1 if (regressed and args.strict) else 0


def cmd_certify(args) -> int:
    family, _, deck = args.workload.partition(":")
    factory = lambda: resolve_workload(args.workload)  # noqa: E731
    cert = certify(factory, args.procs, tolerant=args.tolerant)
    print(cert.render())
    best = cert.best()
    if best is not None:
        print(f"\nbest strategy: {best.label} ({best.result.speedup:.2f}x)")
    return 0 if cert.ok else 1


def cmd_ddg(args) -> int:
    loop = resolve_workload(args.workload)
    ddg = extract_ddg(
        loop, args.procs, RuntimeConfig.sw(window_size=args.window or 8 * args.procs)
    )
    sched = wavefront_schedule(ddg.graph(), loop.n_iterations)
    print(
        f"{loop.name}: {loop.n_iterations} iterations, {len(ddg.edges)} edges, "
        f"critical path {sched.critical_path}, "
        f"average parallelism {sched.average_parallelism:.1f}"
    )
    wf = execute_wavefront(resolve_workload(args.workload), sched, args.procs)
    print(f"wavefront speedup on p={args.procs}: {wf.speedup:.2f}x "
          f"(extraction cost {ddg.extraction.total_time:.0f}, "
          f"per-use {wf.total_time:.0f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="R-LRPD speculative parallelization runtime",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled workloads").set_defaults(fn=cmd_list)

    def add_common(p):
        p.add_argument("workload", help="family[:deck], see `list`")
        p.add_argument("-p", "--procs", type=int, default=8)

    run_p = sub.add_parser("run", help="run one workload under one strategy")
    add_common(run_p)
    run_p.add_argument(
        "--strategy", choices=strategy_names(), default=None,
        help="iteration-assignment strategy (default adaptive); naming "
        "one explicitly also disables certification dispatch so the "
        "requested strategy actually runs -- pass --certify as well to "
        "let a certificate override it",
    )
    run_p.add_argument("--window", type=int, default=None, help="SW window size")
    run_p.add_argument("--feedback", action="store_true", help="feedback balancing")
    run_p.add_argument("--breakdown", action="store_true", help="cost breakdown table")
    run_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL stage-event trace of the run to PATH",
    )
    run_p.add_argument(
        "--progress", action="store_true",
        help="narrate stages live from the event stream",
    )
    run_p.add_argument(
        "--faults", type=_seed, default=None, metavar="SEED",
        help="inject a reproducible random fault plan derived from SEED",
    )
    run_p.add_argument(
        "--self-check", action="store_true", dest="self_check",
        help="verify untested isolation per stage and the final memory "
        "against a sequential replay",
    )
    run_p.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="execution backend for stage blocks (serial = in-process, "
        "fork = worker-process pool, shm = worker pool over shared-memory "
        "segments; results are bit-identical)",
    )
    run_p.add_argument(
        "--backend-workers", type=int, default=None, dest="backend_workers",
        metavar="N", help="workers for the fork/shm pools (processes) and "
        "the threads pool (threads)",
    )
    run_p.add_argument(
        "--kernels", choices=kernel_names(), default=None,
        help="hot-path kernels implementation (vector = numpy batch "
        "primitives, scalar = pure-Python reference loops; results are "
        "bit-identical, only host time changes)",
    )
    run_p.add_argument(
        "--worker-timeout", type=float, default=None, dest="worker_timeout",
        metavar="SEC", help="floor of the supervisor's per-dispatch worker "
        "deadline; an unresponsive worker is stopped (fork/shm: SIGKILL, "
        "threads: cooperative cancellation) and its blocks re-dispatched "
        "after at most this many seconds",
    )
    run_p.add_argument(
        "--max-worker-respawns", type=int, default=None,
        dest="max_worker_respawns", metavar="N",
        help="worker recoveries a parallel pool may spend on crashes "
        "or hangs before degrading to the next backend down the "
        "shm->fork->serial chain",
    )
    run_p.add_argument(
        "--metrics", action="store_true",
        help="collect runtime metrics (marks, bytes moved, retries) and "
        "print the final registry",
    )
    run_p.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="write a dual-clock Chrome trace-event JSON to PATH "
        "(viewable at https://ui.perfetto.dev); implies span tracing",
    )
    run_p.add_argument(
        "--status", default=None, metavar="PATH",
        help="stream live run status (events + operational records + "
        "resource samples) as JSONL to PATH; watch it with `repro top "
        "PATH` from another terminal (implies --resources)",
    )
    run_p.add_argument(
        "--resources", action="store_true",
        help="sample host resources (RSS, CPU, /dev/shm, worker health) "
        "on a background thread; merged into --perfetto counter tracks",
    )
    run_p.add_argument(
        "--certify", choices=("off", "hint", "trust"), default=None,
        dest="certify",
        help="static certification front-end: hint (default) runs "
        "provably-independent loops on the zero-speculation fast path "
        "and provably-sequential loops in order (exact full-probe "
        "evidence only), trust also acts on affine-model evidence from "
        "sampled probes, off disables certification entirely",
    )
    run_p.add_argument(
        "--crash-dir", default=None, dest="crash_dir", metavar="DIR",
        help="write a crash bundle (flight-recorder rings, config, env) "
        "under DIR when the run dies of an uncaught failure; read it "
        "back with `repro report --bundle`",
    )
    run_p.set_defaults(fn=cmd_run)

    report_p = sub.add_parser(
        "report", help="fold a recorded JSONL trace into summary tables"
    )
    report_p.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace recorded with --trace",
    )
    report_p.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="also export the trace as Chrome trace-event JSON",
    )
    report_p.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="render a crash bundle directory (written by --crash-dir / "
        "REPRO_CRASH_DIR) instead of a trace",
    )
    report_p.set_defaults(fn=cmd_report)

    top_p = sub.add_parser(
        "top", help="live dashboard over a run's --status JSONL stream"
    )
    top_p.add_argument("status", help="status JSONL written by run --status")
    top_p.add_argument(
        "--interval", type=float, default=0.5, metavar="SEC",
        help="poll interval between frames (default %(default)s)",
    )
    top_p.add_argument(
        "--once", action="store_true",
        help="render a single frame from the current file contents and exit",
    )
    top_p.set_defaults(fn=cmd_top)

    trend_p = sub.add_parser(
        "bench-trend",
        help="per-workload/backend speedup trends from BENCH_host.json",
    )
    trend_p.add_argument(
        "results", nargs="?", default="BENCH_host.json",
        help="benchmark results file with a history list "
        "(default %(default)s)",
    )
    trend_p.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRAC",
        help="relative drop vs the previous comparable run flagged as a "
        "regression (default %(default)s)",
    )
    trend_p.add_argument(
        "--workload", default=None,
        help="restrict the table to one workload",
    )
    trend_p.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when the newest entry regressed",
    )
    trend_p.set_defaults(fn=cmd_bench_trend)

    cert_p = sub.add_parser("certify", help="verify all strategies vs sequential")
    add_common(cert_p)
    cert_p.add_argument(
        "--tolerant", action="store_true",
        help="allclose comparison (floating-point reductions)",
    )
    cert_p.set_defaults(fn=cmd_certify)

    ddg_p = sub.add_parser("ddg", help="extract the DDG and wavefront-schedule it")
    add_common(ddg_p)
    ddg_p.add_argument("--window", type=int, default=None)
    ddg_p.set_defaults(fn=cmd_ddg)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
