"""FMA3D's 'Quad' loop (Section 5.2, Fig. 5).

FMA3D is a finite-element code; its dominant loop (56% of sequential time)
updates per-element stress/state arrays through indirection with a call
graph several levels deep -- statically un-analyzable even though the loop
is, in fact, input-independent and fully parallel.  The R-LRPD test
discovers that at run time and finishes in a single stage.

The kernel: element ``i`` gathers its nodal coordinates through the
connectivity array (read-only), reads and rewrites its own stress record
through an element permutation (the indirection that defeats static
analysis), and does the heavy constitutive-model work.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.util.rng import make_rng


@dataclass(frozen=True)
class Fma3dDeck:
    """One FMA3D mesh deck."""

    name: str
    n_elements: int
    nodes_per_element: int = 4
    work_per_element: float = 2.0
    seed: int = 3056

    def __post_init__(self) -> None:
        if self.n_elements < 1 or self.nodes_per_element < 1:
            raise ValueError("deck sizes must be positive")


FMA3D_DECKS: dict[str, Fma3dDeck] = {
    "ref": Fma3dDeck("ref", n_elements=8192),
    "train": Fma3dDeck("train", n_elements=2048),
}


def make_quad_loop(deck: Fma3dDeck | str, instance: int = 0) -> SpeculativeLoop:
    """Build one Quad-loop instantiation (one simulated time step)."""
    if isinstance(deck, str):
        deck = FMA3D_DECKS[deck]
    n = deck.n_elements
    rng = make_rng(deck.seed, "fma3d", deck.name, instance)
    n_nodes = n + deck.nodes_per_element
    conn = rng.integers(0, n_nodes, size=(n, deck.nodes_per_element))
    perm = rng.permutation(n)  # element -> stress-record indirection
    npe = deck.nodes_per_element
    work = deck.work_per_element

    def body(ctx, i):
        gather = 0.0
        for k in range(npe):
            gather += ctx.load("COORD", int(conn[i, k]))  # read-only mesh
        rec = int(perm[i])
        stress = ctx.load("STRESS", rec)
        ctx.store("STRESS", rec, stress * 0.9 + 0.01 * gather)
        ctx.work(work)  # constitutive model evaluation

    return SpeculativeLoop(
        name=f"fma3d_quad[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("STRESS", rng.random(n), tested=True),
            ArraySpec("COORD", rng.random(n_nodes), tested=False),
        ],
    )
