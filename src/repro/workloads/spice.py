"""SPICE 2G6 loops (Section 5.2).

Everything in SPICE is EQUIVALENCEd into one big ``VALUE`` workspace with
multiple levels of indirection -- "a 'total' workspace aliasing problem" --
so no array can be compiler-analyzed and the sparse flavors of the shadow
structures are mandatory.  Three loops are modeled:

* **DCDCMP loop 15** -- sparse LU decomposition: iteration (row) ``i``
  eliminates using previously factored rows; the dependence graph is the
  (input-dependent) circuit topology, partially parallel with a short
  critical path.  The paper extracts the DDG with the sparse R-LRPD test
  and runs a reusable wavefront schedule; for the ``adder.128`` deck it
  reports 14337 iterations with a critical path of 334 (~43x average
  parallelism).  The generator targets a configurable n/cp ratio.
* **DCDCMP loop 70** -- fully parallel with a premature exit; the exit
  bounds the useful iteration count.
* **BJT model evaluation** -- device loop updating the sparse ``Y`` matrix
  with reduction operations (sparse LRPD + sparse reduction optimization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.memory import MemoryImage
from repro.util.rng import make_rng


@dataclass(frozen=True)
class SpiceDeck:
    """One SPICE input deck (a synthetic circuit).

    ``lu_rows`` is the DCDCMP-15 iteration count; ``target_parallelism`` is
    the aimed-for n/critical-path ratio (the adder.128 deck in the paper has
    14337/334 ~ 43); ``deps_per_row`` the average fan-in of a row update.
    """

    name: str
    lu_rows: int
    target_parallelism: float = 43.0
    deps_per_row: float = 2.0
    exit_fraction: float = 0.8  # DCDCMP-70 premature exit point
    devices: int = 2048         # BJT loop length
    updates_per_device: int = 4
    workspace: int = 1 << 20    # the VALUE workspace (sparse shadows!)
    seed: int = 2906

    def __post_init__(self) -> None:
        if self.lu_rows < 1 or self.devices < 1:
            raise ValueError("deck sizes must be positive")
        if self.target_parallelism <= 1.0:
            raise ValueError("target_parallelism must exceed 1")
        if not 0.0 < self.exit_fraction <= 1.0:
            raise ValueError("exit_fraction must be in (0, 1]")


SPICE_DECKS: dict[str, SpiceDeck] = {
    # Scaled-down adder.128: same n/cp ratio as the paper's 14337/334,
    # sized so the full extraction + wavefront pipeline runs in seconds.
    "adder.128": SpiceDeck("adder.128", lu_rows=2868, target_parallelism=43.0),
    "adder.128-full": SpiceDeck("adder.128-full", lu_rows=14337, target_parallelism=43.0),
    "perfect-up": SpiceDeck("perfect-up", lu_rows=2048, target_parallelism=20.0),
}


def _lu_structure(deck: SpiceDeck) -> list[list[int]]:
    """Synthesize a sparse lower-triangular fill pattern.

    Rows are laid out in wavefront levels of width ``target_parallelism``;
    each row beyond level 0 depends on 1..k rows of the previous level
    (guaranteeing the critical path) plus occasional older rows (realistic
    fill-in).  All predecessors have smaller row numbers, as in actual LU
    elimination order.
    """
    rng = make_rng(deck.seed, "spice-lu", deck.name)
    n = deck.lu_rows
    width = max(1, int(round(deck.target_parallelism)))
    preds: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        level = i // width
        if level == 0:
            continue
        prev_lo, prev_hi = (level - 1) * width, min(level * width, n)
        k = max(1, int(rng.poisson(deck.deps_per_row - 1)) + 1)
        chosen = set()
        # One predecessor in the previous level keeps the chain honest.
        chosen.add(int(rng.integers(prev_lo, prev_hi)))
        for _ in range(k - 1):
            j = int(rng.integers(0, prev_hi))
            chosen.add(j)
        preds[i] = sorted(j for j in chosen if j < i)
    return preds


def make_dcdcmp15_loop(deck: SpiceDeck | str) -> SpeculativeLoop:
    """The sparse LU factorization loop (DCDCMP loop 15)."""
    if isinstance(deck, str):
        deck = SPICE_DECKS[deck]
    preds = _lu_structure(deck)
    n = deck.lu_rows
    rng = make_rng(deck.seed, "spice-lu-addr", deck.name)
    # Rows live at scattered workspace addresses (the VALUE aliasing).
    row_addr = rng.choice(deck.workspace, size=n, replace=False)

    def body(ctx, i):
        acc = float(i % 7) + 1.0
        for j in preds[i]:
            acc += 0.01 * ctx.load("VALUE", int(row_addr[j]))
        ctx.store("VALUE", int(row_addr[i]), acc)
        # Elimination work grows with fan-in.
        ctx.work(0.25 * len(preds[i]))

    def inspector(memory: MemoryImage):
        return [
            (
                {("VALUE", int(row_addr[j])) for j in preds[i]},
                {("VALUE", int(row_addr[i]))},
            )
            for i in range(n)
        ]

    return SpeculativeLoop(
        name=f"dcdcmp_15[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("VALUE", np.zeros(deck.workspace), tested=True, sparse=True)],
        inspector=inspector,
    )


def make_dcdcmp70_loop(deck: SpiceDeck | str) -> SpeculativeLoop:
    """Loop 70: fully parallel with a premature exit (paper refs [15, 4]).

    The loop scans the full workspace row range but a data condition stops
    it early (for this synthetic circuit at ``exit_fraction`` of the way
    through).  Sequentially nothing after the exit runs; speculatively all
    processors execute their blocks and the runtime validates the earliest
    exit whose processor's work is correct, discarding the rest -- so the
    loop still completes in one stage, paying only the speculated tail as
    overhead.
    """
    if isinstance(deck, str):
        deck = SPICE_DECKS[deck]
    n = deck.lu_rows
    exit_at = max(0, min(n - 1, int(n * deck.exit_fraction)))
    rng = make_rng(deck.seed, "spice-70", deck.name)
    addr = rng.choice(deck.workspace, size=n, replace=False)
    # The convergence flag the exit condition reads (input data).
    converged = np.zeros(n, dtype=bool)
    converged[exit_at:] = True

    def body(ctx, i):
        v = ctx.load("VALUE", int(addr[i]))
        ctx.store("VALUE", int(addr[i]), v * 0.99 + 1.0)
        if ctx.load("CONV", i) > 0.5:  # premature-exit condition
            ctx.exit_loop()

    return SpeculativeLoop(
        name=f"dcdcmp_70[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("VALUE", np.zeros(deck.workspace), tested=True, sparse=True),
            ArraySpec("CONV", converged.astype(np.float64), tested=False),
        ],
    )


def make_bjt_list_loop(deck: SpiceDeck | str):
    """The BJT loop in its true form: a *linked list* of devices.

    SPICE threads each device model's instances through next-pointers in
    the workspace; there is no iteration range until the list is walked.
    This variant exercises the speculative traversal distribution
    (:mod:`repro.core.listtraversal`): the devices sit in a shuffled
    linked list, and each visit stamps the shared Y matrix via reductions.
    """
    from repro.core.listtraversal import LinkedListLoop

    if isinstance(deck, str):
        deck = SPICE_DECKS[deck]
    n = deck.devices
    rng = make_rng(deck.seed, "spice-bjt", deck.name)
    n_nodes = max(4, n // 4)
    stamps = rng.integers(0, n_nodes, size=(n, deck.updates_per_device))
    params = rng.random(n)
    upd = deck.updates_per_device

    # Thread the devices into a random-order singly linked list.
    order = rng.permutation(n)
    nxt = np.full(n, -1.0)
    for a, b in zip(order, order[1:]):
        nxt[a] = float(b)
    head = int(order[0])

    def body(ctx, node, position):
        g = ctx.load("PARAMS", node)
        for k in range(upd):
            ctx.update("Y", int(stamps[node, k]), g * (k + 1))
        ctx.work(0.5)

    return LinkedListLoop(
        name=f"bjt_list[{deck.name}]",
        head=head,
        next_array="NEXT",
        body=body,
        arrays=[
            ArraySpec("Y", np.zeros(n_nodes), tested=True, sparse=True),
            ArraySpec("PARAMS", params, tested=False),
            ArraySpec("NEXT", nxt, tested=False),
        ],
        reductions={"Y": ReductionOp.SUM},
        max_nodes=n,
        node_work=lambda k: 1.0,
    )


def make_bjt_loop(deck: SpiceDeck | str) -> SpeculativeLoop:
    """The BJT model-evaluation loop: sparse reductions into the Y matrix."""
    if isinstance(deck, str):
        deck = SPICE_DECKS[deck]
    n = deck.devices
    rng = make_rng(deck.seed, "spice-bjt", deck.name)
    # Each device stamps a handful of Y-matrix positions; devices share
    # nodes, so the same position is updated from many iterations.
    n_nodes = max(4, n // 4)
    stamps = rng.integers(0, n_nodes, size=(n, deck.updates_per_device))
    params = rng.random(n)
    upd = deck.updates_per_device

    def body(ctx, i):
        g = ctx.load("PARAMS", i)  # untested read-only device parameters
        for k in range(upd):
            ctx.update("Y", int(stamps[i, k]), g * (k + 1))
        ctx.work(0.5)  # model evaluation is compute-heavy

    return SpeculativeLoop(
        name=f"bjt[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("Y", np.zeros(n_nodes), tested=True, sparse=True),
            ArraySpec("PARAMS", params, tested=False),
        ],
        reductions={"Y": ReductionOp.SUM},
    )
