"""EXTEND 400 -- TRACK's track-extension loop.

Paper characteristics (Section 5.2): the loop reads a read-only region of
the track arrays and always writes at their end, extending them by one
*tentative* slot per iteration; the slot is kept only when a loop-variant
condition materializes, so the arrays are indexed by a conditionally
incremented counter (``LSTTRK``) whose values cannot be precomputed.  The
paper runs two doalls: offsets-from-zero plus reference-range collection,
then a prefix sum of the per-processor increments, then re-execution with
correct offsets (speedup ~60% of hand-parallelization -- i.e. roughly the
one-doall ideal halved).

The kernel mirrors that: iteration ``i`` reads an observation and a random
read-only track (index < the initial count), tentatively writes the slot at
``peek(LSTTRK)``, and bumps the counter when the observation confirms a new
track.  The ``lookback_prob`` deck knob makes some iterations read the
*previous extension slot* -- a genuine cross-processor flow dependence that
triggers the R-LRPD recursion and pushes PR below 1 (the paper's
input-dependent PR in Fig. 10a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ExtendDeck:
    """One EXTEND input deck."""

    name: str
    n: int
    base_tracks: int = 64
    keep_prob: float = 0.6
    lookback_prob: float = 0.0
    max_lookback: int = 64
    """How far back a correlating read may reach among recent extensions;
    larger values make cross-processor flow dependences more likely."""
    seed: int = 1944

    def __post_init__(self) -> None:
        if self.n < 1 or self.base_tracks < 1:
            raise ValueError("deck needs n >= 1 and base_tracks >= 1")
        for p in (self.keep_prob, self.lookback_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


EXTEND_DECKS: dict[str, ExtendDeck] = {
    "clean": ExtendDeck("clean", n=4096, keep_prob=0.55),
    "light-deps": ExtendDeck("light-deps", n=4096, keep_prob=0.55, lookback_prob=0.002),
    "heavy-deps": ExtendDeck("heavy-deps", n=4096, keep_prob=0.55, lookback_prob=0.01),
}


def make_extend_loop(deck: ExtendDeck | str, instance: int = 0) -> SpeculativeLoop:
    """Build one EXTEND instantiation."""
    if isinstance(deck, str):
        deck = EXTEND_DECKS[deck]
    n = deck.n
    base = deck.base_tracks
    rng = make_rng(deck.seed, "extend", deck.name, instance)

    obs = rng.random(n)
    ref_idx = rng.integers(0, base, size=n)  # read-only region indices
    lookback = rng.random(n) < deck.lookback_prob
    lb_gap = rng.integers(1, max(2, deck.max_lookback + 1), size=n)
    track_size = base + n + 1  # worst case: every iteration keeps its slot

    keep_threshold = 1.0 - deck.keep_prob

    def body(ctx, i):
        o = ctx.load("OBS", i)  # untested read-only observations
        ref = ctx.load("TRACK", int(ref_idx[i]))  # read-only track region
        slot = ctx.peek("LSTTRK")
        value = ref * 0.5 + o
        back = slot - int(lb_gap[i])
        if lookback[i] and back >= base:
            # Correlate against a recent extension: a genuine flow
            # dependence when that slot was produced by a lower processor.
            value += 0.1 * ctx.load("TRACK", back)
        ctx.store("TRACK", slot, value)  # tentative extension
        if o > keep_threshold:  # loop-variant condition: keep the track
            ctx.bump("LSTTRK")

    track_init = np.zeros(track_size)
    track_init[:base] = rng.random(base)

    return SpeculativeLoop(
        name=f"extend_400[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("TRACK", track_init, tested=True),
            ArraySpec("OBS", obs, tested=False),
        ],
        inductions=[InductionSpec("LSTTRK", initial=base)],
    )
