"""A persistent TRACK simulation: the three loops sharing state over time.

The per-loop generators in :mod:`track_nlfilt` / :mod:`track_extend` /
:mod:`track_fptrak` materialize fresh state per instantiation -- right for
figure sweeps, but the real program is a *simulation*: every time step the
tracker extends the shared track file with new detections (EXTEND), smooths
the live tracks (NLFILT), and refreshes their records (FPTRAK), all against
the same arrays.  :class:`TrackSimulation` models that: one persistent
:class:`~repro.machine.memory.MemoryImage`, three speculative loops per
step executed against it, PR and speedup aggregated over the program's
life.

Because each step's loops run against the state the previous steps
produced, this is also the strongest end-to-end soundness test in the
repository: any mis-commit anywhere compounds across steps and is caught
by comparing against a 1-processor twin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RuntimeConfig
from repro.core.results import ProgramResult, RunResult
from repro.core.runner import parallelize
from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage, SharedArray
from repro.util.rng import make_rng


@dataclass(frozen=True)
class TrackSimConfig:
    """Shape of the simulated tracking problem."""

    max_tracks: int = 4096
    initial_tracks: int = 48
    detections_per_step: int = 96
    confirm_prob: float = 0.55
    smooth_prob: float = 0.04
    smooth_distance: int = 6
    seed: int = 400

    def __post_init__(self) -> None:
        if self.initial_tracks >= self.max_tracks:
            raise ValueError("initial_tracks must leave room to extend")
        if not 0.0 <= self.confirm_prob <= 1.0:
            raise ValueError("confirm_prob must be in [0, 1]")


class TrackSimulation:
    """The TRACK program with persistent shared state."""

    def __init__(self, sim: TrackSimConfig | None = None) -> None:
        self.sim = sim or TrackSimConfig()
        rng = make_rng(self.sim.seed, "track-sim-init")
        m = self.sim.max_tracks
        self.memory = MemoryImage(
            [
                SharedArray("TRACK", np.zeros(m)),
                SharedArray("RECORDS", np.zeros(m)),
            ]
        )
        self.memory["TRACK"].data[: self.sim.initial_tracks] = rng.random(
            self.sim.initial_tracks
        )
        self.n_tracks = self.sim.initial_tracks
        self.step_index = 0
        self.runs: list[RunResult] = []

    # -- the three loops of one time step ---------------------------------------

    def _extend_loop(self, obs: np.ndarray, ref_idx: np.ndarray) -> SpeculativeLoop:
        base = self.n_tracks
        threshold = 1.0 - self.sim.confirm_prob

        def body(ctx, i):
            o = ctx.load("OBS", i)
            ref = ctx.load("TRACK", int(ref_idx[i]))
            slot = ctx.peek("LSTTRK")
            ctx.store("TRACK", slot, ref * 0.3 + o)
            if o > threshold:
                ctx.bump("LSTTRK")

        return SpeculativeLoop(
            f"sim_extend[{self.step_index}]",
            len(obs),
            body,
            arrays=[
                ArraySpec("TRACK", np.zeros(self.sim.max_tracks)),
                ArraySpec("RECORDS", np.zeros(self.sim.max_tracks)),
                ArraySpec("OBS", obs, tested=False),
            ],
            inductions=[InductionSpec("LSTTRK", initial=base)],
        )

    def _nlfilt_loop(self, sinks: np.ndarray) -> SpeculativeLoop:
        n = self.n_tracks

        def body(ctx, i):
            v = ctx.load("TRACK", i)
            sink = int(sinks[i])
            if sink >= 0:
                ctx.store("TRACK", min(sink, n - 1), v * 0.9)
            else:
                ctx.store("TRACK", i, v * 0.99)

        return SpeculativeLoop(
            f"sim_nlfilt[{self.step_index}]",
            n,
            body,
            arrays=[
                ArraySpec("TRACK", np.zeros(self.sim.max_tracks)),
                ArraySpec("RECORDS", np.zeros(self.sim.max_tracks)),
            ],
        )

    def _fptrak_loop(self) -> SpeculativeLoop:
        def body(ctx, i):
            t = ctx.load("TRACK", i)
            r = ctx.load("RECORDS", i)
            ctx.store("RECORDS", i, r * 0.5 + t)

        return SpeculativeLoop(
            f"sim_fptrak[{self.step_index}]",
            self.n_tracks,
            body,
            arrays=[
                ArraySpec("TRACK", np.zeros(self.sim.max_tracks)),
                ArraySpec("RECORDS", np.zeros(self.sim.max_tracks)),
            ],
        )

    # -- driving -----------------------------------------------------------------

    def step(
        self,
        n_procs: int,
        config: RuntimeConfig | None = None,
        costs: CostModel | None = None,
    ) -> list[RunResult]:
        """Advance the simulation one time step on ``n_procs`` processors."""
        config = config or RuntimeConfig.adaptive()
        rng = make_rng(self.sim.seed, "track-sim-step", self.step_index)
        room = self.sim.max_tracks - self.n_tracks - 1
        n_obs = min(self.sim.detections_per_step, max(0, room))
        obs = rng.random(n_obs)
        ref_idx = rng.integers(0, self.n_tracks, size=max(1, n_obs))[:n_obs]

        step_runs: list[RunResult] = []
        if n_obs:
            # OBS is per-step input data: (re)publish it into shared memory.
            if "OBS" in self.memory:
                self.memory["OBS"].data = obs.copy()
            else:
                self.memory.add(SharedArray("OBS", obs))
            extend = self._extend_loop(obs, ref_idx)
            result = parallelize(extend, n_procs, config, costs, memory=self.memory)
            self.n_tracks = result.induction_finals["LSTTRK"]
            step_runs.append(result)

        # Guarded smoothing sinks: mostly none, occasionally a nearby track.
        draws = rng.random(self.n_tracks)
        distances = rng.integers(1, self.sim.smooth_distance + 1, size=self.n_tracks)
        sinks = np.where(
            draws < self.sim.smooth_prob,
            np.arange(self.n_tracks) + distances,
            -1,
        )
        nlfilt = self._nlfilt_loop(sinks)
        step_runs.append(
            parallelize(nlfilt, n_procs, config, costs, memory=self.memory)
        )
        fptrak = self._fptrak_loop()
        step_runs.append(
            parallelize(fptrak, n_procs, config, costs, memory=self.memory)
        )

        self.runs.extend(step_runs)
        self.step_index += 1
        return step_runs

    def run(
        self,
        steps: int,
        n_procs: int,
        config: RuntimeConfig | None = None,
        costs: CostModel | None = None,
    ) -> ProgramResult:
        """Run several time steps; aggregate PR/speedup over all loops."""
        for _ in range(steps):
            self.step(n_procs, config, costs)
        program = ProgramResult(
            loop_name=f"track_sim[{steps} steps]",
            strategy=(config or RuntimeConfig.adaptive()).label(),
            n_procs=n_procs,
        )
        for run in self.runs:
            program.add(run)
        return program

    def snapshot(self) -> dict[str, np.ndarray]:
        return self.memory.snapshot()
