"""FPTRAK 300 -- TRACK's track-file update loop.

The paper describes it as "very similar to, yet simpler than, EXTEND 400":
the array under test is privatized, and the same conditionally incremented
counter indexes the appended records.  The kernel therefore reuses the
EXTEND structure minus the cross-track reads: each iteration writes a
scratch record (write-before-read -- the privatizable pattern), decides
whether to append it, and only rarely (deck knob) inspects the previous
append, which is the dependence that makes its PR input-dependent
(Fig. 11a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loopir.induction import InductionSpec
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.util.rng import make_rng


@dataclass(frozen=True)
class FptrakDeck:
    """One FPTRAK input deck."""

    name: str
    n: int
    base_records: int = 32
    append_prob: float = 0.5
    inspect_prob: float = 0.0
    max_inspect_gap: int = 24
    """How far back an inspecting read may reach among recent appends."""
    scratch_slots: int = 4
    seed: int = 300

    def __post_init__(self) -> None:
        if self.n < 1 or self.base_records < 1 or self.scratch_slots < 1:
            raise ValueError("invalid deck sizes")
        for p in (self.append_prob, self.inspect_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


FPTRAK_DECKS: dict[str, FptrakDeck] = {
    "clean": FptrakDeck("clean", n=3072),
    "light-deps": FptrakDeck("light-deps", n=3072, inspect_prob=0.003),
    "heavy-deps": FptrakDeck("heavy-deps", n=3072, inspect_prob=0.01),
}


def make_fptrak_loop(deck: FptrakDeck | str, instance: int = 0) -> SpeculativeLoop:
    """Build one FPTRAK instantiation."""
    if isinstance(deck, str):
        deck = FPTRAK_DECKS[deck]
    n = deck.n
    base = deck.base_records
    rng = make_rng(deck.seed, "fptrak", deck.name, instance)

    meas = rng.random(n)
    inspect = rng.random(n) < deck.inspect_prob
    gaps = rng.integers(1, max(2, deck.max_inspect_gap + 1), size=n)
    rec_size = base + n + 1
    slots = deck.scratch_slots
    append_threshold = 1.0 - deck.append_prob

    def body(ctx, i):
        m = ctx.load("MEAS", i)  # untested read-only measurements
        # Privatizable scratch: written before read, shared slot indices.
        slot = i % slots
        ctx.store("SCRATCH", slot, m * 2.0)
        work = ctx.load("SCRATCH", slot)
        rec = ctx.peek("NRECS")
        value = work + 0.25
        back = rec - int(gaps[i])
        if inspect[i] and back >= base:
            value += 0.05 * ctx.load("RECORDS", back)
        ctx.store("RECORDS", rec, value)
        if m > append_threshold:
            ctx.bump("NRECS")

    return SpeculativeLoop(
        name=f"fptrak_300[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("RECORDS", np.zeros(rec_size), tested=True),
            ArraySpec("SCRATCH", np.zeros(slots), tested=True),
            ArraySpec("MEAS", meas, tested=False),
        ],
        inductions=[InductionSpec("NRECS", initial=base)],
    )
