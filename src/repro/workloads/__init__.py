"""Workload kernels reproducing the dependence structure of the paper's
benchmark loops (TRACK, SPICE2G6, FMA3D) plus synthetic generators.

The original Fortran sources and PERFECT/SPEC input decks are proprietary;
each module here replicates the published *access-pattern characteristics*
that drive the figures -- guarded short-distance writes (NLFILT), a
conditionally incremented induction counter over extended arrays (EXTEND,
FPTRAK), sparse-LU fill with a short critical path (DCDCMP loop 15),
fully parallel loops behind indirection (FMA3D Quad, DCDCMP loop 70), and
sparse reductions (BJT) -- with parameterized, seeded input decks.
"""

from repro.workloads.synthetic import (
    chain_loop,
    fully_parallel_loop,
    geometric_chain_targets,
    geometric_rd_targets,
    linear_chain_targets,
    privatizable_loop,
    copyin_loop,
    prefix_sum_loop,
    reduction_loop,
    random_dependence_loop,
    strided_doall_loop,
)
from repro.workloads.track_nlfilt import make_nlfilt_loop, NLFILT_DECKS, NlfiltDeck
from repro.workloads.track_extend import make_extend_loop, EXTEND_DECKS, ExtendDeck
from repro.workloads.track_fptrak import make_fptrak_loop, FPTRAK_DECKS
from repro.workloads.spice import (
    make_dcdcmp15_loop,
    make_dcdcmp70_loop,
    make_bjt_list_loop,
    make_bjt_loop,
    SPICE_DECKS,
    SpiceDeck,
)
from repro.workloads.fma3d import make_quad_loop, FMA3D_DECKS
from repro.workloads.track_sim import TrackSimConfig, TrackSimulation
from repro.workloads.spice_sim import (
    SpiceProgramResult,
    SpiceSimulation,
    run_spice_program,
)
from repro.workloads.patterns import (
    gather_loop,
    pointer_chase_loop,
    scatter_loop,
    stencil_loop,
    transitive_update_loop,
)

__all__ = [
    "chain_loop",
    "fully_parallel_loop",
    "geometric_chain_targets",
    "geometric_rd_targets",
    "linear_chain_targets",
    "privatizable_loop",
    "copyin_loop",
    "prefix_sum_loop",
    "strided_doall_loop",
    "reduction_loop",
    "random_dependence_loop",
    "make_nlfilt_loop",
    "NLFILT_DECKS",
    "NlfiltDeck",
    "make_extend_loop",
    "EXTEND_DECKS",
    "ExtendDeck",
    "make_fptrak_loop",
    "FPTRAK_DECKS",
    "make_dcdcmp15_loop",
    "make_dcdcmp70_loop",
    "make_bjt_loop",
    "make_bjt_list_loop",
    "SPICE_DECKS",
    "SpiceDeck",
    "make_quad_loop",
    "FMA3D_DECKS",
    "TrackSimulation",
    "TrackSimConfig",
    "SpiceSimulation",
    "SpiceProgramResult",
    "run_spice_program",
    "stencil_loop",
    "gather_loop",
    "scatter_loop",
    "pointer_chase_loop",
    "transitive_update_loop",
]
