"""A persistent SPICE simulation: schedule reuse across Newton iterations.

The paper extracts DCDCMP-15's wavefront schedule once and reuses it "
throughout the remainder of the program execution" because the dependence
structure is the circuit topology, which transient analysis never changes
-- only the matrix *values* change between Newton iterations.  This driver
models that program shape:

* one persistent workspace (the ``VALUE`` array) carries the matrix values
  across iterations;
* every Newton iteration runs the BJT model-evaluation loop (sparse
  reductions refresh the stamps) followed by the LU factorization loop;
* the first iteration pays DDG extraction; every later iteration reuses
  the wavefront schedule at doall-like cost.

:func:`run_spice_program` returns per-iteration results and the aggregate,
so the amortization curve -- the headline of Fig. 6 -- is directly
observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import RuntimeConfig
from repro.core.ddg import extract_ddg
from repro.core.results import RunResult
from repro.core.runner import parallelize
from repro.core.wavefront import WavefrontSchedule, execute_wavefront, wavefront_schedule
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage, SharedArray
from repro.util.rng import make_rng
from repro.workloads.spice import SpiceDeck, SPICE_DECKS, _lu_structure


@dataclass
class SpiceIterationResult:
    """One Newton iteration: model evaluation + factorization."""

    index: int
    bjt: RunResult
    lu: RunResult
    extraction_time: float = 0.0

    @property
    def total_time(self) -> float:
        return self.bjt.total_time + self.lu.total_time + self.extraction_time

    @property
    def sequential_work(self) -> float:
        return self.bjt.sequential_work + self.lu.sequential_work


@dataclass
class SpiceProgramResult:
    """The whole transient analysis."""

    deck_name: str
    n_procs: int
    schedule: WavefrontSchedule
    iterations: list[SpiceIterationResult] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(it.total_time for it in self.iterations)

    @property
    def sequential_work(self) -> float:
        return sum(it.sequential_work for it in self.iterations)

    @property
    def speedup(self) -> float:
        t = self.total_time
        return self.sequential_work / t if t > 0 else 1.0

    def per_iteration_speedups(self) -> list[float]:
        return [
            it.sequential_work / it.total_time if it.total_time > 0 else 1.0
            for it in self.iterations
        ]


class SpiceSimulation:
    """Persistent workspace + fixed circuit topology across iterations."""

    def __init__(self, deck: SpiceDeck | str) -> None:
        if isinstance(deck, str):
            deck = SPICE_DECKS[deck]
        self.deck = deck
        rng = make_rng(deck.seed, "spice-sim")
        self.preds = _lu_structure(deck)
        self.row_addr = rng.choice(deck.workspace, size=deck.lu_rows, replace=False)
        n_nodes = max(4, deck.devices // 4)
        self.stamps = rng.integers(
            0, n_nodes, size=(deck.devices, deck.updates_per_device)
        )
        self.node_addr = rng.choice(
            np.setdiff1d(np.arange(deck.workspace), self.row_addr, assume_unique=False),
            size=n_nodes,
            replace=False,
        )
        self.params = rng.random(deck.devices)
        self.memory = MemoryImage([SharedArray("VALUE", np.zeros(deck.workspace))])
        self.schedule: WavefrontSchedule | None = None
        self.iteration = 0

    # -- the two loops of one Newton iteration -----------------------------------

    def _bjt_loop(self) -> SpeculativeLoop:
        deck, stamps, node_addr = self.deck, self.stamps, self.node_addr
        params, step = self.params, self.iteration
        upd = deck.updates_per_device

        def body(ctx, i):
            g = params[i] * (1.0 + 0.01 * step)
            for k in range(upd):
                ctx.update("VALUE", int(node_addr[stamps[i, k]]), g * (k + 1))
            ctx.work(0.5)

        return SpeculativeLoop(
            f"spice_bjt[{step}]",
            deck.devices,
            body,
            arrays=[
                ArraySpec("VALUE", np.zeros(deck.workspace), tested=True, sparse=True)
            ],
            reductions={"VALUE": ReductionOp.SUM},
        )

    def _lu_loop(self) -> SpeculativeLoop:
        deck, preds, row_addr = self.deck, self.preds, self.row_addr
        step = self.iteration

        def body(ctx, i):
            acc = float((i + step) % 7) + 1.0
            for j in preds[i]:
                acc += 0.01 * ctx.load("VALUE", int(row_addr[j]))
            ctx.store("VALUE", int(row_addr[i]), acc)
            ctx.work(0.25 * len(preds[i]))

        return SpeculativeLoop(
            f"spice_lu[{step}]",
            deck.lu_rows,
            body,
            arrays=[
                ArraySpec("VALUE", np.zeros(deck.workspace), tested=True, sparse=True)
            ],
        )

    # -- driving -----------------------------------------------------------------

    def newton_iteration(
        self,
        n_procs: int,
        costs: CostModel | None = None,
        window: int | None = None,
    ) -> SpiceIterationResult:
        """Run one model-evaluation + factorization pair."""
        bjt = parallelize(self._bjt_loop(), n_procs, costs=costs, memory=self.memory)

        extraction_time = 0.0
        lu_loop = self._lu_loop()
        if self.schedule is None:
            # First iteration: extract the DDG while executing.
            ddg = extract_ddg(
                lu_loop,
                n_procs,
                RuntimeConfig.sw(window_size=window or 16 * n_procs),
                costs=costs,
                memory=self.memory,
            )
            self.schedule = wavefront_schedule(ddg.graph(), lu_loop.n_iterations)
            lu = ddg.extraction
        else:
            # Topology unchanged: reuse the schedule at doall-like cost.
            lu = execute_wavefront(
                lu_loop, self.schedule, n_procs, costs=costs, memory=self.memory
            )
        result = SpiceIterationResult(
            index=self.iteration, bjt=bjt, lu=lu, extraction_time=extraction_time
        )
        self.iteration += 1
        return result


def run_spice_program(
    deck: SpiceDeck | str,
    n_procs: int,
    iterations: int,
    costs: CostModel | None = None,
) -> SpiceProgramResult:
    """Run a transient analysis of ``iterations`` Newton iterations."""
    sim = SpiceSimulation(deck)
    results = [sim.newton_iteration(n_procs, costs) for _ in range(iterations)]
    assert sim.schedule is not None
    return SpiceProgramResult(
        deck_name=sim.deck.name,
        n_procs=n_procs,
        schedule=sim.schedule,
        iterations=results,
    )
