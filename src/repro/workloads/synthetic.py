"""Synthetic loops with precisely controlled dependence structure.

These drive the Section 4 model validation (Fig. 4), the copy-in /
privatization ablation, and the property-based test suite.  The central
building block is :func:`chain_loop`: a loop where iteration ``t`` reads the
element written by iteration ``t-1`` exactly for the chosen targets ``t``,
so the cross-processor dependence pattern -- and therefore the stage/commit
behavior of every strategy -- is fully predictable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.memory import MemoryImage
from repro.util.rng import make_rng


def _chain_inspector(n: int, read_targets: frozenset[int]):
    """Address trace of a chain loop (it has a trivial inspector)."""

    def inspector(memory: MemoryImage) -> list[tuple[set, set]]:
        trace: list[tuple[set, set]] = []
        for i in range(n):
            reads = {("A", i - 1)} if i in read_targets else set()
            trace.append((reads, {("A", i)}))
        return trace

    return inspector


def chain_loop(
    n: int,
    targets: Sequence[int],
    name: str = "chain",
    work: float = 1.0,
) -> SpeculativeLoop:
    """A loop with flow dependences exactly ``(t-1) -> t`` for each target.

    Every iteration ``i`` writes ``A[i] = i + (A[i-1] if i is a target)``;
    a target's read of ``A[t-1]`` is a distance-1 flow dependence that
    invalidates speculation whenever ``t-1`` and ``t`` land on different
    processors in the same stage.
    """
    read_targets = frozenset(t for t in targets)
    for t in read_targets:
        if not 1 <= t < n:
            raise ValueError(f"chain target {t} outside [1, {n})")

    def body(ctx, i):
        value = float(i)
        if i in read_targets:
            value += ctx.load("A", i - 1)
        ctx.store("A", i, value)

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("A", np.zeros(n))],
        iter_work=(lambda i: work) if work != 1.0 else None,
        inspector=_chain_inspector(n, read_targets),
    )


def geometric_chain_targets(n: int, alpha: float, max_targets: int = 64) -> list[int]:
    """Targets making an RD run lose fraction ``alpha`` of the remainder per
    stage: dependences sit at ``n * (1 - alpha^k)`` for ``k = 1, 2, ...``.

    With redistribution over ``p | n*alpha^k`` the target is the first
    iteration of a block, so each stage commits exactly ``1 - alpha`` of
    what remained.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    targets: list[int] = []
    k = 1
    while len(targets) < max_targets:
        t = int(round(n * (1.0 - alpha**k)))
        if t >= n or (targets and t <= targets[-1]):
            break
        if t >= 1:
            targets.append(t)
        k += 1
    return targets


def geometric_rd_targets(n: int, alpha: float, p: int) -> list[int]:
    """Targets tuned to the RD partition grid for arbitrary ``alpha``.

    :func:`geometric_chain_targets` only lands on block boundaries when
    ``alpha`` and ``n/p`` are powers of two.  This variant *simulates* the
    redistribution partition stage by stage: each stage's target is the
    start of the block at position ``round((1-alpha) * p)``, so an
    always-redistribute run commits fraction ``1 - alpha`` of the remainder
    at every stage regardless of divisibility.
    """
    from repro.util.blocks import partition_even

    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if p < 2:
        raise ValueError("p must be at least 2")
    f = max(1, min(p - 1, int(round((1.0 - alpha) * p))))
    targets: list[int] = []
    committed = 0
    while n - committed >= 2 * p:
        blocks = partition_even(committed, n, list(range(p)))
        t = blocks[f].start
        if t <= committed or t >= n:
            break
        targets.append(t)
        committed = t
    return targets


def linear_chain_targets(n: int, p: int) -> list[int]:
    """Targets at every initial block boundary: an NRD run commits exactly
    one processor's block per stage (the fully 'sequentialized' beta loop
    with ``beta = (p-1)/p``, ``k_s = p``)."""
    if p < 1:
        raise ValueError("p must be at least 1")
    return [k * n // p for k in range(1, p) if 1 <= k * n // p < n]


def fully_parallel_loop(n: int, name: str = "doall", work: float = 1.0) -> SpeculativeLoop:
    """Each iteration touches only its own element: PR = 1, one stage."""

    def body(ctx, i):
        x = ctx.load("A", i)
        ctx.store("A", i, x * 2.0 + 1.0)

    def inspector(memory: MemoryImage):
        return [({("A", i)}, {("A", i)}) for i in range(n)]

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("A", np.arange(n, dtype=np.float64))],
        iter_work=(lambda i: work) if work != 1.0 else None,
        inspector=inspector,
    )


def strided_doall_loop(
    n: int, stride: int = 2, name: str = "strided-doall"
) -> SpeculativeLoop:
    """A certifiably-DOALL loop with a non-trivial affine access pattern.

    Iteration ``i`` reads ``B[stride * i]`` and both reads and writes
    ``A[i]``: every access site is affine in ``i`` and the written sites
    are pairwise disjoint over the iteration space, so the static
    certifier proves independence from a full probe (small ``n``) or from
    the fitted affine model (sampled probe) -- the zero-speculation fast
    path applies either way.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")

    def body(ctx, i):
        b = ctx.load("B", stride * i)
        x = ctx.load("A", i)
        ctx.store("A", i, x + 0.25 * b)

    def inspector(memory: MemoryImage):
        return [
            ({("A", i), ("B", stride * i)}, {("A", i)}) for i in range(n)
        ]

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("A", np.arange(n, dtype=np.float64)),
            ArraySpec("B", np.ones(stride * n)),
        ],
        inspector=inspector,
    )


def prefix_sum_loop(n: int, name: str = "prefix-sum") -> SpeculativeLoop:
    """A certifiably-SEQUENTIAL loop: a full-length flow chain.

    ``A[i] = A[i-1] + B[i]`` -- every iteration reads the element the
    previous one wrote, so the flow-dependence chain covers the whole
    iteration space and speculation commits one iteration per stage.  The
    certifier proves this and routes the loop straight to the in-order
    fast path.
    """

    def body(ctx, i):
        acc = ctx.load("A", i - 1) if i > 0 else 0.0
        ctx.store("A", i, acc + ctx.load("B", i))

    def inspector(memory: MemoryImage):
        trace = []
        for i in range(n):
            reads = {("B", i)} | ({("A", i - 1)} if i > 0 else set())
            trace.append((reads, {("A", i)}))
        return trace

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("A", np.zeros(n)),
            ArraySpec("B", np.ones(n)),
        ],
        inspector=inspector,
    )


def privatizable_loop(n: int, n_temp: int = 8, name: str = "privatizable") -> SpeculativeLoop:
    """Every iteration writes a shared temporary before reading it.

    All processors reuse the same ``TMP`` elements, but the write-first
    pattern makes them privatizable: valid under both the privatization and
    copy-in conditions despite massive write/write sharing.
    """

    def body(ctx, i):
        slot = i % n_temp
        ctx.store("TMP", slot, float(i))
        t = ctx.load("TMP", slot)
        ctx.store("OUT", i, t + 1.0)

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("TMP", np.zeros(max(1, n_temp))),
            ArraySpec("OUT", np.zeros(n)),
        ],
    )


def copyin_loop(n: int, name: str = "copyin") -> SpeculativeLoop:
    """The ``(Read* | (Write|Read)*)`` pattern separating the two conditions
    (Section 2).

    Iteration ``i`` reads its *forward* neighbor ``A[i+1]`` (the old value)
    and then writes ``A[i]``: every written element is exposed-read by the
    preceding iteration, so at each block boundary a lower processor reads
    an element a higher processor writes.  The privatization condition
    rejects that (a written element with a read not covered by a local
    write); the copy-in condition accepts it because the highest reading
    processor never exceeds the lowest writing one -- all anti, no flow.
    """

    def body(ctx, i):
        nxt = ctx.load("A", i + 1)  # old value of the forward neighbor
        ctx.store("A", i, nxt * 0.5 + i)

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("A", np.ones(n + 1))],
    )


def reduction_loop(
    n: int,
    n_bins: int = 16,
    seed: int = 0,
    name: str = "histogram",
) -> SpeculativeLoop:
    """A histogram: every iteration updates a shared bin with ``+=``.

    All bins collide across all processors; speculative reduction
    parallelization validates the access pattern and commits per-processor
    partials, so the loop still runs in one stage.
    """
    rng = make_rng(seed, "reduction", n)
    bins = rng.integers(0, n_bins, size=n)

    def body(ctx, i):
        ctx.update("H", int(bins[i]), 1.0)

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("H", np.zeros(n_bins))],
        reductions={"H": ReductionOp.SUM},
    )


def random_dependence_loop(
    n: int,
    density: float,
    max_distance: int,
    seed: int = 0,
    name: str = "random-deps",
) -> SpeculativeLoop:
    """Random short-distance flow dependences (property-test workhorse).

    With probability ``density`` iteration ``i`` reads ``A[i - d]`` for a
    random ``d in [1, max_distance]`` before writing ``A[i]``; the resulting
    dependence pattern is irregular but deterministic per seed.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    rng = make_rng(seed, "random-deps", n)
    has_read = rng.random(n) < density
    distances = rng.integers(1, max_distance + 1, size=n)
    sources = np.maximum(0, np.arange(n) - distances)

    def body(ctx, i):
        value = float(i)
        if has_read[i] and sources[i] < i:
            value += 0.5 * ctx.load("A", int(sources[i]))
        ctx.store("A", i, value)

    def inspector(memory: MemoryImage):
        trace = []
        for i in range(n):
            reads = (
                {("A", int(sources[i]))}
                if has_read[i] and sources[i] < i
                else set()
            )
            trace.append((reads, {("A", i)}))
        return trace

    return SpeculativeLoop(
        name=name,
        n_iterations=n,
        body=body,
        arrays=[ArraySpec("A", np.zeros(n))],
        inspector=inspector,
    )
