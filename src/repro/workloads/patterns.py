"""A taxonomy of loop access patterns.

The paper's motivation (Section 1) is that irregular applications mix a
handful of recurring reference patterns the compiler cannot analyze.  This
module provides one parameterized generator per pattern, used by the
deeper test sweeps and handy as templates when porting a new application
onto the runtime:

* ``stencil_loop`` -- neighbor reads with a write to the center: flow
  dependences at every block boundary of distance = the stencil radius.
* ``gather_loop`` -- ``OUT[i] = f(IN[idx[i, :]])``: arbitrary read
  indirection, disjoint writes; always fully parallel (FMA3D's shape).
* ``scatter_loop`` -- ``OUT[idx[i]] = f(i)``: write indirection; output
  dependences only (last-value commit absorbs them) unless ``read_back``
  adds a load of the scattered element.
* ``pointer_chase_loop`` -- each iteration reads the element its
  predecessor wrote through a runtime-only permutation: a full flow chain,
  the fully sequential worst case.
* ``transitive_update_loop`` -- frontier-style updates where iteration
  ``i`` merges its value into a parent cell: dependence structure is a
  random forest, partially parallel with tunable depth.
"""

from __future__ import annotations

import numpy as np

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.machine.memory import MemoryImage
from repro.util.rng import make_rng


def stencil_loop(n: int, radius: int = 1, name: str = "stencil") -> SpeculativeLoop:
    """Read the left neighbor(s)' *new* values, write the center.

    ``A[i] = g(A[i - radius], ..., A[i - 1])`` over the updated array: a
    flow dependence of every distance in ``[1, radius]``, so any block
    boundary is crossed and block-scheduled speculation degenerates toward
    sequential -- the pattern where DDG extraction or SW shines.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")

    def body(ctx, i):
        acc = float(i)
        for d in range(1, radius + 1):
            if i - d >= 0:
                acc += 0.25 * ctx.load("A", i - d)
        ctx.store("A", i, acc)

    def inspector(memory: MemoryImage):
        return [
            ({("A", i - d) for d in range(1, radius + 1) if i - d >= 0}, {("A", i)})
            for i in range(n)
        ]

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("A", np.zeros(n))], inspector=inspector
    )


def gather_loop(
    n: int, fan_in: int = 3, seed: int = 0, name: str = "gather"
) -> SpeculativeLoop:
    """Indirect reads, own-element writes: statically opaque, fully parallel."""
    rng = make_rng(seed, "gather", n)
    idx = rng.integers(0, n, size=(n, max(1, fan_in)))

    def body(ctx, i):
        acc = 0.0
        for k in range(idx.shape[1]):
            acc += ctx.load("IN", int(idx[i, k]))
        ctx.store("OUT", i, acc / idx.shape[1])

    return SpeculativeLoop(
        name, n, body,
        arrays=[
            ArraySpec("IN", rng.random(n), tested=False),
            ArraySpec("OUT", np.zeros(n), tested=True),
        ],
    )


def scatter_loop(
    n: int,
    n_targets: int | None = None,
    read_back: bool = False,
    seed: int = 0,
    name: str = "scatter",
) -> SpeculativeLoop:
    """Indirect writes; optionally read the target first (RMW scatter).

    Without ``read_back`` the only cross-processor conflicts are output
    dependences, which last-value commit resolves: one stage.  With
    ``read_back`` a colliding target becomes a genuine flow dependence.
    """
    m = n_targets if n_targets is not None else n
    rng = make_rng(seed, "scatter", n)
    idx = rng.integers(0, m, size=n)

    def body(ctx, i):
        target = int(idx[i])
        value = float(i)
        if read_back:
            value += 0.5 * ctx.load("OUT", target)
        ctx.store("OUT", target, value)

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("OUT", np.zeros(m), tested=True)]
    )


def pointer_chase_loop(n: int, seed: int = 0, name: str = "pointer-chase") -> SpeculativeLoop:
    """A full flow chain through a runtime permutation: the worst case.

    Iteration ``i`` reads the cell iteration ``i-1`` wrote and writes the
    next cell of a data-dependent permutation.  No strategy can extract
    parallelism; the R-LRPD guarantee is that the attempt costs only test
    overhead on top of the sequential time.
    """
    rng = make_rng(seed, "chase", n)
    perm = rng.permutation(n)

    def body(ctx, i):
        prev = float(0.0)
        if i > 0:
            prev = ctx.load("A", int(perm[i - 1]))
        ctx.store("A", int(perm[i]), prev + 1.0)

    def inspector(memory: MemoryImage):
        return [
            (
                {("A", int(perm[i - 1]))} if i > 0 else set(),
                {("A", int(perm[i]))},
            )
            for i in range(n)
        ]

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("A", np.zeros(n))], inspector=inspector
    )


def transitive_update_loop(
    n: int, branching: int = 1, seed: int = 0, name: str = "forest"
) -> SpeculativeLoop:
    """Propagate values down a random recursive tree.

    Node ``i`` reads the cell of a random earlier node (its parent) and
    writes its own cell: the dependence graph is exactly the tree, whose
    expected depth -- and thus the critical path -- is O(log n) for a
    uniform parent choice.  ``branching > 1`` skews parents toward older
    nodes, flattening the tree further.  Plenty of intrinsic parallelism
    behind a statically opaque pattern: the showcase for DDG extraction.
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    rng = make_rng(seed, "forest", n)
    draws = rng.random(n)
    parents = np.array(
        [0 if i == 0 else int((draws[i] ** branching) * i) for i in range(n)]
    )

    def body(ctx, i):
        if i == 0:
            ctx.store("A", 0, 1.0)
            return
        v = ctx.load("A", int(parents[i]))
        ctx.store("A", i, v * 0.5 + 1.0)

    def inspector(memory: MemoryImage):
        trace = [(set(), {("A", 0)})]
        for i in range(1, n):
            trace.append(({("A", int(parents[i]))}, {("A", i)}))
        return trace

    return SpeculativeLoop(
        name, n, body, arrays=[ArraySpec("A", np.zeros(n))], inspector=inspector
    )
