"""NLFILT 300 -- TRACK's nonlinear filter loop.

Paper characteristics (Section 5.2): the compiler-unanalyzable array is
``NUSED``; its *write* reference is guarded by a loop-variant (input-
dependent) condition, and the dependences it causes are mostly short
distance.  The loop also carries large state that is modified conditionally
-- which is why on-demand checkpointing is the single most important
optimization for it (Fig. 12a) -- and irregular per-iteration work, which
is what feedback-guided load balancing attacks.

The kernel: iteration ``i`` always reads ``NUSED[i]``; when the guard
(computed from the read-only signal input ``SIG``) fires, it writes
``NUSED[i + d_i]`` -- a flow dependence of distance ``d_i`` whose sink is
iteration ``i + d_i``.  Conditionally, it also rewrites its private slice
of the large untested ``STATE`` array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.util.rng import make_rng


@dataclass(frozen=True)
class NlfiltDeck:
    """One NLFILT input deck.

    ``dep_prob`` is the probability an iteration's guarded write fires;
    ``mean_distance`` sets the (geometric) dependence-distance scale --
    small values produce the paper's "mostly short distances", large values
    the long-distance pattern where the sliding window shines.
    ``state_per_iter`` elements of conditionally modified untested state per
    iteration drive the checkpointing comparison; ``work_cv`` sets the
    coefficient of variation of per-iteration work (load imbalance).
    """

    name: str
    n: int
    dep_prob: float
    mean_distance: float
    state_per_iter: int = 4
    state_touch: float = 0.45
    """Fraction of iterations that rewrite their STATE slice; small values
    make on-demand checkpointing far cheaper than full checkpointing."""
    work_cv: float = 0.5
    work_ramp: float = 0.0
    """Systematic per-iteration cost trend: iteration ``i`` costs an extra
    factor ``1 + work_ramp * i/n`` (later tracks carry more state).  This is
    the structured imbalance that even blocks cannot absorb and the
    feedback-guided balancer removes."""
    seed: int = 2002

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("deck needs at least one iteration")
        if not 0.0 <= self.dep_prob <= 1.0:
            raise ValueError("dep_prob must be in [0, 1]")
        if self.mean_distance < 1.0:
            raise ValueError("mean_distance must be >= 1")


#: Named decks.  "16-400" and "15-250" are the paper's Fig. 8 / Fig. 9
#: inputs (larger deck with longer dependence distances vs. a smaller deck
#: with denser short-distance dependences); the rest sweep the available
#: parallelism for Fig. 7.
NLFILT_DECKS: dict[str, NlfiltDeck] = {
    "16-400": NlfiltDeck("16-400", n=6400, dep_prob=0.004, mean_distance=160.0),
    "15-250": NlfiltDeck("15-250", n=4000, dep_prob=0.06, mean_distance=6.0),
    "fully-par": NlfiltDeck("fully-par", n=4800, dep_prob=0.0, mean_distance=1.0),
    "sparse-deps": NlfiltDeck("sparse-deps", n=4800, dep_prob=0.002, mean_distance=12.0),
    "medium-deps": NlfiltDeck("medium-deps", n=4800, dep_prob=0.008, mean_distance=12.0),
    "dense-deps": NlfiltDeck("dense-deps", n=4800, dep_prob=0.08, mean_distance=12.0),
    # The Fig. 12(a) optimization-comparison deck: rare long-distance
    # dependences (so redistribution pays), heavily imbalanced iteration
    # costs (so feedback balancing pays), and a large conditionally
    # modified state with a low touch rate (so on-demand checkpointing
    # pays the most, as in the paper).
    "opt-study": NlfiltDeck(
        "opt-study", n=4800, dep_prob=0.0015, mean_distance=400.0,
        state_per_iter=24, state_touch=0.1, work_cv=1.5, work_ramp=1.0,
    ),
}


def make_nlfilt_loop(deck: NlfiltDeck | str, instance: int = 0) -> SpeculativeLoop:
    """Build one NLFILT instantiation from a deck.

    ``instance`` varies the seed stream, modelling the loop being re-entered
    with evolving data over the program's life (the PR statistic aggregates
    across instances via :func:`repro.core.runner.run_program`).
    """
    if isinstance(deck, str):
        deck = NLFILT_DECKS[deck]
    n = deck.n
    rng = make_rng(deck.seed, "nlfilt", deck.name, instance)

    sig = rng.random(n)
    # Geometric dependence distances around the deck's mean.
    distances = 1 + rng.geometric(1.0 / deck.mean_distance, size=n)
    state_guard = sig > (1.0 - deck.state_touch)
    # Irregular per-iteration work: gamma-distributed around 1.  The work
    # profile is seeded *without* the instance number: the cost structure of
    # a real irregular loop evolves slowly across instantiations, which is
    # precisely what makes the previous instantiation's measured times a
    # usable predictor for feedback-guided balancing (Section 5.1).
    if deck.work_cv > 0:
        work_rng = make_rng(deck.seed, "nlfilt-work", deck.name)
        shape = 1.0 / (deck.work_cv**2)
        work = work_rng.gamma(shape, 1.0 / shape, size=n)
        work = np.maximum(work, 0.05)
    else:
        work = np.ones(n)
    if deck.work_ramp:
        work = work * (1.0 + deck.work_ramp * np.arange(n) / n)

    state_n = max(1, n * deck.state_per_iter)
    state_per_iter = deck.state_per_iter

    def body(ctx, i):
        v = ctx.load("NUSED", i)
        s = ctx.load("SIG", i)  # read-only input signal (untested)
        if s < deck.dep_prob:  # loop-variant guard on the write
            sink = min(i + int(distances[i]), n - 1)
            ctx.store("NUSED", sink, v + s)
        if state_guard[i]:
            base = i * state_per_iter
            for k in range(state_per_iter):
                ctx.store("STATE", base + k, v * 0.5 + k)

    return SpeculativeLoop(
        name=f"nlfilt_300[{deck.name}]",
        n_iterations=n,
        body=body,
        arrays=[
            ArraySpec("NUSED", rng.random(n), tested=True),
            ArraySpec("SIG", sig, tested=False),
            ArraySpec("STATE", np.zeros(state_n), tested=False),
        ],
        iter_work=lambda i: float(work[i]),
    )
