"""The paper's hand-worked examples (Figs. 1 and 2), as executable loops.

Fig. 1: an 8-iteration loop over 4 processors where a single flow
dependence crosses from processor 2's block into processor 3's block
(1-indexed in the paper); the NRD run commits processors 1-2 in the first
stage and finishes the rest in a second stage -- "a total of two steps of
two iterations each".

Fig. 2: the same dependence shape under a sliding window of 4 iterations
(super-iteration size 1): the first window commits the blocks before the
sink and advances the commit point; two more windows finish the loop.
"""

from __future__ import annotations

import numpy as np

from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.workloads.synthetic import chain_loop

#: Write targets K[i] and read sources L[i] of the Fig. 1 loop (0-indexed
#: iterations 0..7 over processors {0,1}|{2,3}|{4,5}|{6,7}).  Iteration 3
#: (processor 1) writes A[5]; iteration 4 (processor 2) reads A[5]: one
#: flow arc from processor 1 to processor 2, earliest sink = processor 2.
FIG1_K = (0, 1, 2, 5, 6, 7, 8, 9)
FIG1_L = (9, 9, 9, 9, 5, 9, 9, 9)


def fig1_loop() -> SpeculativeLoop:
    """The Fig. 1(a) loop: ``B[i] = f(i); A[K[i]] = A[L[i]] + expr``."""

    def body(ctx, i):
        ctx.store("B", i, float(i) * 2.0)  # statically analyzable array B
        v = ctx.load("A", FIG1_L[i])
        ctx.store("A", FIG1_K[i], v + float(i))

    return SpeculativeLoop(
        name="fig1_example",
        n_iterations=8,
        body=body,
        arrays=[
            ArraySpec("A", np.arange(10, dtype=np.float64), tested=True),
            ArraySpec("B", np.zeros(8), tested=False),
        ],
    )


def fig2_loop() -> SpeculativeLoop:
    """The Fig. 2 sliding-window example: one dependence ``2 -> 3``."""
    return chain_loop(8, targets=[3], name="fig2_example")
