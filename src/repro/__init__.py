"""repro -- The R-LRPD Test: speculative parallelization of partially
parallel loops.

A faithful, deterministic reproduction of Dang, Yu & Rauchwerger (IPDPS
2002) on a virtual-time simulated multiprocessor.  Quick start::

    import numpy as np
    from repro import ArraySpec, SpeculativeLoop, RuntimeConfig, parallelize

    def body(ctx, i):
        x = ctx.load("A", i)
        ctx.store("A", (i * 7 + 3) % 64, x + 1.0)

    loop = SpeculativeLoop(
        name="demo", n_iterations=64, body=body,
        arrays=[ArraySpec("A", np.zeros(64))],
    )
    result = parallelize(loop, n_procs=8, config=RuntimeConfig.adaptive())
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.config import (
    RedistributionPolicy,
    RuntimeConfig,
    Strategy,
    TestCondition,
)
from repro.core import (
    DDGResult,
    EngineStrategy,
    ProgramResult,
    RunResult,
    StageEngine,
    StageResult,
    WavefrontSchedule,
    backend_names,
    execute_wavefront,
    extract_ddg,
    parallelize,
    register_strategy,
    require_fault_support,
    require_serial_backend,
    resolve_strategy,
    run_blocked,
    run_blocked_iterwise,
    run_doall_lrpd,
    run_induction,
    run_program,
    run_sliding_window,
    strategy_for_config,
    strategy_names,
    use_backend,
    wavefront_schedule,
)
from repro.obs import (
    AggregatingSink,
    CliProgressSink,
    EventSink,
    JsonlTraceSink,
    MetricsRegistry,
    PerfettoTraceSink,
    RecordingSink,
    chrome_trace,
    event_from_dict,
    load_trace,
    render_metrics,
    run_report,
    use_instrumentation,
    validate_events,
    write_perfetto,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    FaultError,
    InspectorUnavailableError,
    NoProgressError,
    ReproError,
    ScheduleError,
    SelfCheckError,
    SpeculationError,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    random_plan,
)
from repro.loopir import (
    ArraySpec,
    InductionSpec,
    IterationContext,
    ReductionOp,
    SpeculativeLoop,
)
from repro.core import (
    Certificate,
    LinkedListLoop,
    ListSchedule,
    TraversalRunResult,
    certify,
    execute_list_schedule,
    list_schedule,
    run_list_traversal,
)
from repro.machine import CostModel, Machine, MemoryImage, SharedArray, Topology
from repro.baselines import (
    run_doacross,
    run_inspector_executor,
    run_sequential,
    sequential_reference,
)
from repro.core import run_program_predictive
from repro.sched import FeedbackBalancer, StrategyPredictor, WindowPredictor

__version__ = "1.0.0"

__all__ = [
    # configuration
    "RuntimeConfig",
    "Strategy",
    "RedistributionPolicy",
    "TestCondition",
    "CostModel",
    # loop IR
    "SpeculativeLoop",
    "ArraySpec",
    "InductionSpec",
    "IterationContext",
    "ReductionOp",
    # machine
    "Machine",
    "MemoryImage",
    "SharedArray",
    "Topology",
    "ListSchedule",
    "list_schedule",
    "execute_list_schedule",
    "LinkedListLoop",
    "TraversalRunResult",
    "run_list_traversal",
    "certify",
    "Certificate",
    # engine & strategy registry
    "StageEngine",
    "EngineStrategy",
    "register_strategy",
    "resolve_strategy",
    "strategy_for_config",
    "strategy_names",
    "require_fault_support",
    "require_serial_backend",
    "backend_names",
    "use_backend",
    # stage-event observability
    "EventSink",
    "RecordingSink",
    "JsonlTraceSink",
    "CliProgressSink",
    "AggregatingSink",
    "validate_events",
    "event_from_dict",
    # metrics, spans, reports
    "MetricsRegistry",
    "use_instrumentation",
    "render_metrics",
    "PerfettoTraceSink",
    "chrome_trace",
    "load_trace",
    "run_report",
    "write_perfetto",
    # runtime
    "parallelize",
    "run_program",
    "run_blocked",
    "run_blocked_iterwise",
    "run_sliding_window",
    "run_induction",
    "run_doall_lrpd",
    "extract_ddg",
    "wavefront_schedule",
    "execute_wavefront",
    "WavefrontSchedule",
    "DDGResult",
    "RunResult",
    "StageResult",
    "ProgramResult",
    "FeedbackBalancer",
    "StrategyPredictor",
    "WindowPredictor",
    "run_program_predictive",
    # fault injection & self-verification
    "FaultPlan",
    "FaultEvent",
    "FaultKind",
    "FaultInjector",
    "random_plan",
    # baselines
    "run_sequential",
    "sequential_reference",
    "run_inspector_executor",
    "run_doacross",
    # errors
    "ReproError",
    "ConfigurationError",
    "SpeculationError",
    "NoProgressError",
    "InspectorUnavailableError",
    "CheckpointError",
    "ScheduleError",
    "FaultError",
    "SelfCheckError",
]
