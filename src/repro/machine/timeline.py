"""Virtual-clock timeline with per-stage, per-processor, per-category accounting.

The paper's Fig. 4 plots, for every restart of the R-LRPD test, the time
spent in the actual loop versus synchronization and redistribution overhead.
To regenerate that breakdown the simulator records every charge as a
``(stage, proc, category, amount)`` sample and derives stage times with the
correct parallel semantics:

* processors within a stage run concurrently, so a stage's *execution* span
  is the **max** over participating processors of their summed charges;
* the serial phases of a stage (barrier, sequential decisions) are global
  charges attributed to ``proc = GLOBAL``;
* commit and restore run concurrently on the two disjoint processor groups
  (paper, Section 4), which falls out naturally from the max-over-procs rule.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field


GLOBAL = -1
"""Pseudo-processor id for charges serialized across the whole machine."""


class Category(enum.Enum):
    """What a virtual-time charge pays for."""

    WORK = "work"                    # useful iteration computation (omega)
    MARK = "mark"                    # shadow marking per reference
    COPY_IN = "copy_in"              # on-demand copy-in of shared data
    ANALYSIS = "analysis"            # post-loop dependence analysis
    COMMIT = "commit"                # private -> shared last-value copy-out
    RESTORE = "restore"              # checkpoint restoration
    CHECKPOINT = "checkpoint"        # saving untested state
    REINIT = "reinit"                # shadow re-initialization
    REDISTRIBUTION = "redistribution"  # migrating iterations between procs
    SYNC = "sync"                    # barrier synchronization
    SCHEDULE = "schedule"            # feedback-guided re-blocking (prefix sums)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Categories counted as *overhead* (everything the sequential loop does not pay).
OVERHEAD_CATEGORIES = frozenset(c for c in Category if c is not Category.WORK)


@dataclass(slots=True)
class StageRecord:
    """Accumulated charges for one speculative stage."""

    index: int
    per_proc: dict[int, dict[Category, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float))
    )

    def charge(self, proc: int, category: Category, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative charge {amount} for {category}")
        self.per_proc[proc][category] += amount

    def proc_time(self, proc: int) -> float:
        return sum(self.per_proc.get(proc, {}).values())

    def span(self) -> float:
        """Wall-clock span of the stage: max concurrent processor time plus
        all globally serialized charges."""
        parallel = max(
            (self.proc_time(p) for p in self.per_proc if p != GLOBAL),
            default=0.0,
        )
        return parallel + self.proc_time(GLOBAL)

    def category_total(self, category: Category) -> float:
        return sum(
            charges.get(category, 0.0) for charges in self.per_proc.values()
        )

    def category_span(self, category: Category) -> float:
        """Wall-clock contribution of one category (max over processors,
        plus the global share)."""
        parallel = max(
            (
                self.per_proc[p].get(category, 0.0)
                for p in self.per_proc
                if p != GLOBAL
            ),
            default=0.0,
        )
        return parallel + self.per_proc.get(GLOBAL, {}).get(category, 0.0)

    def breakdown(self) -> dict[Category, float]:
        """Per-category wall-clock spans for this stage (Fig. 4(a) rows)."""
        return {c: self.category_span(c) for c in Category if self.category_total(c)}


class Timeline:
    """Ordered collection of :class:`StageRecord` with summary queries."""

    def __init__(self) -> None:
        self._stages: list[StageRecord] = []
        # virtual_now() cache: spans of all stages *before* the current one
        # are immutable once the next stage begins, so their sum is cached
        # keyed by the stage count.
        self._closed_span_sum = 0.0
        self._closed_span_count = 0

    # -- recording -----------------------------------------------------------

    def begin_stage(self) -> StageRecord:
        record = StageRecord(index=len(self._stages))
        self._stages.append(record)
        return record

    @property
    def current(self) -> StageRecord:
        if not self._stages:
            raise RuntimeError("no stage has been started")
        return self._stages[-1]

    # -- queries --------------------------------------------------------------

    @property
    def stages(self) -> list[StageRecord]:
        return list(self._stages)

    def n_stages(self) -> int:
        return len(self._stages)

    def total_time(self) -> float:
        """End-to-end virtual time: stages execute back to back."""
        return sum(stage.span() for stage in self._stages)

    def virtual_now(self) -> float:
        """Current virtual time: completed stages back to back plus the
        in-flight stage's span so far.  This is the span layer's second
        clock (:mod:`repro.obs.spans`); deterministic by construction."""
        closed = len(self._stages) - 1
        if closed < 0:
            return 0.0
        if closed != self._closed_span_count:
            self._closed_span_sum = sum(
                stage.span() for stage in self._stages[:closed]
            )
            self._closed_span_count = closed
        return self._closed_span_sum + self._stages[-1].span()

    def total_category(self, category: Category) -> float:
        """Summed wall-clock contribution of a category across stages."""
        return sum(stage.category_span(category) for stage in self._stages)

    def charged_category(self, category: Category) -> float:
        """Total charges of a category across all processors and stages
        (resource consumption, not wall-clock)."""
        return sum(stage.category_total(category) for stage in self._stages)

    def overhead_time(self) -> float:
        """Everything except useful work, in wall-clock terms."""
        return self.total_time() - self.total_category(Category.WORK)

    def cumulative_spans(self) -> list[float]:
        """Running total time after each stage (Fig. 4(b) series)."""
        out: list[float] = []
        acc = 0.0
        for stage in self._stages:
            acc += stage.span()
            out.append(acc)
        return out

    def merge_from(self, other: "Timeline") -> None:
        """Append another run's stages (used for multi-loop programs)."""
        for stage in other._stages:
            record = self.begin_stage()
            for proc, charges in stage.per_proc.items():
                for category, amount in charges.items():
                    record.charge(proc, category, amount)
