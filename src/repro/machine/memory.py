"""Shared and private (speculative) memory.

Tested arrays -- those whose access pattern the compiler could not analyze --
are never written in place during a speculative stage.  Each processor works
on a *private view*: reads copy in the shared value on demand (the paper's
"on-demand copy-in", which both implements the copy-in condition and feeds
flow-dependence data produced by earlier, already committed stages), writes
stay private until the analysis phase decides which processors commit.

Untested arrays (statically analyzable state such as array ``B`` in the
paper's Fig. 1) are written directly to shared memory and protected by a
checkpoint (:mod:`repro.machine.checkpoint`) so the sections modified by
failed processors can be restored.

Two private-view implementations are provided: a dense one backed by numpy
arrays (best for small or densely accessed arrays) and a sparse, dict-backed
one (best for the paper's sparse workloads, e.g. the SPICE ``VALUE``
workspace, where each processor touches a tiny fraction of a huge array).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.kernels import get_kernels


class SharedArray:
    """A named, one-dimensional shared array.

    Multi-dimensional program arrays are linearized by the workload (the
    shadow structures and the dependence test operate on element addresses,
    exactly as the real runtime operates on memory locations).
    """

    __slots__ = ("name", "data")

    def __init__(self, name: str, data: np.ndarray) -> None:
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise ValueError(
                f"SharedArray {name!r} must be 1-D (got shape {arr.shape}); "
                "linearize multi-dimensional arrays in the workload"
            )
        self.name = name
        self.data = arr.copy()

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArray({self.name!r}, n={len(self)}, dtype={self.data.dtype})"


class MemoryImage:
    """The machine's shared address space: a set of named arrays."""

    def __init__(self, arrays: Iterable[SharedArray] = ()) -> None:
        self._arrays: dict[str, SharedArray] = {}
        for array in arrays:  # hot-path: per-array, setup only
            self.add(array)

    def add(self, array: SharedArray) -> None:
        if array.name in self._arrays:
            raise ValueError(f"duplicate shared array {array.name!r}")
        self._arrays[array.name] = array

    def __getitem__(self, name: str) -> SharedArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(
                f"no shared array {name!r}; declared: {sorted(self._arrays)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> list[str]:
        return sorted(self._arrays)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of every array's contents (test oracle support)."""
        return {name: arr.data.copy() for name, arr in self._arrays.items()}

    def restore(self, snapshot: Mapping[str, np.ndarray]) -> None:
        """Overwrite all arrays from a snapshot taken earlier."""
        for name, data in snapshot.items():  # hot-path: per-array bulk copy
            self[name].data[:] = data

    def equals(self, snapshot: Mapping[str, np.ndarray]) -> bool:
        if set(snapshot) != set(self._arrays):
            return False
        return all(
            np.array_equal(self._arrays[name].data, data)
            for name, data in snapshot.items()
        )

    def allclose(
        self,
        snapshot: Mapping[str, np.ndarray],
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> bool:
        """Tolerant comparison for runs with parallel reductions.

        Per-processor reduction partials are combined in a different order
        than a sequential execution, so floating-point results may differ in
        the last bits while remaining mathematically identical.
        """
        if set(snapshot) != set(self._arrays):
            return False
        return all(
            np.allclose(self._arrays[name].data, data, rtol=rtol, atol=atol)
            for name, data in snapshot.items()
        )


class PrivateView:
    """Abstract per-processor speculative overlay of one shared array.

    ``load`` returns ``(value, copied_in)`` where ``copied_in`` reports
    whether the shared value had to be brought into private storage (so the
    caller can charge the copy-in cost and mark an exposed read).  ``store``
    buffers the value privately.  ``written_items`` yields the data needed
    by the commit phase.
    """

    __slots__ = ("shared",)

    def __init__(self, shared: SharedArray) -> None:
        self.shared = shared

    def load(self, index: int) -> tuple[object, bool]:
        raise NotImplementedError

    def store(self, index: int, value: object) -> None:
        raise NotImplementedError

    def has_local(self, index: int) -> bool:
        """Whether the element already has a private copy (written or copied)."""
        raise NotImplementedError

    def written_items(self) -> Iterable[tuple[int, object]]:
        """``(index, last_private_value)`` for every element this processor
        wrote (iteration order within the processor is already folded in:
        the private copy holds the processor's last value)."""
        raise NotImplementedError

    def written_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` ndarrays of every written element, index-
        sorted, so the commit phase is one fancy-indexed assignment instead
        of a Python loop per element.  Values are cast to the shared dtype
        (exactly the cast a scalar ``data[index] = value`` would perform)."""
        pairs = list(self.written_items())
        indices = np.fromiter(
            (i for i, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        values = get_kernels().pack_values(
            [value for _, value in pairs], self.shared.data.dtype
        )
        return indices, values

    def export_written(self) -> object:
        """Representation-specific payload of the written elements, suitable
        for shipping between processes (see :mod:`repro.core.backend`).
        Must round-trip bit-exactly through :meth:`absorb_written`."""
        raise NotImplementedError

    def absorb_written(self, payload: object) -> None:
        """Merge a payload produced by :meth:`export_written` on a view of
        the same array (the receiving view is assumed freshly reset)."""
        raise NotImplementedError

    def store_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Bulk :meth:`store` over parallel index/value arrays."""
        # hot-path: generic fallback for custom views; the shipped dense and
        # sparse views override this with a kernel batch call.
        for index, value in zip(indices.tolist(), values):
            self.store(index, value)

    def load_many(self, indices: np.ndarray) -> tuple[np.ndarray, int]:
        """Bulk :meth:`load`; returns ``(values, distinct elements copied
        in)`` so the caller can charge the copy-in cost once."""
        copied = 0
        out = np.empty(len(indices), dtype=self.shared.data.dtype)
        seen: set[int] = set()
        # hot-path: generic fallback for custom views; the shipped dense and
        # sparse views override this with a kernel batch call.
        for k, index in enumerate(indices.tolist()):
            value, copied_in = self.load(index)
            out[k] = value
            if copied_in and index not in seen:
                seen.add(index)
                copied += 1
        return out, copied

    def n_written(self) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Discard all private state (between stages)."""
        raise NotImplementedError

    def preload(self) -> int:
        """Pre-initialize the private copy from shared memory (the paper's
        'before the start of the speculative loop' option).  Returns the
        element count copied; sparse views return 0 (they always use
        on-demand copy-in -- bulk-copying a huge sparsely-touched array is
        exactly what the sparse representation avoids)."""
        return 0


class DensePrivateView(PrivateView):
    """Numpy-backed private view; O(n) memory, O(1) access."""

    __slots__ = ("_values", "_have", "_written")

    def __init__(self, shared: SharedArray) -> None:
        super().__init__(shared)
        n = len(shared)
        self._values = np.zeros(n, dtype=shared.data.dtype)
        self._have = np.zeros(n, dtype=bool)
        self._written = np.zeros(n, dtype=bool)

    def load(self, index: int) -> tuple[object, bool]:
        if self._have[index]:
            return self._values[index], False
        value = self.shared.data[index]
        self._values[index] = value
        self._have[index] = True
        return value, True

    def store(self, index: int, value: object) -> None:
        self._values[index] = value
        self._have[index] = True
        self._written[index] = True

    def has_local(self, index: int) -> bool:
        return bool(self._have[index])

    def written_items(self):
        # hot-path: compat iterator; the commit phase uses written_arrays
        for index in np.flatnonzero(self._written):
            yield int(index), self._values[index]

    def written_indices(self) -> np.ndarray:
        return np.flatnonzero(self._written)

    def written_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return get_kernels().copy_out_dense(self._values, self._written)

    def export_written(self) -> tuple[np.ndarray, np.ndarray]:
        return self.written_arrays()

    def absorb_written(self, payload: tuple[np.ndarray, np.ndarray]) -> None:
        indices, values = payload
        if len(indices):
            get_kernels().store_dense(
                self._values, self._have, self._written, indices, values
            )

    def store_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        get_kernels().store_dense(
            self._values, self._have, self._written, indices, values
        )

    def load_many(self, indices: np.ndarray) -> tuple[np.ndarray, int]:
        return get_kernels().copy_in_dense(
            self._values, self._have, self.shared.data, indices
        )

    def n_written(self) -> int:
        return int(self._written.sum())

    def reset(self) -> None:
        self._have[:] = False
        self._written[:] = False

    def preload(self) -> int:
        np.copyto(self._values, self.shared.data)
        self._have[:] = True
        return len(self._values)


class SparsePrivateView(PrivateView):
    """Dict-backed private view; memory proportional to touched elements."""

    __slots__ = ("_values", "_written")

    def __init__(self, shared: SharedArray) -> None:
        super().__init__(shared)
        self._values: dict[int, object] = {}
        self._written: set[int] = set()

    def load(self, index: int) -> tuple[object, bool]:
        try:
            return self._values[index], False
        except KeyError:
            value = self.shared.data[index]
            self._values[index] = value
            return value, True

    def store(self, index: int, value: object) -> None:
        self._values[index] = value
        self._written.add(index)

    def has_local(self, index: int) -> bool:
        return index in self._values

    def written_items(self):
        # hot-path: compat iterator; the commit phase uses written_arrays
        for index in sorted(self._written):
            yield index, self._values[index]

    def written_indices(self) -> np.ndarray:
        return np.fromiter(sorted(self._written), dtype=np.int64, count=len(self._written))

    def written_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return get_kernels().copy_out_sparse(
            self._values, self._written, self.shared.data.dtype
        )

    def export_written(self) -> tuple[np.ndarray, np.ndarray]:
        # Paired index/value arrays, not a per-element dict: pickling one
        # values buffer is what keeps the sparse fork/shm delta path cheap.
        # The dtype cast is safe because an absorbed view is only consumed
        # by the commit phase, whose ``written_arrays`` applies exactly the
        # same element-wise cast a scalar ``data[index] = value`` would.
        return self.written_arrays()

    def absorb_written(self, payload: tuple[np.ndarray, np.ndarray]) -> None:
        indices, values = payload
        get_kernels().store_sparse(self._values, self._written, indices, values)

    def store_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        get_kernels().store_sparse(self._values, self._written, indices, values)

    def load_many(self, indices: np.ndarray) -> tuple[np.ndarray, int]:
        return get_kernels().copy_in_sparse(self._values, self.shared.data, indices)

    def n_written(self) -> int:
        return len(self._written)

    def reset(self) -> None:
        self._values.clear()
        self._written.clear()


#: Arrays at or below this element count default to the dense view.
DENSE_VIEW_THRESHOLD = 1 << 16


def make_private_view(shared: SharedArray, sparse: bool | None = None) -> PrivateView:
    """Choose a private-view implementation for a shared array.

    ``sparse=None`` picks automatically by array size; workloads with known
    access density can force either representation.
    """
    if sparse is None:
        sparse = len(shared) > DENSE_VIEW_THRESHOLD
    return SparsePrivateView(shared) if sparse else DensePrivateView(shared)
