"""Deterministic simulated shared-memory multiprocessor.

The paper's test-bed is a 16-processor ccUMA HP V2200.  CPython's GIL makes
a real multicore demonstration impossible (reproduction band note), so this
package substitutes a *virtual-time* machine: processors execute loop
iterations one block at a time while a :class:`Timeline` accrues modeled
costs -- per-iteration useful work ``omega``, barrier synchronization ``s``,
per-iteration redistribution ``ell``, plus marking / analysis / commit /
restore / checkpoint overheads.  Every quantity the paper reports (stage
counts, parallelism ratio, execution-time breakdowns, speedups) is a
function of these counts and costs, so the virtual machine reproduces the
paper's *shapes* deterministically.
"""

from repro.machine.costs import CostModel
from repro.machine.timeline import Category, Timeline
from repro.machine.memory import SharedArray, PrivateView, MemoryImage
from repro.machine.checkpoint import CheckpointManager
from repro.machine.topology import Topology
from repro.machine.machine import Machine

__all__ = [
    "Topology",
    "CostModel",
    "Category",
    "Timeline",
    "SharedArray",
    "PrivateView",
    "MemoryImage",
    "CheckpointManager",
    "Machine",
]
