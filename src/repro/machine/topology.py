"""Machine topology: distance-weighted redistribution costs and locality.

The paper's test-bed is ccUMA, but its redistribution overhead is "mostly
due to remote cache misses", and two design choices exist specifically for
locality: the sliding window's circular processor assignment ("iterations
are re-executed (if necessary) on their originally assigned processor") and
the feedback balancer's slowly moving block boundaries.  To make those
effects measurable, the machine can carry a :class:`Topology`: migrating an
iteration from its previous owner to a new processor costs
``ell * (1 + remote_factor * distance(old, new))`` instead of a flat
``ell``, and every run accounts its total migration distance.

``flat`` reproduces the default (distance 0 everywhere -- the ccUMA
ideal); ``ring`` and ``numa`` model increasingly clustered machines.
"""

from __future__ import annotations

import numpy as np


class Topology:
    """Processor-to-processor distance matrix with a remote-miss factor."""

    def __init__(self, distances: np.ndarray, remote_factor: float = 1.0) -> None:
        d = np.asarray(distances, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError(f"distance matrix must be square, got {d.shape}")
        if (d < 0).any():
            raise ValueError("distances must be non-negative")
        if (np.diag(d) != 0).any():
            raise ValueError("self-distance must be zero")
        if not np.allclose(d, d.T):
            raise ValueError("distance matrix must be symmetric")
        if remote_factor < 0:
            raise ValueError("remote_factor must be non-negative")
        self._d = d
        self.remote_factor = remote_factor

    @property
    def n_procs(self) -> int:
        return self._d.shape[0]

    def distance(self, a: int, b: int) -> float:
        return float(self._d[a, b])

    def migration_multiplier(self, src: int, dst: int) -> float:
        """Cost factor for moving one iteration's data ``src -> dst``."""
        return 1.0 + self.remote_factor * self.distance(src, dst)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def flat(cls, p: int) -> "Topology":
        """Uniform memory access: every migration costs exactly ``ell``."""
        return cls(np.zeros((p, p)), remote_factor=0.0)

    @classmethod
    def ring(cls, p: int, remote_factor: float = 1.0) -> "Topology":
        """Processors on a ring; distance = hop count."""
        idx = np.arange(p)
        hops = np.abs(idx[:, None] - idx[None, :])
        hops = np.minimum(hops, p - hops)
        return cls(hops.astype(np.float64), remote_factor)

    @classmethod
    def numa(cls, p: int, nodes: int, remote_factor: float = 1.0) -> "Topology":
        """Clustered nodes: distance 0 within a node, 1 across nodes."""
        if nodes < 1:
            raise ValueError("need at least one NUMA node")
        node_of = np.arange(p) * nodes // p
        cross = (node_of[:, None] != node_of[None, :]).astype(np.float64)
        return cls(cross, remote_factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(p={self.n_procs}, remote_factor={self.remote_factor})"
