"""Checkpoint / restore of untested shared state.

Arrays the compiler *can* analyze (array ``B`` in the paper's Fig. 1) are
written in place during speculation, so before each stage their old contents
must be saved; if some processors fail, the sections they modified are
restored before re-execution.  Two flavors are implemented:

* **Full checkpointing** copies every checkpointed array once per stage --
  simple, but its cost is proportional to total state size, which the paper
  identifies as the dominant overhead for loops with large, conditionally
  modified state (NLFILT).
* **On-demand checkpointing** saves an element's old value only on the first
  write to it in the stage.  Fig. 12(a) shows this is the single most
  important optimization for NLFILT; the cost becomes proportional to the
  state actually modified.

Restoration only needs to roll back elements first-touched by *failed*
processors.  The statically-analyzable contract means committing and failed
processors never write the same untested element in one stage; the manager
verifies this and raises :class:`~repro.errors.CheckpointError` on violation
(that would indicate the workload mis-declared a tested array as untested).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import CheckpointError
from repro.kernels import get_kernels
from repro.machine.memory import MemoryImage


class CheckpointManager:
    """Tracks old values of untested arrays for one speculative stage."""

    def __init__(self, memory: MemoryImage, names: Iterable[str], on_demand: bool) -> None:
        self._memory = memory
        self._names = sorted(set(names))
        self.on_demand = bool(on_demand)
        # name -> index -> (saving proc, old value); first touch wins.
        self._saved: dict[str, dict[int, tuple[int, object]]] = {}
        self._full: dict[str, np.ndarray] = {}
        # name -> index -> set of procs that wrote it this stage.
        self._writers: dict[str, dict[int, set[int]]] = {}
        self.elements_checkpointed = 0
        self.last_restored_bytes = 0
        self._stage_active = False

    @property
    def names(self) -> list[str]:
        return list(self._names)

    def begin_stage(self) -> int:
        """Start a stage; returns the number of elements checkpointed now
        (full mode copies everything up front, on-demand copies nothing)."""
        self._saved = {name: {} for name in self._names}
        self._writers = {name: {} for name in self._names}
        self._full = {}
        self.elements_checkpointed = 0
        self._stage_active = True
        if not self.on_demand:
            for name in self._names:
                data = self._memory[name].data
                self._full[name] = data.copy()
                self.elements_checkpointed += len(data)
        return self.elements_checkpointed

    def note_write(self, proc: int, name: str, index: int) -> int:
        """Record a write to an untested element.

        Returns the number of elements newly checkpointed by this call
        (1 for an on-demand first touch, else 0) so the caller can charge
        virtual time.
        """
        if not self._stage_active:
            raise CheckpointError(
                f"note_write({name!r}) before begin_stage(): the checkpoint "
                "epoch has not been opened; drivers must call begin_stage() "
                "once per speculative stage before any untested write"
            )
        if name not in self._saved:
            raise CheckpointError(f"array {name!r} is not under checkpoint")
        writers = self._writers[name].setdefault(index, set())
        writers.add(proc)
        saved = self._saved[name]
        if index not in saved:
            if self.on_demand:
                saved[index] = (proc, self._memory[name].data[index])
                self.elements_checkpointed += 1
                return 1
            saved[index] = (proc, self._full[name][index])
        return 0

    def note_write_many(self, proc: int, name: str, indices: np.ndarray) -> int:
        """Batch :meth:`note_write` over an index array (duplicates allowed).

        Returns the number of elements newly checkpointed, i.e. the number
        of distinct first touches when on-demand (0 in full mode), so the
        caller charges exactly what per-element calls would have charged.
        """
        if not self._stage_active:
            raise CheckpointError(
                f"note_write({name!r}) before begin_stage(): the checkpoint "
                "epoch has not been opened; drivers must call begin_stage() "
                "once per speculative stage before any untested write"
            )
        if name not in self._saved:
            raise CheckpointError(f"array {name!r} is not under checkpoint")
        ids = np.asarray(indices).tolist()
        writers_map = self._writers[name]
        saved = self._saved[name]
        new: list[int] = []
        seen_new: set[int] = set()
        for index in ids:
            writers_map.setdefault(index, set()).add(proc)
            if index not in saved and index not in seen_new:
                seen_new.add(index)
                new.append(index)
        if new:
            source = self._memory[name].data if self.on_demand else self._full[name]
            old = get_kernels().gather(source, np.fromiter(new, np.int64, len(new)))
            for k, index in enumerate(new):
                saved[index] = (proc, old[k])
            if self.on_demand:
                self.elements_checkpointed += len(new)
        return len(new) if self.on_demand else 0

    def restore_failed(self, failed_procs: Iterable[int]) -> int:
        """Roll back elements first-touched by failed processors.

        Returns the element count restored (for virtual-time charging).
        Raises if a committing and a failed processor both wrote the same
        untested element (contract violation).
        """
        failed = set(failed_procs)
        restored = 0
        self.last_restored_bytes = 0
        for name in self._names:
            data = self._memory[name].data
            writers_map = self._writers[name]
            saved = self._saved[name]
            dirty: list[int] = []
            for index, writers in writers_map.items():
                touched_failed = writers & failed
                if not touched_failed:
                    continue
                if writers - failed:
                    raise CheckpointError(
                        f"untested array {name!r} element {index} written by both "
                        f"committing procs {sorted(writers - failed)} and failed "
                        f"procs {sorted(touched_failed)}; declare it tested instead"
                    )
                dirty.append(index)
            if dirty:
                # One kernel scatter over the dirty slice instead of a
                # per-element Python loop over the whole array.
                indices = np.fromiter(dirty, dtype=np.int64, count=len(dirty))
                old = get_kernels().pack_values(
                    [saved[index][1] for index in dirty], data.dtype
                )
                get_kernels().scatter(data, indices, old)
                restored += len(dirty)
                self.last_restored_bytes += len(dirty) * data.dtype.itemsize
            # Failed procs will re-write; drop their logs so the next stage
            # re-checkpoints from the (restored) current values.
            for index in dirty:
                del writers_map[index]
                del saved[index]
        return restored

    def modified_by(self, procs: Iterable[int]) -> dict[str, list[int]]:
        """Indices written by the given processors, per array (diagnostics)."""
        wanted = set(procs)
        return {
            name: sorted(
                i for i, writers in self._writers[name].items() if writers & wanted
            )
            for name in self._names
        }


def verify_untested_isolation(
    reads: Mapping[str, Mapping[int, set[int]]],
    writes: Mapping[str, Mapping[int, set[int]]],
) -> list[str]:
    """Debug validator for the statically-analyzable contract.

    Given per-array maps ``index -> procs that read/wrote it`` for one
    stage's *untested* arrays, return a description of every cross-processor
    read-after-write pair (a workload declaring such an array untested is
    unsound and should mark it tested instead).
    """
    problems: list[str] = []
    for name, write_map in writes.items():
        read_map = reads.get(name, {})
        for index, writer_procs in write_map.items():
            reader_procs = read_map.get(index, set())
            foreign = {r for r in reader_procs if any(w != r for w in writer_procs)}
            if foreign and len(writer_procs | reader_procs) > 1:
                problems.append(
                    f"{name}[{index}]: written by procs {sorted(writer_procs)}, "
                    f"read by procs {sorted(reader_procs)}"
                )
    return problems
