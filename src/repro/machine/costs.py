"""Virtual-time cost model.

Section 4 of the paper models the R-LRPD test with three primary constants:

* ``omega`` -- useful computation per iteration,
* ``ell``   -- cost of redistributing one iteration's data to another
  processor (dominated by remote cache misses on the ccUMA test-bed),
* ``sync``  -- cost of one barrier synchronization ``s``.

The remaining constants price the runtime overheads the paper describes
qualitatively: marking a reference in the shadow structures, the analysis
phase (proportional to distinct marked references per processor and to
``log2 p``), commit (per written element), restoration of checkpointed
state (per element), and checkpointing itself.  All are per-unit costs in
the same arbitrary time unit as ``omega``; the defaults make one iteration
of useful work ~50x a single marking operation, in line with the paper's
measured overheads being a modest fraction of loop time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-unit virtual-time costs for the simulated machine."""

    omega: float = 1.0
    """Default useful work per iteration (workloads may scale per iteration)."""

    ell: float = 0.25
    """Redistribution cost per migrated iteration (remote misses included)."""

    sync: float = 4.0
    """Barrier synchronization cost ``s`` (charged once per stage)."""

    mark: float = 0.02
    """Shadow-marking cost per instrumented reference."""

    copy_in: float = 0.02
    """On-demand copy-in of one shared element into private storage
    (a dependent, effectively random remote read)."""

    bulk_copy_per_elem: float = 0.005
    """Pre-initialization copy of one element (streaming bulk copy:
    cheaper per element than a demand miss, but paid for *every* element
    of the array -- the trade-off behind the paper's preference for
    on-demand copy-in)."""

    analysis_per_ref: float = 0.01
    """Analysis-phase cost per distinct marked reference (x ``log2 p``)."""

    commit_per_elem: float = 0.01
    """Commit (private -> shared last-value copy) cost per element."""

    restore_per_elem: float = 0.01
    """Restoration cost per element copied back from a checkpoint."""

    checkpoint_per_elem: float = 0.01
    """Checkpoint cost per element saved (full or on-demand)."""

    reinit_per_elem: float = 0.002
    """Shadow re-initialization cost per element between stages."""

    schedule_per_iter: float = 0.002
    """Feedback-guided re-blocking (timer reads + parallel prefix) per
    iteration, divided by ``p`` (the prefix routine is parallel)."""

    def __post_init__(self) -> None:
        for field in (
            "omega",
            "ell",
            "sync",
            "mark",
            "copy_in",
            "bulk_copy_per_elem",
            "analysis_per_ref",
            "commit_per_elem",
            "restore_per_elem",
            "checkpoint_per_elem",
            "reinit_per_elem",
            "schedule_per_iter",
        ):
            value = getattr(self, field)
            if not (isinstance(value, (int, float)) and math.isfinite(value)):
                raise ValueError(f"cost {field}={value!r} must be a finite number")
            if value < 0:
                raise ValueError(f"cost {field}={value} must be non-negative")

    def analysis_cost(self, distinct_refs: int, n_procs: int) -> float:
        """Analysis-phase time for one processor's shadow.

        The paper: *"proportional to the number of distinct memory
        references marked on each processor and to the (logarithm of the)
        number of processors that have participated"* (Section 4).
        """
        if distinct_refs < 0:
            raise ValueError("distinct_refs must be non-negative")
        log_p = max(1.0, math.log2(max(1, n_procs)))
        return self.analysis_per_ref * distinct_refs * log_p

    def should_redistribute(self, remaining_iters: int, n_procs: int) -> bool:
        """The run-time adaptive redistribution test, Eq. (4):

        redistribute while ``n_kd >= p*s / (omega - ell)``; once the
        remaining work drops below that threshold (or redistribution costs
        as much as the work itself, ``omega <= ell``), stop.
        """
        if self.omega <= self.ell:
            return False
        threshold = n_procs * self.sync / (self.omega - self.ell)
        return remaining_iters >= threshold

    def with_costs(self, **overrides: float) -> "CostModel":
        """Return a copy with some costs replaced (convenience for sweeps)."""
        return replace(self, **overrides)
