"""The virtual machine facade tying memory, costs and the timeline together."""

from __future__ import annotations

from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage, SharedArray
from repro.machine.timeline import GLOBAL, Category, StageRecord, Timeline
from repro.machine.topology import Topology


class Machine:
    """A ``p``-processor simulated shared-memory machine.

    The machine does not execute anything by itself; the runtime drivers in
    :mod:`repro.core` push work through it and charge virtual time.  Keeping
    it passive makes every strategy (NRD / RD / SW / DDG extraction /
    baselines) observable through one timeline with identical accounting.
    """

    def __init__(
        self,
        n_procs: int,
        costs: CostModel | None = None,
        memory: MemoryImage | None = None,
        topology: "Topology | None" = None,
    ) -> None:
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        if topology is not None and topology.n_procs != n_procs:
            raise ValueError(
                f"topology is for {topology.n_procs} processors, machine has "
                f"{n_procs}"
            )
        self.n_procs = n_procs
        self.costs = costs or CostModel()
        self.memory = memory or MemoryImage()
        self.topology = topology
        self.timeline = Timeline()
        # Imported here, not at module top: repro.obs pulls in the event
        # types, which need repro.core.results, which imports this package.
        from repro.obs.metrics import NULL_REGISTRY

        self.metrics = NULL_REGISTRY

    # -- memory helpers -------------------------------------------------------

    def add_array(self, array: SharedArray) -> SharedArray:
        self.memory.add(array)
        return array

    # -- timeline helpers -----------------------------------------------------

    def begin_stage(self) -> StageRecord:
        return self.timeline.begin_stage()

    def charge(self, proc: int, category: Category, amount: float) -> None:
        """Charge virtual time to the current stage."""
        if amount:
            self.timeline.current.charge(proc, category, amount)

    def charge_global(self, category: Category, amount: float) -> None:
        """Charge serialized (machine-wide) virtual time."""
        if amount:
            self.timeline.current.charge(GLOBAL, category, amount)

    def barrier(self) -> None:
        """Charge one barrier synchronization ``s`` to the current stage."""
        self.charge_global(Category.SYNC, self.costs.sync)

    def fresh_timeline(self) -> Timeline:
        """Replace the timeline (a new measured run) and return the old one."""
        old = self.timeline
        self.timeline = Timeline()
        return old

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(p={self.n_procs}, arrays={self.memory.names()}, "
            f"stages={self.timeline.n_stages()})"
        )
