"""DOACROSS baseline in the style of Kazi & Lilja (paper, Section 1).

Every iteration runs a *setup phase* that pre-computes all potential
dependence-causing addresses and broadcasts them to all processors; the
addresses set tags for advance/await synchronization; iterations execute in
private storage and commit in order once no further violation is possible.

The paper's criticisms, all modeled here:

* the setup is an inspector *per iteration* -- loops where address and data
  depend on one another are out of reach (we require ``loop.inspector``);
* the per-iteration broadcast costs ``O(p)`` each, paid even by fully
  parallel loops;
* synchronization is pairwise (advance/await), so available parallelism is
  throttled by the true flow dependences *plus* the setup serialization.

Timing is computed by a list-scheduling simulation: iteration ``i`` (on
processor ``i mod p``) starts after its processor is free and after every
flow predecessor has completed (+ one await penalty); its duration is the
setup cost plus its useful work.  State is produced by an in-order
execution, which is what commit-in-order guarantees.
"""

from __future__ import annotations

from repro.core.results import RunResult, StageResult
from repro.errors import InspectorUnavailableError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.shadow.edges import EdgeKind
from repro.baselines.inspector import dependence_edges_from_trace
from repro.util.blocks import Block


def run_doacross(
    loop: SpeculativeLoop,
    n_procs: int,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
    await_cost: float | None = None,
) -> RunResult:
    """Simulate DOACROSS execution; returns timing plus sequential state."""
    if loop.inspector is None:
        raise InspectorUnavailableError(
            f"loop {loop.name!r}: DOACROSS needs per-iteration address "
            "pre-computation, impossible when address and data are mutually "
            "dependent"
        )
    cost_model = costs or CostModel()
    machine = Machine(n_procs, costs=cost_model, memory=memory or loop.materialize())
    trace = loop.inspector(machine.memory)
    if len(trace) != loop.n_iterations:
        raise InspectorUnavailableError(
            f"inspector returned {len(trace)} records for "
            f"{loop.n_iterations} iterations"
        )
    edges = dependence_edges_from_trace(trace)
    preds: dict[int, list[int]] = {}
    for src, dst in edges.iteration_pairs([EdgeKind.FLOW]):
        preds.setdefault(dst, []).append(src)

    # Execute in order for state and per-iteration work.
    ctx = SequentialContext(
        machine.memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    omega = cost_model.omega
    iter_times: dict[int, float] = {}
    total_work = 0.0
    for i in range(loop.n_iterations):
        ctx.iteration = i
        before = ctx.extra_work
        loop.body(ctx, i)
        if ctx.exited:
            raise InspectorUnavailableError(
                f"{loop.name}: DOACROSS cannot handle premature exits"
            )
        t = (loop.work_of(i) + (ctx.extra_work - before)) * omega
        iter_times[i] = t
        total_work += t

    # List-scheduling timing simulation.
    sync = await_cost if await_cost is not None else cost_model.sync / 4.0
    # Setup: pre-compute + broadcast the iteration's addresses to p procs.
    done: dict[int, float] = {}
    proc_free = [0.0] * n_procs
    makespan = 0.0
    for i in range(loop.n_iterations):
        proc = i % n_procs
        n_addrs = len(trace[i][0]) + len(trace[i][1])
        setup = cost_model.mark * n_addrs * n_procs  # broadcast to all procs
        start = proc_free[proc]
        for pred in preds.get(i, ()):
            start = max(start, done[pred] + sync)
        finish = start + setup + iter_times[i]
        done[i] = finish
        proc_free[proc] = finish
        makespan = max(makespan, finish)

    record = machine.begin_stage()
    # Attribute the makespan as a single global span: work portion vs overhead.
    overhead = max(0.0, makespan - total_work / max(1, n_procs))
    record.charge(-1, Category.WORK, makespan - overhead)
    record.charge(-1, Category.SYNC, overhead)

    stages = [
        StageResult(
            index=0,
            blocks=[Block(0, 0, loop.n_iterations)],
            failed=False,
            earliest_sink_pos=None,
            committed_iterations=loop.n_iterations,
            remaining_after=0,
            committed_work=total_work,
            n_arcs=len(edges.edges(EdgeKind.FLOW)),
            committed_elements=0,
            restored_elements=0,
            redistributed_iterations=0,
            span=record.span(),
            breakdown=record.breakdown(),
        )
    ]
    return RunResult(
        loop_name=loop.name,
        strategy="DOACROSS",
        n_procs=n_procs,
        n_iterations=loop.n_iterations,
        stages=stages,
        timeline=machine.timeline,
        sequential_work=total_work,
        iteration_times=iter_times,
        induction_finals=ctx.induction_values(),
        memory=machine.memory,
    )
