"""Sequential execution: the correctness oracle and the speedup denominator."""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult, StageResult
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.util.blocks import Block


def run_sequential(
    loop: SpeculativeLoop,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Execute the loop in program order on one processor.

    No privatization, no marking, no synchronization: the total time is the
    useful work alone, which is exactly the paper's sequential reference.
    """
    machine = Machine(1, costs=costs, memory=memory or loop.materialize())
    ctx = SequentialContext(
        machine.memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    record = machine.begin_stage()
    omega = machine.costs.omega
    iter_times: dict[int, float] = {}
    total = 0.0
    exit_iteration = None
    for i in range(loop.n_iterations):
        ctx.iteration = i
        before = ctx.extra_work
        loop.body(ctx, i)
        t = (loop.work_of(i) + (ctx.extra_work - before)) * omega
        iter_times[i] = t
        total += t
        if ctx.exited:
            exit_iteration = i
            break
    machine.charge(0, Category.WORK, total)
    n_done = len(iter_times)
    stages = [
        StageResult(
            index=0,
            blocks=[Block(0, 0, loop.n_iterations)],
            failed=False,
            earliest_sink_pos=None,
            committed_iterations=n_done,
            remaining_after=0,
            committed_work=total,
            n_arcs=0,
            committed_elements=0,
            restored_elements=0,
            redistributed_iterations=0,
            span=record.span(),
            breakdown=record.breakdown(),
        )
    ]
    return RunResult(
        loop_name=loop.name,
        strategy="sequential",
        n_procs=1,
        n_iterations=loop.n_iterations,
        stages=stages,
        timeline=machine.timeline,
        sequential_work=total,
        iteration_times=iter_times,
        induction_finals=ctx.induction_values(),
        memory=machine.memory,
        exit_iteration=exit_iteration,
    )


def sequential_reference(loop: SpeculativeLoop) -> dict[str, np.ndarray]:
    """Final shared state of a sequential execution (test oracle)."""
    return run_sequential(loop).memory.snapshot()
