"""The inspector/executor baseline (paper, Section 1 and [13]).

A side-effect-free *inspector* loop records the relevant memory references;
a sorting-based technique builds the iteration dependence graph; the
iterations are then scheduled in topological (wavefront) order.  Its two
limitations motivate the R-LRPD test:

* a proper inspector must exist -- if the address computation depends on
  loop data, extracting one means executing most of the loop itself
  (:class:`~repro.errors.InspectorUnavailableError` models this); and
* the recorded reference trace costs memory proportional to its length.

The cost model charges the inspector run (per recorded reference), the
per-address sort, and then the wavefront execution with a barrier per front.
"""

from __future__ import annotations

import math

from repro.core.results import RunResult
from repro.core.wavefront import execute_wavefront, wavefront_schedule
from repro.errors import InspectorUnavailableError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.shadow.edges import DependenceEdge, EdgeKind, InvertedEdgeTable


def dependence_edges_from_trace(
    trace: list[tuple[set, set]],
) -> InvertedEdgeTable:
    """Sorting-based dependence construction from an inspector trace.

    For every address, accesses are collected in iteration order (the
    "sorting" of the reference trace): a read depends on the last write
    (flow); a write depends on *all* reads since the last write (anti --
    keeping only the latest reader would let a scheduler hoist the write
    over earlier readers) and on the last write itself (output).
    """
    edges = InvertedEdgeTable()
    last_write: dict[tuple[str, int], int] = {}
    readers: dict[tuple[str, int], set[int]] = {}
    for i, (reads, writes) in enumerate(trace):
        for addr in reads:
            w = last_write.get(addr)
            if w is not None and w < i:
                edges.log(DependenceEdge(w, i, EdgeKind.FLOW, addr[0], addr[1]))
        for addr in writes:
            for r in readers.get(addr, ()):
                if r < i:
                    edges.log(DependenceEdge(r, i, EdgeKind.ANTI, addr[0], addr[1]))
            w = last_write.get(addr)
            if w is not None and w < i:
                edges.log(DependenceEdge(w, i, EdgeKind.OUTPUT, addr[0], addr[1]))
        for addr in reads:
            readers.setdefault(addr, set()).add(i)
        for addr in writes:
            last_write[addr] = max(last_write.get(addr, -1), i)
            readers.pop(addr, None)
    return edges


def run_inspector_executor(
    loop: SpeculativeLoop,
    n_procs: int,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Inspector -> dependence graph -> wavefront execution.

    Raises :class:`InspectorUnavailableError` for loops without a proper
    inspector (exactly the loops only the R-LRPD test can handle).
    """
    if loop.inspector is None:
        raise InspectorUnavailableError(
            f"loop {loop.name!r} has a dependence cycle between data and "
            "address computation; no side-effect-free inspector exists"
        )
    memory = memory or loop.materialize()
    trace = loop.inspector(memory)
    if len(trace) != loop.n_iterations:
        raise InspectorUnavailableError(
            f"inspector returned {len(trace)} iteration records for "
            f"{loop.n_iterations} iterations"
        )
    edges = dependence_edges_from_trace(trace)
    schedule = wavefront_schedule(edges.to_graph(loop.n_iterations), loop.n_iterations)

    result = execute_wavefront(loop, schedule, n_procs, costs=costs, memory=memory)

    # Charge the inspection phase on top of the wavefront execution as an
    # extra timeline stage: the inspector touches every recorded reference,
    # the graph build sorts them (n log n in trace length, over p procs).
    n_refs = sum(len(r) + len(w) for r, w in trace)
    cost_model = costs or CostModel()
    record = result.timeline.begin_stage()
    inspect_cost = cost_model.mark * n_refs / n_procs
    sort_cost = cost_model.analysis_per_ref * n_refs * max(
        1.0, math.log2(max(2, n_refs))
    ) / n_procs
    record.charge(-1, Category.ANALYSIS, inspect_cost + sort_cost)

    result.strategy = f"inspector/executor(cp={schedule.critical_path})"
    return result
