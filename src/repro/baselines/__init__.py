"""Comparison techniques: sequential execution, the inspector/executor
method, and the DOACROSS scheme of Kazi & Lilja -- the prior work the
R-LRPD test is positioned against (paper, Section 1)."""

from repro.baselines.sequential import run_sequential, sequential_reference
from repro.baselines.inspector import run_inspector_executor
from repro.baselines.doacross import run_doacross

__all__ = [
    "run_sequential",
    "sequential_reference",
    "run_inspector_executor",
    "run_doacross",
]
