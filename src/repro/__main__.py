"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
