"""Fold a recorded JSONL trace into the paper's summary tables.

``repro report TRACE`` (and :func:`run_report` programmatically) reads a
stage-event trace recorded with ``--trace`` and renders what the paper's
evaluation sections tabulate: speedup over the sequential work, the
success ratio of speculative stages, committed-fraction per stage, and
the per-phase virtual-time breakdown (Fig. 4's rows).  When the trace was
recorded with spans on, a host wall-clock phase breakdown is added next
to the virtual one; when it carries metrics snapshots, the final
cumulative registry is rendered too.

The same module exports :func:`write_perfetto` so a JSONL trace recorded
without ``--perfetto`` can still be folded into Chrome trace-event JSON
after the fact (``repro report TRACE --perfetto out.json``).
"""

from __future__ import annotations

import json

from repro.obs.events import StageEvent, event_from_dict, validate_events
from repro.obs.metrics import render_metrics
from repro.obs.spans import chrome_trace
from repro.util.tables import format_table


def load_trace(path: str) -> list[StageEvent]:
    """Read a JSONL stage-event trace back into typed events.

    Blank trailing lines are tolerated (a partial trace flushed by a
    failed run is still loadable); the stream is validated against the
    event contract before being returned.
    """
    events: list[StageEvent] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def run_report(events: list[StageEvent]) -> str:
    """Render one recorded run as the paper-style report tables."""
    validate_events(events)
    run_begin = events[0]
    run_end = events[-1]
    stage_results = [e.result for e in events if e.kind == "stage_end"]
    spans = [e for e in events if e.kind == "span"]
    metrics = [e for e in events if e.kind == "metrics" and e.scope == "run"]

    sections: list[str] = []

    # -- run summary ---------------------------------------------------------
    restarts = run_end.restarts
    stages = run_end.stages
    speedup = (
        f"{run_end.sequential_work / run_end.total_time:.2f}x"
        if run_end.total_time > 0 else "n/a"
    )
    success = (stages - restarts) / stages if stages else 0.0
    rows = [
        ["loop", run_begin.loop],
        ["strategy", run_begin.strategy],
    ]
    if run_begin.strategy.startswith("certified-"):
        # The strategy label is the only certificate trace a recorded
        # event stream carries (certificates stay out of the
        # deterministic events); surface the execution mode explicitly.
        rows.append([
            "certified fast path",
            "plain doall (no speculation)"
            if run_begin.strategy == "certified-doall"
            else "in-order sequential (speculation provably doomed)",
        ])
    rows += [
        ["processors", run_begin.n_procs],
        ["iterations", run_begin.n_iterations],
        ["stages", stages],
        ["restarts", restarts],
        ["success ratio", _fmt(success)],
        ["PR", _fmt(1.0 / (1.0 + restarts))],
        ["T_seq (virtual)", _fmt(run_end.sequential_work)],
        ["T_par (virtual)", _fmt(run_end.total_time)],
        ["speedup", speedup],
    ]
    if run_end.faults_survived or run_end.retries:
        rows.append(["faults survived", run_end.faults_survived])
        rows.append(["fault retries", run_end.retries])
    if run_end.exit_iteration is not None:
        rows.append(["exit iteration", run_end.exit_iteration])
    sections.append(format_table(["field", "value"], rows, title="run"))

    # -- per-stage committed fraction ---------------------------------------
    rows = []
    for r in stage_results:
        attempted = r.attempted_iterations
        fraction = r.committed_iterations / attempted if attempted else 0.0
        rows.append([
            r.index,
            "fail" if r.failed else "ok",
            attempted,
            r.committed_iterations,
            _fmt(fraction),
            _fmt(r.span),
        ])
    sections.append(format_table(
        ["stage", "verdict", "attempted", "committed", "fraction", "span"],
        rows, title="stages",
    ))

    # -- virtual phase breakdown (Fig. 4 rows) ------------------------------
    totals: dict = {}
    for r in stage_results:
        for category, amount in r.breakdown.items():
            totals[category] = totals.get(category, 0.0) + amount
    grand = sum(totals.values())
    rows = [
        [str(category), _fmt(amount), _fmt(amount / grand if grand else 0.0)]
        for category, amount in sorted(
            totals.items(), key=lambda kv: -kv[1]
        )
    ]
    sections.append(format_table(
        ["phase", "virtual time", "share"], rows,
        title="virtual phase breakdown",
    ))

    # -- host phase breakdown (spans only) ----------------------------------
    host: dict[str, float] = {}
    for span in spans:
        if span.cat == "phase":
            host[span.name] = host.get(span.name, 0.0) + span.host_dur
    if host:
        grand = sum(host.values())
        rows = [
            [name, f"{dur * 1e3:.3f}", _fmt(dur / grand if grand else 0.0)]
            for name, dur in sorted(host.items(), key=lambda kv: -kv[1])
        ]
        sections.append(format_table(
            ["phase", "host ms", "share"], rows,
            title="host phase breakdown",
        ))

    # -- final metrics -------------------------------------------------------
    if metrics:
        final = metrics[-1]
        sections.append(render_metrics({
            "counters": final.counters,
            "gauges": final.gauges,
            "histograms": final.histograms,
        }))

    return "\n\n".join(sections)


def write_perfetto(events: list[StageEvent], path: str) -> int:
    """Fold a recorded event stream into Chrome trace-event JSON at
    ``path``; returns the number of trace entries written."""
    payload = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])
