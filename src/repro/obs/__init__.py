"""Structured stage-event observability.

The :class:`~repro.core.engine.StageEngine` narrates every run as a typed
event stream (:mod:`repro.obs.events`); subscriber sinks
(:mod:`repro.obs.sinks`) turn the one stream into whatever a consumer
needs -- a JSONL trace on disk, live CLI progress lines, or the aggregated
:class:`~repro.core.results.RunResult` itself.

On top of the event stream sit two quantitative layers:

* :mod:`repro.obs.metrics` -- a registry of counters/gauges/histograms
  over deterministic counts (marks, bytes moved, retries), near-zero cost
  when disabled;
* :mod:`repro.obs.spans` -- hierarchical dual-clock spans (host
  wall-clock and virtual time), exportable as Chrome trace-event JSON for
  Perfetto;
* :mod:`repro.obs.report` -- folds a recorded trace into the paper-style
  summary tables (``repro report``).
"""

from repro.obs.events import (
    BlockExecuted,
    Commit,
    DependenceFound,
    FaultInjected,
    MetricsSnapshot,
    Restore,
    Retry,
    RunBegin,
    RunEnd,
    SpanClosed,
    StageBegin,
    StageEnd,
    StageEvent,
    event_from_dict,
    validate_events,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    render_metrics,
    use_instrumentation,
)
from repro.obs.report import load_trace, run_report, write_perfetto
from repro.obs.sinks import (
    AggregatingSink,
    CliProgressSink,
    EventBus,
    EventSink,
    JsonlTraceSink,
    RecordingSink,
)
from repro.obs.spans import PerfettoTraceSink, SpanTracker, chrome_trace

__all__ = [
    "StageEvent",
    "RunBegin",
    "StageBegin",
    "BlockExecuted",
    "FaultInjected",
    "DependenceFound",
    "Commit",
    "Restore",
    "Retry",
    "SpanClosed",
    "MetricsSnapshot",
    "StageEnd",
    "RunEnd",
    "event_from_dict",
    "validate_events",
    "EventSink",
    "EventBus",
    "RecordingSink",
    "JsonlTraceSink",
    "CliProgressSink",
    "AggregatingSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "render_metrics",
    "use_instrumentation",
    "SpanTracker",
    "PerfettoTraceSink",
    "chrome_trace",
    "load_trace",
    "run_report",
    "write_perfetto",
]
