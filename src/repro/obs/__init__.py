"""Structured stage-event observability.

The :class:`~repro.core.engine.StageEngine` narrates every run as a typed
event stream (:mod:`repro.obs.events`); subscriber sinks
(:mod:`repro.obs.sinks`) turn the one stream into whatever a consumer
needs -- a JSONL trace on disk, live CLI progress lines, or the aggregated
:class:`~repro.core.results.RunResult` itself.
"""

from repro.obs.events import (
    BlockExecuted,
    Commit,
    DependenceFound,
    FaultInjected,
    Restore,
    Retry,
    RunBegin,
    RunEnd,
    StageBegin,
    StageEnd,
    StageEvent,
    event_from_dict,
    validate_events,
)
from repro.obs.sinks import (
    AggregatingSink,
    CliProgressSink,
    EventBus,
    EventSink,
    JsonlTraceSink,
    RecordingSink,
)

__all__ = [
    "StageEvent",
    "RunBegin",
    "StageBegin",
    "BlockExecuted",
    "FaultInjected",
    "DependenceFound",
    "Commit",
    "Restore",
    "Retry",
    "StageEnd",
    "RunEnd",
    "event_from_dict",
    "validate_events",
    "EventSink",
    "EventBus",
    "RecordingSink",
    "JsonlTraceSink",
    "CliProgressSink",
    "AggregatingSink",
]
