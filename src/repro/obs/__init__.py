"""Structured stage-event observability.

The :class:`~repro.core.engine.StageEngine` narrates every run as a typed
event stream (:mod:`repro.obs.events`); subscriber sinks
(:mod:`repro.obs.sinks`) turn the one stream into whatever a consumer
needs -- a JSONL trace on disk, live CLI progress lines, or the aggregated
:class:`~repro.core.results.RunResult` itself.

On top of the event stream sit two quantitative layers:

* :mod:`repro.obs.metrics` -- a registry of counters/gauges/histograms
  over deterministic counts (marks, bytes moved, retries), near-zero cost
  when disabled;
* :mod:`repro.obs.spans` -- hierarchical dual-clock spans (host
  wall-clock and virtual time), exportable as Chrome trace-event JSON for
  Perfetto;
* :mod:`repro.obs.report` -- folds a recorded trace into the paper-style
  summary tables (``repro report``).

Alongside the deterministic stream runs the **operational plane** --
host-clock, non-deterministic, never part of golden traces
(docs/observability.md):

* :mod:`repro.obs.oplog` -- the unified JSONL operational logger every
  component (engine, supervisors, backends, shm arena, faults) writes
  through;
* :mod:`repro.obs.resources` -- a background host resource sampler
  (RSS, CPU, /dev/shm, worker health);
* :mod:`repro.obs.flight` -- bounded rings of recent activity, dumped
  as a crash bundle on uncaught failure (``repro report --bundle``);
* :mod:`repro.obs.top` -- the live status stream and the ``repro top``
  dashboard over it.
"""

from repro.obs.events import (
    BlockExecuted,
    Commit,
    DependenceFound,
    FaultInjected,
    MetricsSnapshot,
    Restore,
    Retry,
    RunBegin,
    RunEnd,
    SpanClosed,
    StageBegin,
    StageEnd,
    StageEvent,
    event_from_dict,
    validate_events,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    render_metrics,
    use_instrumentation,
)
from repro.obs.report import load_trace, run_report, write_perfetto
from repro.obs.sinks import (
    AggregatingSink,
    CliProgressSink,
    EventBus,
    EventSink,
    JsonlTraceSink,
    RecordingSink,
)
from repro.obs.flight import FlightRecorder, dump_bundle, load_bundle, render_bundle
from repro.obs.oplog import OpLog, get_oplog
from repro.obs.resources import ResourceSampler, resolve_resources_enabled
from repro.obs.spans import PerfettoTraceSink, SpanTracker, chrome_trace
from repro.obs.top import StatusStreamSink, TopState, follow, render_top

__all__ = [
    "StageEvent",
    "RunBegin",
    "StageBegin",
    "BlockExecuted",
    "FaultInjected",
    "DependenceFound",
    "Commit",
    "Restore",
    "Retry",
    "SpanClosed",
    "MetricsSnapshot",
    "StageEnd",
    "RunEnd",
    "event_from_dict",
    "validate_events",
    "EventSink",
    "EventBus",
    "RecordingSink",
    "JsonlTraceSink",
    "CliProgressSink",
    "AggregatingSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "render_metrics",
    "use_instrumentation",
    "SpanTracker",
    "PerfettoTraceSink",
    "chrome_trace",
    "load_trace",
    "run_report",
    "write_perfetto",
    "OpLog",
    "get_oplog",
    "ResourceSampler",
    "resolve_resources_enabled",
    "FlightRecorder",
    "dump_bundle",
    "load_bundle",
    "render_bundle",
    "StatusStreamSink",
    "TopState",
    "render_top",
    "follow",
]
