"""Host resource profiler: a background sampler for the operational plane.

Speculative parallelization fails operationally long before it fails
logically: shadow planes blow out RSS, /dev/shm fills with arena
segments, one fork worker sits at 100% CPU while the rest idle, the GIL
serializes a threads run.  None of that may enter the deterministic
event stream (the golden parity matrix demands bit-identical traces),
so it is sampled out-of-band instead.

:class:`ResourceSampler` runs one daemon thread per engine run, waking
every ``RuntimeConfig.resource_interval`` seconds to record:

* the engine process's RSS and CPU time;
* every live worker process's RSS and CPU time (fork/shm pools, from
  the backend's :meth:`~repro.core.backend.ExecutionBackend.resource_info`);
* /dev/shm bytes held by the shm backend's :class:`~repro.core.shm.ShmArena`;
* dispatch-pipe/queue depths and the count of in-flight shares;
* the interpreter's GIL mode (``free-threaded``/``gil``).

Samples are plain dicts on the **host clock only** (the engine's
run-relative ``host_now``), consumed by the crash flight recorder, the
``repro top`` status stream, and the Perfetto exporter's counter tracks
(:func:`repro.obs.spans.chrome_trace`).

Platform fallback: on hosts without ``/proc`` (macOS), per-worker
sampling is unavailable and the engine process falls back to
``resource.getrusage`` (``ru_maxrss`` is a high-water mark, not the
current RSS; the sample says so via ``source: "rusage"``).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

ENV_ENABLE = "REPRO_RESOURCES"

#: Whether this host exposes per-pid /proc stat files (Linux).
HAVE_PROC = os.path.isdir("/proc/self")

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
    _CLK_TCK = os.sysconf("SC_CLK_TCK") or 100
except (ValueError, OSError, AttributeError):  # pragma: no cover - exotic host
    _PAGE_SIZE = 4096
    _CLK_TCK = 100


def resolve_resources_enabled(config) -> bool:
    """Whether a run under ``config`` samples host resources.

    Explicit ``config.resources`` wins; a set ``status_path`` implies
    sampling (``repro top`` wants the sparklines); otherwise the
    ``REPRO_RESOURCES`` environment variable is the process default --
    which is how CI re-runs the parity matrix with the sampler on
    without touching any case config.
    """
    explicit = getattr(config, "resources", None)
    if explicit is not None:
        return bool(explicit)
    if getattr(config, "status_path", None):
        return True
    return os.environ.get(ENV_ENABLE, "").lower() in ("1", "on", "true", "yes")


def read_process(pid: int) -> dict | None:
    """Current RSS/CPU of one process from /proc; ``None`` when
    unavailable (no /proc, or the process is gone)."""
    if not HAVE_PROC:
        return None
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        with open(f"/proc/{pid}/stat", "rb") as fh:
            # comm may contain spaces; fields resume after the last ')'.
            fields = fh.read().rsplit(b")", 1)[1].split()
        utime, stime = int(fields[11]), int(fields[12])
    except (OSError, IndexError, ValueError):
        return None
    return {
        "pid": pid,
        "rss_bytes": resident_pages * _PAGE_SIZE,
        "cpu_s": round((utime + stime) / _CLK_TCK, 3),
    }


def read_self_rusage() -> dict:
    """Portable fallback for the engine process: ``getrusage`` high-water
    RSS (bytes) and consumed CPU seconds."""
    import resource
    import sys

    usage = resource.getrusage(resource.RUSAGE_SELF)
    maxrss = usage.ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    rss_bytes = maxrss if sys.platform == "darwin" else maxrss * 1024
    return {
        "pid": os.getpid(),
        "rss_bytes": int(rss_bytes),
        "cpu_s": round(usage.ru_utime + usage.ru_stime, 3),
    }


class ResourceSampler:
    """Samples host resources for one engine run on a daemon thread.

    ``consumers`` are called with each sample dict from the sampler
    thread (the flight recorder's ring, the status stream); exceptions in
    consumers are swallowed -- telemetry must never kill the run.  The
    full sample list is kept (bounded by run length / interval) for the
    Perfetto counter-track merge at close.
    """

    def __init__(
        self,
        eng,
        interval: float = 0.05,
        consumers: tuple[Callable[[dict], None], ...] = (),
    ) -> None:
        self.eng = eng
        self.interval = max(0.001, float(interval))
        self.samples: list[dict] = []
        self._consumers: list[Callable[[dict], None]] = list(consumers)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def add_consumer(self, consumer: Callable[[dict], None]) -> None:
        self._consumers.append(consumer)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resources", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and take one final sample (so even runs shorter
        than one interval record their peak state)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        self.sample_now()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_now()

    # -- sampling ----------------------------------------------------------------

    def sample_now(self) -> dict:
        """Take one sample, record it, feed the consumers; never raises."""
        try:
            sample = self._sample()
        except Exception:  # pragma: no cover - telemetry must never raise
            sample = {"t": 0.0, "ts": round(time.time(), 6), "error": True}
        with self._lock:
            self.samples.append(sample)
        for consumer in list(self._consumers):
            try:
                consumer(sample)
            except Exception:  # pragma: no cover - see class docstring
                pass
        return sample

    def _sample(self) -> dict:
        eng = self.eng
        host_now = getattr(eng, "host_now", None)
        sample: dict = {
            "t": round(host_now(), 6) if host_now is not None else 0.0,
            "ts": round(time.time(), 6),
        }
        own = read_process(os.getpid())
        if own is not None:
            sample["source"] = "proc"
        else:
            own = read_self_rusage()
            sample["source"] = "rusage"
        sample["rss_bytes"] = own["rss_bytes"]
        sample["cpu_s"] = own["cpu_s"]

        backend = getattr(eng, "backend", None)
        info: dict = {}
        if backend is not None:
            sample["backend"] = backend.name
            try:
                info = backend.resource_info() or {}
            except Exception:  # pragma: no cover - racing pool teardown
                info = {}
        workers = []
        for pid in info.get("worker_pids", ()):
            stat = read_process(pid)
            if stat is not None:
                workers.append(stat)
        sample["workers"] = workers
        sample["worker_rss_bytes"] = sum(w["rss_bytes"] for w in workers)
        sample["worker_cpu_s"] = round(sum(w["cpu_s"] for w in workers), 3)
        sample["shm_bytes"] = int(info.get("shm_bytes", 0))
        sample["inflight"] = int(info.get("inflight", 0))
        if "queue_depths" in info:
            sample["queue_depths"] = list(info["queue_depths"])
        if "worker_threads" in info:
            sample["worker_threads"] = int(info["worker_threads"])
        from repro.core.threads import thread_mode

        sample["gil"] = thread_mode()
        return sample
