"""``repro top``: live monitor over a run's streaming status JSONL.

A run started with ``--status PATH`` attaches a :class:`StatusStreamSink`
that multiplexes all three observability streams into one line-flushed
JSONL file, each record tagged with its plane::

    {"plane": "events",    ...deterministic stage event...}
    {"plane": "oplog",     ...operational record...}
    {"plane": "resources", ...host resource sample...}

``repro top PATH`` tails that file and renders a terminal dashboard:
stage progress and committed fraction, restart/retry counts, worker
health from the supervisor's oplog records, and RSS/CPU/shm sparklines
from the resource samples.  The renderer is a pure function over
:class:`TopState` (``render_top``) so tests can drive it without a
terminal; the CLI loop adds ANSI clear-screen framing and ``--once`` for
single-frame output.

The sink is write-through (one ``flush()`` per line): ``repro top``
polls the file from another process, so buffered lines would render as a
stalled run.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO

#: Sparkline history length (samples) and glyph ramp.
_HISTORY = 48
_SPARKS = "▁▂▃▄▅▆▇█"


class StatusStreamSink:
    """Line-flushed JSONL multiplexer for one run's three streams.

    An event sink (``emit``), an oplog tap (``note_oplog``) and a
    resource-sampler consumer (``note_resources``); the engine wires all
    three up when ``RuntimeConfig.status_path`` is set.  Thread-safe: the
    sampler thread writes concurrently with the engine.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = target
            self._owned = False
        self._lock = threading.Lock()
        self._closed = False

    def _write(self, record: dict) -> None:
        try:
            line = json.dumps(record, default=str)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return
        with self._lock:
            if self._closed:
                return
            try:
                self._fh.write(line + "\n")
                self._fh.flush()
            except (OSError, ValueError):  # pragma: no cover - dead target
                pass

    def emit(self, event) -> None:
        self._write({"plane": "events", **event.to_dict()})

    def note_oplog(self, record: dict) -> None:
        self._write({"plane": "oplog", **record})

    def note_resources(self, sample: dict) -> None:
        self._write({"plane": "resources", **sample})

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.flush()
                if self._owned:
                    self._fh.close()
            except (OSError, ValueError):  # pragma: no cover
                pass


class TopState:
    """Folds a status stream into what the dashboard renders."""

    def __init__(self) -> None:
        self.loop = "?"
        self.strategy = "?"
        self.n_procs = 0
        self.n_iterations = 0
        self.committed_upto = 0
        self.stages = 0
        self.restarts = 0
        self.retries = 0
        self.backend = "?"
        self.gil: str | None = None
        self.degradations: list[str] = []
        self.supervise: dict[str, int] = {}
        self.last: str = ""
        self.done = False
        self.failed: str | None = None
        self.rss = deque(maxlen=_HISTORY)
        self.worker_rss = deque(maxlen=_HISTORY)
        self.shm = deque(maxlen=_HISTORY)
        self.cpu_s = 0.0
        self.inflight = 0
        self.workers_alive = 0

    def feed(self, record: dict) -> None:
        plane = record.get("plane")
        if plane == "events":
            self._feed_event(record)
        elif plane == "oplog":
            self._feed_oplog(record)
        elif plane == "resources":
            self._feed_resources(record)

    def _feed_event(self, record: dict) -> None:
        kind = record.get("event")
        if kind == "run_begin":
            self.loop = record.get("loop", "?")
            self.strategy = record.get("strategy", "?")
            self.n_procs = record.get("n_procs", 0)
            self.n_iterations = record.get("n_iterations", 0)
        elif kind == "stage_end":
            self.stages += 1
            result = record.get("result") or {}
            if result.get("failed"):
                self.restarts += 1
            self.last = (
                f"stage {record.get('stage')} "
                f"{'fail' if result.get('failed') else 'ok'}"
            )
        elif kind == "commit":
            self.committed_upto = record.get("committed_upto", 0)
            self.last = (
                f"commit s{record.get('stage')} "
                f"upto {self.committed_upto}"
            )
        elif kind == "retry":
            self.retries += 1
            self.last = f"retry s{record.get('stage')}"
        elif kind == "backend_degraded":
            self.degradations.append(
                f"{record.get('from_backend')}->{record.get('to_backend')}"
            )
        elif kind == "run_end":
            self.done = True
            self.last = "run complete"

    def _feed_oplog(self, record: dict) -> None:
        event = record.get("event", "")
        component = record.get("component", "")
        if component == "supervise":
            self.supervise[event] = self.supervise.get(event, 0) + 1
        elif event == "run-failed":
            self.done = True
            self.failed = str(record.get("error", "unknown error"))
        elif event == "run-begin":
            self.backend = record.get("backend", self.backend)

    def _feed_resources(self, record: dict) -> None:
        self.rss.append(record.get("rss_bytes", 0))
        self.worker_rss.append(record.get("worker_rss_bytes", 0))
        self.shm.append(record.get("shm_bytes", 0))
        self.cpu_s = record.get("cpu_s", self.cpu_s)
        self.inflight = record.get("inflight", 0)
        # Process pools report sampled worker stats; the threads backend
        # has no worker pids and reports a live-thread count instead.
        self.workers_alive = (
            record.get("worker_threads")
            if record.get("worker_threads") is not None
            else len(record.get("workers", ()))
        )
        self.gil = record.get("gil", self.gil)
        if record.get("backend"):
            self.backend = record["backend"]

    def feed_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            self.feed(json.loads(line))
        except ValueError:
            pass  # torn tail line of a live file; the next poll rereads


def sparkline(values, width: int = 16) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    tail = list(values)[-width:]
    if not tail:
        return "-" * 1
    top = max(tail)
    if top <= 0:
        return _SPARKS[0] * len(tail)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int(v / top * (len(_SPARKS) - 1)))]
        for v in tail
    )


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_top(state: TopState) -> str:
    """One dashboard frame (pure; no terminal control codes)."""
    mode = f" [{state.gil}]" if state.gil else ""
    lines = [
        f"repro top · {state.loop} · {state.strategy} "
        f"· p={state.n_procs} · backend {state.backend}{mode}",
    ]
    total = state.n_iterations
    frac = state.committed_upto / total if total else 0.0
    lines.append(
        f"progress [{_bar(frac)}] {frac * 100:5.1f}%  "
        f"({state.committed_upto}/{total} iterations)  "
        f"stages {state.stages}  restarts {state.restarts}"
        + (f"  retries {state.retries}" if state.retries else "")
    )
    sup = state.supervise
    lines.append(
        f"workers  alive {state.workers_alive}  inflight {state.inflight}  "
        f"respawns {sup.get('worker-respawned', 0)}  "
        f"overdue {sup.get('worker-overdue', 0)}  "
        f"redispatched {sup.get('blocks-redispatched', 0)}  "
        f"degraded: {', '.join(state.degradations) or 'none'}"
    )
    if state.rss:
        lines.append(
            f"rss {sparkline(state.rss)} {state.rss[-1] / 1e6:8.1f} MB   "
            f"workers {sparkline(state.worker_rss)} "
            f"{state.worker_rss[-1] / 1e6:8.1f} MB   "
            f"shm {sparkline(state.shm)} {state.shm[-1] / 1e6:6.1f} MB   "
            f"cpu {state.cpu_s:7.2f} s"
        )
    else:
        lines.append("rss (no resource samples; run with --resources)")
    if state.failed:
        lines.append(f"FAILED: {state.failed}")
    elif state.done:
        lines.append("done.")
    elif state.last:
        lines.append(f"last: {state.last}")
    return "\n".join(lines)


def follow(
    path: str,
    *,
    interval: float = 0.5,
    once: bool = False,
    stream=None,
    max_frames: int | None = None,
) -> int:
    """Tail ``path`` and render frames until the run ends.

    ``once`` reads whatever is there and renders a single frame (used by
    tests and scripting); the live loop clears the screen per frame and
    stops when the stream reports ``run_end``/``run-failed`` (or on
    Ctrl-C).  ``max_frames`` bounds the live loop for tests.
    """
    import sys

    out = stream or sys.stdout
    state = TopState()
    frames = 0
    try:
        fh = open(path, encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"{path}: {exc}") from None
    with fh:
        while True:
            for line in fh:
                state.feed_line(line)
            frame = render_top(state)
            if once:
                out.write(frame + "\n")
                return 1 if state.failed else 0
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
            frames += 1
            if state.done or (max_frames is not None and frames >= max_frames):
                return 1 if state.failed else 0
            try:
                time.sleep(interval)
            except KeyboardInterrupt:  # pragma: no cover - interactive
                return 0
